//! # rtds — predictive adaptive resource management for periodic tasks
//!
//! A full reproduction of Ravindran & Hegazy, *"A Predictive Algorithm for
//! Adaptive Resource Management of Periodic Tasks in Asynchronous
//! Real-Time Distributed Systems"* (IPPS 2001), as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event simulator of the paper's execution environment (nodes, round-robin CPUs, shared Ethernet, clocks, replicable pipeline tasks) |
//! | [`regression`] | least-squares substrate: the Eq. (3) bivariate latency model, the Eq. (5) buffer-delay fit, goodness-of-fit statistics |
//! | [`dynbench`] | the synthetic DynBench/AAW benchmark application and its profiling campaign |
//! | [`arm`] | the paper's contribution: EQF deadline assignment, slack monitoring, the predictive (Fig. 5) and non-predictive (Fig. 7) algorithms, the Fig. 6 shutdown rule, the combined metric |
//! | [`workloads`] | the Fig. 8 workload patterns plus extensions |
//! | [`experiments`] | runners that regenerate every table and figure of the evaluation section |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use rtds::prelude::*;
//!
//! // The paper's Table 1 system with the AAW task under a triangular
//! // workload, managed by the predictive algorithm.
//! let mut scenario = ScenarioConfig::paper(
//!     PatternSpec::Triangular { half_period: 10 },
//!     PolicySpec::Predictive,
//!     8_000, // max workload, tracks/period
//! );
//! scenario.n_periods = 30;
//! let predictor = rtds::experiments::models::quick_predictor();
//! let result = run_scenario(&scenario, &predictor);
//! assert!(result.summary.missed_deadline_pct < 100.0);
//! ```

pub use rtds_arm as arm;
pub use rtds_dynbench as dynbench;
pub use rtds_experiments as experiments;
pub use rtds_regression as regression;
pub use rtds_sim as sim;
pub use rtds_workloads as workloads;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use rtds_arm::prelude::*;
    pub use rtds_dynbench::{aaw_task, ProfileData};
    pub use rtds_experiments::{
        run_scenario, CrashFault, FaultPlan, ObserveConfig, PatternSpec, PolicySpec,
        ScenarioConfig, ScenarioResult,
    };
    pub use rtds_regression::{
        BufferDelayModel, CommDelayModel, ExecLatencyModel, LatencySample,
    };
    pub use rtds_sim::prelude::*;
    pub use rtds_workloads::{
        DecreasingRamp, IncreasingRamp, Pattern, Triangular, WorkloadRange,
    };
}
