//! Policy shootout: static vs predictive vs non-predictive, across
//! workload patterns.
//!
//! Runs the same mission under three management policies and four
//! workload patterns (the paper's three plus a square wave, the harshest
//! adaptation test) and prints one comparison table — a compact version of
//! the whole evaluation section.
//!
//! Run with: `cargo run --release --example policy_shootout`

use rtds::experiments::models::quick_predictor;
use rtds::prelude::*;

fn main() {
    let n_periods = 120u64;
    let patterns: Vec<(&str, PatternSpec)> = vec![
        ("increasing-ramp", PatternSpec::Increasing { ramp_periods: n_periods }),
        ("decreasing-ramp", PatternSpec::Decreasing { ramp_periods: n_periods }),
        ("triangular", PatternSpec::Triangular { half_period: 15 }),
        ("step", PatternSpec::Step { low: 10, high: 10 }),
    ];
    let policies = [
        PolicySpec::None,
        PolicySpec::Predictive,
        PolicySpec::NonPredictive,
    ];
    let predictor = quick_predictor();

    println!(
        "{:<16} {:<15} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "pattern", "policy", "miss%", "cpu%", "net%", "replicas", "combined"
    );
    println!("{}", "-".repeat(80));
    for (name, pattern) in &patterns {
        for policy in policies {
            let scenario = ScenarioConfig {
                pattern: *pattern,
                policy,
                workload: WorkloadRange::new(500, 14_000),
                n_periods,
                ambient_util: 0.10,
                seed: 2024,
                scheduler: rtds::sim::sched::SchedulerKind::paper_baseline(),
                online_refinement: false,
                failures: Vec::new(),
                faults: FaultPlan::default(),
                observe: ObserveConfig::default(),
                bg_fast_path: true,
            };
            let r = run_scenario(&scenario, &predictor);
            println!(
                "{:<16} {:<15} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>9.2}",
                name,
                r.policy,
                r.summary.missed_deadline_pct,
                r.summary.avg_cpu_util_pct,
                r.summary.avg_net_util_pct,
                r.summary.avg_replicas,
                r.breakdown.combined,
            );
        }
        println!();
    }
    println!("combined metric: missed% + cpu% + net% + replica-use% (smaller is better)");
}
