//! Quickstart: run the paper's system once and print the headline metrics.
//!
//! Builds the Table 1 cluster (6 nodes, round-robin CPUs, 100 Mbps shared
//! Ethernet), loads it with the AAW surveillance pipeline under a
//! triangular threat workload, lets the **predictive** resource manager
//! adapt, and prints the four evaluation metrics plus the combined metric.
//!
//! Run with: `cargo run --release --example quickstart`

use rtds::prelude::*;

fn main() {
    // A triangular workload oscillating between 500 and 12_000 tracks per
    // 1-second period — enough to force replication on the peaks.
    let scenario = ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: 15 },
        policy: PolicySpec::Predictive,
        workload: WorkloadRange::new(500, 12_000),
        n_periods: 120,
        ambient_util: 0.10,
        seed: 42,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };

    // The predictor normally comes from a profiling campaign
    // (`rtds::experiments::models::fitted_predictor()`); the analytic
    // variant is instant and close enough for a demo.
    let predictor = rtds::experiments::models::quick_predictor();

    println!("running {} periods of the AAW pipeline under a triangular workload…", scenario.n_periods);
    let result = run_scenario(&scenario, &predictor);

    let s = &result.summary;
    println!();
    println!("policy                 : {}", result.policy);
    println!("periods decided        : {}", s.decided_periods);
    println!("missed deadlines       : {:.2} %", s.missed_deadline_pct);
    println!("avg CPU utilization    : {:.2} %", s.avg_cpu_util_pct);
    println!("avg network utilization: {:.2} %", s.avg_net_util_pct);
    println!("avg subtask replicas   : {:.2}", s.avg_replicas);
    println!("placement changes      : {}", s.placement_changes);
    println!("combined metric        : {:.2}  (smaller is better)", result.breakdown.combined);
}
