//! Profiling → regression → prediction, end to end.
//!
//! Reproduces the paper's §4.2.1 pipeline in miniature: profile the Filter
//! subtask's execution latency over a grid of data sizes × CPU
//! utilizations, fit the Eq. (3) bivariate model with the paper's
//! two-stage procedure, then validate the fitted model against fresh
//! *hold-out* measurements at grid points it never saw.
//!
//! Run with: `cargo run --release --example profiling_and_prediction`

use rtds::dynbench::app::filter_cost;
use rtds::dynbench::profile::{profile_execution, ProfileConfig};
use rtds::prelude::*;
use rtds::regression::{cross_validate, FitMethod, PredictionBand};

fn main() {
    // Training grid.
    let train_cfg = ProfileConfig {
        utilizations_pct: vec![10.0, 30.0, 50.0, 70.0],
        data_sizes: vec![1_000, 3_000, 6_000, 9_000, 13_000],
        periods_per_point: 4,
        warmup_periods: 2,
        seed: 11,
    };
    println!(
        "profiling Filter over {} utilizations x {} data sizes…",
        train_cfg.utilizations_pct.len(),
        train_cfg.data_sizes.len()
    );
    let train = profile_execution(filter_cost(), &train_cfg);

    let model = ExecLatencyModel::fit_two_stage(&train).expect("fit");
    println!(
        "fitted Eq.(3): a = [{:.3e}, {:.3e}, {:.3e}]  b = [{:.3e}, {:.3e}, {:.3e}]",
        model.a[0], model.a[1], model.a[2], model.b[0], model.b[1], model.b[2]
    );
    println!(
        "training fit: R2 = {:.4}, RMSE = {:.2} ms over {} samples",
        model.stats.r2, model.stats.rmse, model.stats.n
    );

    // Hold-out grid: utilizations and sizes *between* the training points.
    let holdout_cfg = ProfileConfig {
        utilizations_pct: vec![20.0, 40.0, 60.0],
        data_sizes: vec![2_000, 7_500, 11_000],
        periods_per_point: 4,
        warmup_periods: 2,
        seed: 13,
    };
    let holdout = profile_execution(filter_cost(), &holdout_cfg);

    println!();
    println!("hold-out validation (points the fit never saw):");
    println!("  util%   tracks   measured-ms   predicted-ms   error%");
    let mut worst: f64 = 0.0;
    for s in &holdout {
        let pred = model.predict(s.d, s.u);
        let err = 100.0 * (pred - s.latency_ms) / s.latency_ms;
        worst = worst.max(err.abs());
        println!(
            "  {:>5.0}  {:>7.0}   {:>11.1}   {:>12.1}   {:>+6.1}",
            s.u,
            s.d * 100.0,
            s.latency_ms,
            pred,
            err
        );
    }
    println!();
    println!("worst hold-out error: {worst:.1} %");
    println!(
        "(the paper's allocator only needs the forecast to rank replica \
         counts correctly, so errors of this size are operationally fine)"
    );

    // Cross-validated out-of-sample error of both fitting methods.
    println!();
    for (name, method) in [("two-stage (paper)", FitMethod::TwoStage), ("direct LSQ", FitMethod::Direct)] {
        match cross_validate(&train, 5, method) {
            Ok(cv) => println!(
                "5-fold CV, {name:18}: R2 = {:.4}, RMSE = {:.2} ms",
                cv.pooled.r2, cv.pooled.rmse
            ),
            Err(e) => println!("5-fold CV, {name}: {e}"),
        }
    }

    // A conservative forecast band for slack-aware allocation.
    let band = PredictionBand::from_residuals(&model, &train, 0.9);
    println!();
    println!(
        "90% residual band: +/-{:.1} ms; a conservative forecast at (7500 tracks, 45%) is {:.1} ms",
        band.half_width_ms,
        band.upper_ms(model.predict(75.0, 45.0))
    );
}
