//! Degraded-network demo: the failure-realism layer in one table.
//!
//! Runs the same AAW scenario three times — over a clean bus, over a
//! lossy/jammed bus with no recovery, and over the same degraded bus with
//! sender-side retransmission — plus a crash–restart variant, and prints a
//! survivability comparison. This is the headline demonstration that (a)
//! message loss without recovery translates directly into missed
//! deadlines, and (b) timeout/retransmit with exponential backoff buys
//! most of that back at the cost of extra bus traffic.
//!
//! Run with: `cargo run --release --example degraded_network`

use rtds::prelude::*;
use rtds::sim::net::JamWindow;

struct Row {
    label: &'static str,
    result: ScenarioResult,
}

fn main() {
    let base = ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: 15 },
        policy: PolicySpec::Predictive,
        workload: WorkloadRange::new(500, 8_000),
        n_periods: 120,
        ambient_util: 0.10,
        seed: 42,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };
    let predictor = rtds::experiments::models::quick_predictor();

    // A 10% lossy bus that also loses a quarter of its bandwidth for two
    // seconds out of every twenty (periodic jamming).
    let degraded = FaultPlan {
        drop_prob: 0.10,
        dup_prob: 0.02,
        retx_timeout_us: 0, // losses are final
        jam: Some(JamWindow {
            start_us: 10_000_000,
            duration_us: 2_000_000,
            bandwidth_factor: 0.25,
            repeat_us: 20_000_000,
        }),
        crashes: Vec::new(),
    };
    let recovered = FaultPlan {
        // Comfortably above the worst-case wire time of a peak-load stage
        // message (~54 ms for 8k tracks), so timeouts mean loss, not haste.
        retx_timeout_us: 80_000,
        ..degraded.clone()
    };
    let crashy = FaultPlan {
        crashes: vec![CrashFault { node: 2, at_s: 40, restart_after_s: Some(10) }],
        ..recovered.clone()
    };

    let mut rows = Vec::new();
    for (label, faults) in [
        ("clean", FaultPlan::default()),
        ("degraded", degraded),
        ("degraded + retx", recovered),
        ("degraded + retx + crash", crashy),
    ] {
        let mut cfg = base.clone();
        cfg.faults = faults;
        println!("running '{label}'…");
        rows.push(Row { label, result: run_scenario(&cfg, &predictor) });
    }

    println!();
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>9} {:>7} {:>9} {:>9}",
        "scenario", "miss %", "cpu %", "net %", "replicas", "lost", "dropped", "retx"
    );
    for Row { label, result } in &rows {
        let s = &result.summary;
        let m = &result.metrics;
        println!(
            "{:<24} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>7} {:>9} {:>9}",
            label,
            s.missed_deadline_pct,
            s.avg_cpu_util_pct,
            s.avg_net_util_pct,
            s.avg_replicas,
            m.messages_lost,
            m.messages_dropped,
            m.retransmits,
        );
    }
    println!();
    let m = &rows[2].result.metrics;
    println!(
        "retransmission recovered {} of {} corrupted messages ({} abandoned \
         after {} retries)",
        m.messages_dropped - m.messages_lost,
        m.messages_dropped,
        m.messages_lost,
        3, // BusConfig::retx_max_retries default
    );
}
