//! Survivability showcase: the mission outlives half its cluster.
//!
//! Runs the AAW pipeline under steady threat load while nodes die one by
//! one — first the spare, then a replica host, then the EvalDecide home —
//! and prints the failure/repair timeline from the structured trace plus
//! the per-phase deadline record. The unmanaged counterfactual is shown
//! alongside.
//!
//! Run with: `cargo run --release --example fault_tolerant_mission`

use rtds::arm::config::ArmConfig;
use rtds::arm::manager::ResourceManager;
use rtds::dynbench::app::aaw_task;
use rtds::prelude::*;

fn build(managed: bool) -> Cluster {
    let mut config = ClusterConfig::paper_baseline(99, SimDuration::from_secs(60));
    config.clock = ClockConfig::lan_default();
    let mut cluster = Cluster::new(config);
    cluster.add_task(aaw_task(), Box::new(|_| 9_000));
    for n in 0..6 {
        cluster.add_load(Box::new(PoissonLoad::with_utilization(
            LoadGenId(n),
            NodeId(n),
            0.10,
            SimDuration::from_millis(2),
        )));
    }
    if managed {
        cluster.set_controller(Box::new(ResourceManager::new(
            ArmConfig::paper_predictive(),
            rtds::experiments::models::quick_predictor(),
        )));
    }
    cluster.enable_trace(500_000);
    // The failure schedule: spare first, then a likely replica host, then
    // the EvalDecide home.
    cluster.fail_node_at(NodeId(5), SimTime::from_secs(15));
    cluster.fail_node_at(NodeId(0), SimTime::from_secs(30));
    cluster.fail_node_at(NodeId(4), SimTime::from_secs(45));
    cluster
}

fn phase_of(instance: u64) -> usize {
    match instance {
        0..=14 => 0,
        15..=29 => 1,
        30..=44 => 2,
        _ => 3,
    }
}

fn main() {
    const PHASES: [&str; 4] = [
        "all 6 nodes",
        "spare p5 down",
        "p5+p0 down",
        "p5+p0+p4 down",
    ];
    for managed in [true, false] {
        let label = if managed { "PREDICTIVE-MANAGED" } else { "UNMANAGED" };
        let out = build(managed).run();
        let mut ok = [0u32; 4];
        let mut miss = [0u32; 4];
        for p in &out.metrics.periods {
            match p.missed {
                Some(false) => ok[phase_of(p.instance)] += 1,
                Some(true) => miss[phase_of(p.instance)] += 1,
                None => {}
            }
        }
        println!("=== {label} ===");
        for (i, name) in PHASES.iter().enumerate() {
            let total = ok[i] + miss[i];
            println!(
                "  {name:<14} {:>2}/{total} periods met their deadline",
                ok[i]
            );
        }
        if let Some(trace) = &out.trace {
            println!("  timeline:");
            for (t, e) in trace.events() {
                match e {
                    TraceEvent::NodeFailed { node } => {
                        println!("    {t} node {node} FAILED");
                    }
                    TraceEvent::Placement { stage, nodes } if managed => {
                        println!("    {t} repair/adapt {stage} -> {nodes:?}");
                    }
                    _ => {}
                }
            }
        }
        println!();
    }
    println!(
        "the managed mission keeps meeting deadlines on 3 surviving nodes;\n\
         the unmanaged one dies with the first home-node failure."
    );
}
