//! AAW mission timeline: watch the resource manager adapt, period by
//! period.
//!
//! Drives the five-subtask Anti-Air-Warfare pipeline through a threat
//! scenario — a calm patrol, a rapidly building raid, the engagement peak,
//! and the stand-down — and prints a per-period log of workload, replica
//! placement of the two replicable subtasks (Filter, EvalDecide),
//! end-to-end latency, and deadline outcome. This is the paper's Fig. 1
//! loop made visible.
//!
//! Run with: `cargo run --release --example aaw_mission`

use rtds::arm::config::ArmConfig;
use rtds::arm::manager::ResourceManager;
use rtds::dynbench::app::{aaw_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
use rtds::prelude::*;

/// The raid profile: tracks per period over the 90-period mission.
fn raid_profile(period: u64) -> u64 {
    match period {
        0..=19 => 1_000,                          // patrol
        20..=39 => 1_000 + (period - 19) * 700,   // raid builds: +700/period
        40..=59 => 15_000,                        // engagement peak
        60..=79 => 15_000 - (period - 59) * 700,  // stand-down
        _ => 1_000,
    }
}

fn main() {
    let horizon_periods = 90u64;
    let mut config = ClusterConfig::paper_baseline(7, SimDuration::from_secs(horizon_periods));
    config.clock = ClockConfig::lan_default();
    let mut cluster = Cluster::new(config);
    cluster.add_task(aaw_task(), Box::new(raid_profile));
    for n in 0..6 {
        cluster.add_load(Box::new(PoissonLoad::with_utilization(
            LoadGenId(n),
            NodeId(n),
            0.10,
            SimDuration::from_millis(2),
        )));
    }
    let predictor = rtds::experiments::models::quick_predictor();
    cluster.set_controller(Box::new(ResourceManager::new(
        ArmConfig::paper_predictive(),
        predictor,
    )));
    cluster.enable_trace(200_000);

    let outcome = cluster.run();

    println!("period  tracks  filter-replicas  evaldecide-replicas  latency-ms  deadline");
    println!("--------------------------------------------------------------------------");
    for p in &outcome.metrics.periods {
        let latency = p
            .end_to_end
            .map(|d| format!("{:9.1}", d.as_millis_f64()))
            .unwrap_or_else(|| "        -".into());
        let verdict = match (p.shed, p.missed) {
            (true, _) => "SHED",
            (_, Some(true)) => "MISS",
            (_, Some(false)) => "ok",
            (_, None) => "…",
        };
        println!(
            "{:>6}  {:>6}  {:>15}  {:>19}  {}  {}",
            p.instance,
            p.tracks,
            p.replicas_per_stage[FILTER_STAGE],
            p.replicas_per_stage[EVAL_DECIDE_STAGE],
            latency,
            verdict
        );
    }

    let s = outcome.metrics.summarize(&[FILTER_STAGE, EVAL_DECIDE_STAGE]);
    println!();
    println!(
        "mission summary: {:.1}% missed, avg {:.2} replicas, {} placement changes",
        s.missed_deadline_pct, s.avg_replicas, s.placement_changes
    );
    let peak = outcome
        .metrics
        .periods
        .iter()
        .map(|p| p.replicas_per_stage[FILTER_STAGE])
        .max()
        .unwrap_or(1);
    println!("peak Filter replication during the raid: {peak} replicas");

    // Every placement decision the manager took, from the structured trace.
    if let Some(trace) = &outcome.trace {
        println!();
        println!("placement decisions:");
        for (t, e) in trace.filtered(|e| matches!(e, TraceEvent::Placement { .. })) {
            if let TraceEvent::Placement { stage, nodes } = e {
                println!("  {t} {stage} -> {nodes:?}");
            }
        }
    }
}
