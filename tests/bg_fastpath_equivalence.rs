//! Fast-path / slow-path equivalence: the background-load fast path
//! (`bg_fast_path`) must be invisible in every observable — metrics,
//! summaries, event traces, and decision-audit records — across seeds,
//! workload patterns, and fault plans. This is the contract that lets
//! the fast path stay on by default while `tests/golden/` and the figure
//! outputs remain byte-stable.

use rtds::experiments::models::quick_predictor;
use rtds::experiments::scenario::{
    run_scenario, CrashFault, FaultPlan, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig,
    ScenarioResult,
};
use rtds::workloads::WorkloadRange;

fn scenario(
    pattern: PatternSpec,
    seed: u64,
    faults: FaultPlan,
    bg_fast_path: bool,
) -> ScenarioConfig {
    ScenarioConfig {
        pattern,
        policy: PolicySpec::Predictive,
        workload: WorkloadRange::new(500, 10_000),
        n_periods: 30,
        ambient_util: 0.25,
        seed,
        scheduler: rtds_sim::sched::SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults,
        observe: ObserveConfig::full(),
        bg_fast_path,
    }
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        drop_prob: 0.10,
        dup_prob: 0.05,
        retx_timeout_us: 20_000,
        jam: None,
        crashes: vec![CrashFault {
            node: 2,
            at_s: 8,
            restart_after_s: Some(3),
        }],
    }
}

/// Every observable of a run, rendered to comparable text. `RunMetrics`
/// intentionally has no `PartialEq` (it carries floats); the Debug
/// rendering is exact and catches any drifted field.
fn observables(r: &ScenarioResult) -> String {
    let trace = r.trace.as_ref().map(|t| t.render()).unwrap_or_default();
    let decisions = format!("{:?}", r.decisions);
    format!(
        "metrics={:?}\nsummary={:?}\nbreakdown={:?}\ntrace={trace}\ndecisions={decisions}",
        r.metrics, r.summary, r.breakdown,
    )
}

#[test]
fn fast_path_matches_slow_path_across_patterns_seeds_and_faults() {
    let predictor = quick_predictor();
    let patterns = [
        PatternSpec::Triangular { half_period: 5 },
        PatternSpec::Increasing { ramp_periods: 30 },
        PatternSpec::Step { low: 5, high: 5 },
    ];
    for pattern in patterns {
        for faults in [FaultPlan::default(), faulty_plan()] {
            for seed in [0x5EED_u64, 1, 0xBAD_CAFE] {
                let on = run_scenario(&scenario(pattern, seed, faults.clone(), true), &predictor);
                let off = run_scenario(&scenario(pattern, seed, faults.clone(), false), &predictor);
                assert_eq!(
                    observables(&on),
                    observables(&off),
                    "fast path diverged: pattern {pattern:?}, seed {seed:#x}, \
                     faults active: {}",
                    faults.is_active(),
                );
            }
        }
    }
}

#[test]
fn fast_path_matches_slow_path_without_ambient_load() {
    // Degenerate case: no generators at all. The fast path must be a
    // strict no-op (no lanes ever armed).
    let predictor = quick_predictor();
    let base = |fast| {
        let mut c = scenario(
            PatternSpec::Triangular { half_period: 5 },
            7,
            FaultPlan::default(),
            fast,
        );
        c.ambient_util = 0.0;
        c
    };
    let on = run_scenario(&base(true), &predictor);
    let off = run_scenario(&base(false), &predictor);
    assert_eq!(observables(&on), observables(&off));
}
