//! Long-horizon soak test (ignored by default; run with
//! `cargo test -p rtds --test soak -- --ignored`).
//!
//! Exercises a full-length evaluation run (600 periods — the scale of the
//! paper's Fig. 8 traces) under the predictive manager with ambient load,
//! jittered releases, LAN clock skew, and two mid-run node failures, and
//! checks the run stays healthy and bounded.

use rtds::arm::config::ArmConfig;
use rtds::arm::manager::ResourceManager;
use rtds::dynbench::app::aaw_task;
use rtds::experiments::models::quick_predictor;
use rtds::prelude::*;
use rtds::workloads::{Pattern, Triangular};

#[test]
#[ignore = "long-running soak; run explicitly"]
fn six_hundred_period_mission_stays_healthy() {
    let mut config = ClusterConfig::paper_baseline(0x50A1u64, SimDuration::from_secs(600));
    config.release_jitter_us = 100_000;
    let mut cluster = Cluster::new(config);
    let mut pattern = Triangular::new(WorkloadRange::new(500, 14_000), 40);
    cluster.add_task(aaw_task(), Box::new(move |i| pattern.tracks_at(i)));
    for n in 0..6 {
        cluster.add_load(Box::new(PoissonLoad::with_utilization(
            LoadGenId(n),
            NodeId(n),
            0.10,
            SimDuration::from_millis(2),
        )));
    }
    cluster.set_controller(Box::new(ResourceManager::new(
        ArmConfig::paper_predictive(),
        quick_predictor(),
    )));
    cluster.fail_node_at(NodeId(5), SimTime::from_secs(200));
    cluster.fail_node_at(NodeId(0), SimTime::from_secs(400));
    let out = cluster.run();
    let s = out.metrics.summarize(&[2, 4]);

    assert!(s.released_periods >= 599, "every period released");
    assert!(
        s.missed_deadline_pct < 5.0,
        "healthy despite failures: {s:?}"
    );
    assert!(s.avg_replicas >= 1.0 && s.avg_replicas <= 6.0);
    // No runaway placement churn: bounded per period.
    assert!(
        s.placement_changes < 2 * s.released_periods as u64,
        "placement churn bounded: {}",
        s.placement_changes
    );
    // Latency distribution is sane.
    let d = out.metrics.latency_distribution().expect("completions");
    assert!(d.p99_ms < 2_000.0, "p99 {d:?}");
    assert!(d.n > 550);
}
