//! Survivability tests: node failures under adaptive management.
//!
//! "Continued availability of application functionality" is the paper's
//! stated motivation for decentralized adaptive resource management (§1);
//! these tests inject node deaths and verify the manager repairs replica
//! placements and the mission keeps meeting deadlines.

use rtds::arm::config::ArmConfig;
use rtds::arm::manager::ResourceManager;
use rtds::dynbench::app::{aaw_task, FILTER_STAGE};
use rtds::experiments::models::quick_predictor;
use rtds::prelude::*;

fn managed_cluster(seed: u64, horizon_s: u64, tracks: u64) -> Cluster {
    let mut config = ClusterConfig::paper_baseline(seed, SimDuration::from_secs(horizon_s));
    config.clock = ClockConfig::perfect();
    let mut cluster = Cluster::new(config);
    cluster.add_task(aaw_task(), Box::new(move |_| tracks));
    cluster.set_controller(Box::new(ResourceManager::new(
        ArmConfig::paper_predictive(),
        quick_predictor(),
    )));
    cluster
}

#[test]
fn spare_node_failure_is_invisible() {
    // Node 5 hosts nothing at low workload; killing it must not affect
    // the task at all.
    let run = |fail: bool| {
        let mut c = managed_cluster(1, 20, 2_000);
        if fail {
            c.fail_node_at(NodeId(5), SimTime::from_secs(5));
        }
        c.run()
    };
    let clean = run(false);
    let failed = run(true);
    let miss = |o: &rtds::sim::cluster::RunOutcome| {
        o.metrics.summarize(&[2, 4]).missed_deadline_pct
    };
    assert_eq!(miss(&clean), 0.0);
    assert_eq!(miss(&failed), 0.0, "spare failure must be invisible");
}

#[test]
fn home_node_failure_fails_inflight_then_recovers() {
    // Kill the Filter home node (p2) mid-run: the in-flight instance dies,
    // the manager re-homes the stage, and subsequent periods complete.
    let mut c = managed_cluster(2, 30, 6_000);
    c.enable_trace(100_000);
    c.fail_node_at(NodeId(FILTER_STAGE as u32), SimTime::from_millis(10_100));
    let out = c.run();

    // Some instance around the failure misses…
    let missed: Vec<u64> = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(true))
        .map(|p| p.instance)
        .collect();
    assert!(!missed.is_empty(), "the in-flight instance must be lost");
    assert!(
        missed.iter().all(|&i| (9..=13).contains(&i)),
        "losses confined to the failure window: {missed:?}"
    );
    // …and the tail of the run is clean again.
    let tail_misses = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.instance >= 15 && p.missed == Some(true))
        .count();
    assert_eq!(tail_misses, 0, "recovery after repair");
    // The repaired placement avoids the dead node forever after.
    for p in out.metrics.periods.iter().filter(|p| p.instance >= 13) {
        assert!(p.replicas_per_stage[FILTER_STAGE] >= 1);
    }
    // Trace contains the failure and a placement repair.
    let trace = out.trace.expect("tracing enabled");
    assert!(trace
        .filtered(|e| matches!(e, TraceEvent::NodeFailed { node } if node.index() == FILTER_STAGE))
        .next()
        .is_some());
    assert!(
        trace
            .filtered(|e| matches!(e, TraceEvent::Placement { stage, nodes }
                if stage.subtask.index() == FILTER_STAGE
                   && !nodes.iter().any(|n| n.index() == FILTER_STAGE)))
            .next()
            .is_some(),
        "manager must re-place Filter off the dead node"
    );
}

#[test]
fn replica_host_failure_under_heavy_load_recovers() {
    // Heavy load forces replication; then one replica host dies. The
    // manager must keep the pipeline alive on the remaining nodes.
    let mut c = managed_cluster(3, 40, 14_000);
    c.fail_node_at(NodeId(5), SimTime::from_secs(20));
    let out = c.run();
    let late = |from: u64| {
        out.metrics
            .periods
            .iter()
            .filter(|p| p.instance >= from && p.missed.is_some())
            .filter(|p| p.missed == Some(true))
            .count()
    };
    // After a settling window the system is meeting deadlines again.
    assert!(
        late(26) <= 1,
        "post-failure steady state should be nearly clean ({} late misses)",
        late(26)
    );
    // The dead node hosts nothing after the failure settles.
    for p in &out.metrics.periods {
        if p.instance >= 25 {
            assert!(p.missed.is_some() || p.instance >= 39, "decided");
        }
    }
}

#[test]
fn multiple_failures_degrade_gracefully() {
    // Kill three of six nodes; with half the cluster gone at peak load the
    // system sheds/misses more but never wedges, and still completes
    // periods on the survivors.
    let mut c = managed_cluster(4, 40, 12_000);
    c.fail_node_at(NodeId(5), SimTime::from_secs(10));
    c.fail_node_at(NodeId(4), SimTime::from_secs(15)); // EvalDecide home!
    c.fail_node_at(NodeId(1), SimTime::from_secs(20)); // Preprocess home!
    let out = c.run();
    let completed_late = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.instance >= 30 && p.missed == Some(false))
        .count();
    assert!(
        completed_late >= 5,
        "the mission must keep completing periods on 3 surviving nodes \
         ({completed_late} clean periods after instance 30)"
    );
}

#[test]
fn failure_without_manager_is_fatal_for_the_stage() {
    // Null controller: once the Filter home dies, every later instance
    // dies with it. This is the counterfactual that makes the manager's
    // repair meaningful.
    let mut config = ClusterConfig::paper_baseline(5, SimDuration::from_secs(20));
    config.clock = ClockConfig::perfect();
    let mut c = Cluster::new(config);
    c.add_task(aaw_task(), Box::new(|_| 3_000));
    c.fail_node_at(NodeId(FILTER_STAGE as u32), SimTime::from_secs(5));
    let out = c.run();
    let after_failure_ok = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.instance >= 6 && p.missed == Some(false))
        .count();
    assert_eq!(after_failure_ok, 0, "no instance can pass a dead stage");
}

#[test]
fn crash_during_transmission_does_not_panic_and_counts_losses() {
    // Regression for the stale-TxComplete panic: crash the Sensor home
    // (p0) at a time when it is mid-transmission to the next stage. The
    // run must complete, and the aborted traffic must show up in
    // `messages_lost` and the trace rather than vanishing.
    let mut c = managed_cluster(7, 20, 12_000);
    c.enable_trace(100_000);
    // 12k tracks * 80 B ≈ 1 MB ≈ 80 ms wire time per hop: at 60 ms into
    // a period the first hop is reliably in flight.
    c.crash_node_at(NodeId(0), SimTime::from_millis(3_060), None);
    let out = c.run();
    assert!(out.metrics.messages_lost >= 1, "aborted traffic is accounted");
    let trace = out.trace.expect("tracing enabled");
    assert!(
        trace
            .filtered(|e| matches!(e, TraceEvent::MessageLost { .. }))
            .next()
            .is_some(),
        "lost messages are traced"
    );
    // p0 hosts the non-replicable Sensor stage: everything after the
    // crash misses, but the simulator itself never wedges or panics.
    assert!(out.metrics.periods.len() >= 20);
}

#[test]
fn messages_to_dead_nodes_count_as_lost() {
    // Null controller so nothing re-homes the dead stage: every period
    // keeps shipping stage data at the dead Filter node, and every one of
    // those deliveries must be accounted as lost.
    let mut config = ClusterConfig::paper_baseline(8, SimDuration::from_secs(12));
    config.clock = ClockConfig::perfect();
    let mut c = Cluster::new(config);
    c.add_task(aaw_task(), Box::new(|_| 2_000));
    c.enable_trace(100_000);
    c.crash_node_at(NodeId(FILTER_STAGE as u32), SimTime::from_secs(4), None);
    let out = c.run();
    assert!(
        out.metrics.messages_lost >= 5,
        "periods after the crash keep losing stage data: {}",
        out.metrics.messages_lost
    );
    let trace = out.trace.expect("tracing enabled");
    let lost_to_dead = trace
        .filtered(|e| matches!(e, TraceEvent::MessageLost { dst, .. }
            if dst.index() == FILTER_STAGE))
        .count();
    assert!(lost_to_dead >= 5, "losses name the dead destination: {lost_to_dead}");
}

#[test]
fn crash_restart_rejoins_and_manager_reuses_the_node() {
    // Crash the Filter home with a restart: the manager repairs the
    // placement while the node is down, the node rejoins cold, and the
    // tail of the mission is clean again.
    let mut c = managed_cluster(9, 40, 6_000);
    c.enable_trace(100_000);
    c.crash_node_at(
        NodeId(FILTER_STAGE as u32),
        SimTime::from_millis(10_100),
        Some(SimDuration::from_secs(8)),
    );
    let out = c.run();
    assert_eq!(out.metrics.node_restarts, 1);
    let trace = out.trace.expect("tracing enabled");
    assert_eq!(
        trace
            .filtered(|e| matches!(e, TraceEvent::NodeRestarted { node }
                if node.index() == FILTER_STAGE))
            .count(),
        1
    );
    // Failure handled like the legacy fail-stop: losses near the crash…
    assert!(out
        .metrics
        .periods
        .iter()
        .any(|p| p.missed == Some(true)));
    // …and a clean tail long after the restart.
    let tail_misses = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.instance >= 30 && p.missed == Some(true))
        .count();
    assert_eq!(tail_misses, 0, "post-restart steady state is clean");
}

#[test]
fn lossy_bus_with_retransmission_keeps_the_mission_alive() {
    let run = |drop_prob: f64, retx_timeout_us: u64| {
        let mut config = ClusterConfig::paper_baseline(10, SimDuration::from_secs(30));
        config.clock = ClockConfig::perfect();
        config.bus.drop_prob = drop_prob;
        config.bus.retx_timeout_us = retx_timeout_us;
        config.bus.retx_max_retries = 6;
        let mut c = Cluster::new(config);
        c.add_task(aaw_task(), Box::new(|_| 2_000));
        c.set_controller(Box::new(ResourceManager::new(
            ArmConfig::paper_predictive(),
            quick_predictor(),
        )));
        c.run()
    };
    let degraded = run(0.2, 30_000);
    assert!(degraded.metrics.messages_dropped > 0, "the bus really is lossy");
    assert!(degraded.metrics.retransmits > 0, "drops are being recovered");
    let completed = degraded
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(false))
        .count();
    assert!(
        completed >= 25,
        "retransmission keeps periods completing: {completed}/31"
    );
}

#[test]
fn redundant_retransmissions_do_not_fail_satisfied_instances() {
    // Regression: with a retransmit timeout far shorter than the queueing
    // delay, the timer fires while the original copy is still queued and a
    // redundant copy is emitted. Once the original delivers, the leftover
    // copy may still be dropped by the lossy bus — that drop must NOT fail
    // the instance, whose stage already received the data.
    let mut config = ClusterConfig::paper_baseline(12, SimDuration::from_secs(30));
    config.clock = ClockConfig::perfect();
    config.bus.drop_prob = 0.15;
    // ~26 ms wire time per hop at this load vs a 2 ms timeout: every
    // message spawns redundant copies before its original delivers.
    config.bus.retx_timeout_us = 2_000;
    config.bus.retx_max_retries = 12;
    let mut c = Cluster::new(config);
    c.add_task(aaw_task(), Box::new(|_| 4_000));
    c.set_controller(Box::new(ResourceManager::new(
        ArmConfig::paper_predictive(),
        quick_predictor(),
    )));
    let out = c.run();
    assert!(out.metrics.retransmits > 0, "the timeout really is aggressive");
    assert!(out.metrics.messages_dropped > 0, "the bus really is lossy");
    let completed = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(false))
        .count();
    assert!(
        completed >= 25,
        "dropped redundant copies must not kill satisfied instances: \
         {completed}/{} completed",
        out.metrics.periods.len()
    );
}

#[test]
fn failure_realism_is_deterministic_end_to_end() {
    let run = || {
        let mut config = ClusterConfig::paper_baseline(11, SimDuration::from_secs(25));
        config.clock = ClockConfig::perfect();
        config.bus.drop_prob = 0.15;
        config.bus.dup_prob = 0.05;
        config.bus.retx_timeout_us = 25_000;
        let mut c = Cluster::new(config);
        c.add_task(aaw_task(), Box::new(|_| 4_000));
        c.set_controller(Box::new(ResourceManager::new(
            ArmConfig::paper_predictive(),
            quick_predictor(),
        )));
        c.crash_node_at(
            NodeId(FILTER_STAGE as u32),
            SimTime::from_millis(8_300),
            Some(SimDuration::from_secs(6)),
        );
        c.run()
    };
    let a = run();
    let b = run();
    let fingerprint = |o: &rtds::sim::cluster::RunOutcome| {
        (
            o.metrics
                .periods
                .iter()
                .map(|p| p.end_to_end)
                .collect::<Vec<_>>(),
            o.metrics.messages_lost,
            o.metrics.messages_dropped,
            o.metrics.messages_duplicated,
            o.metrics.retransmits,
            o.metrics.node_restarts,
        )
    };
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn dead_node_placement_actions_are_rejected() {
    // A controller that insists on placing replicas on a dead node gets
    // its actions rejected rather than corrupting the run.
    struct Insister;
    impl Controller for Insister {
        fn on_period_boundary(
            &mut self,
            _c: &[PeriodObservation],
            _ctx: &ControlContext,
        ) -> Vec<ControlAction> {
            vec![ControlAction::SetPlacement {
                task: TaskId(0),
                subtask: SubtaskIdx(2),
                nodes: vec![NodeId(2), NodeId(5)],
            }]
        }
        fn name(&self) -> &'static str {
            "insister"
        }
    }
    let mut config = ClusterConfig::paper_baseline(6, SimDuration::from_secs(10));
    config.clock = ClockConfig::perfect();
    let mut c = Cluster::new(config);
    c.add_task(aaw_task(), Box::new(|_| 1_000));
    c.set_controller(Box::new(Insister));
    c.fail_node_at(NodeId(5), SimTime::from_millis(500));
    let out = c.run();
    assert!(out.metrics.rejected_actions > 0, "dead-node placements rejected");
}
