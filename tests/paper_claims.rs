//! The paper's §5.2 claims, encoded as executable assertions over
//! miniature versions of the actual evaluation sweeps.
//!
//! These are the same code paths the `fig9`/`fig10`/`fig13` binaries run,
//! at reduced scale so CI can afford them; EXPERIMENTS.md records the
//! full-scale numbers.

use rtds::experiments::models::quick_predictor;
use rtds::experiments::scenario::{PatternSpec, PolicySpec};
use rtds::experiments::sweep::{points_for, run_sweep, SweepConfig};

fn sweep(pattern: PatternSpec, units: Vec<u64>) -> Vec<rtds::experiments::SweepPoint> {
    let mut cfg = SweepConfig::quick(pattern);
    cfg.units = units;
    cfg.n_periods = 60;
    cfg.threads = 2;
    run_sweep(&cfg, &quick_predictor())
}

#[test]
fn claim_equal_performance_at_small_workloads() {
    // "for smaller workloads where no replication is needed, the
    // performance of both algorithms is the same" (§5.2, Fig. 10).
    let pts = sweep(PatternSpec::Triangular { half_period: 10 }, vec![2, 6]);
    for unit in [2u64, 6] {
        let p = pts
            .iter()
            .find(|x| x.units == unit && x.policy == PolicySpec::Predictive)
            .unwrap();
        let n = pts
            .iter()
            .find(|x| x.units == unit && x.policy == PolicySpec::NonPredictive)
            .unwrap();
        assert_eq!(p.avg_replicas, 1.0, "no replication at unit {unit}");
        assert_eq!(n.avg_replicas, 1.0);
        assert!(
            (p.combined - n.combined).abs() < 1e-9,
            "identical runs at unit {unit}: {} vs {}",
            p.combined,
            n.combined
        );
    }
}

#[test]
fn claim_predictive_wins_combined_metric_on_triangular_at_load() {
    // "for larger workloads, the predictive algorithm shows a better
    // combined performance than the non-predictive algorithm" (Fig. 10).
    let pts = sweep(PatternSpec::Triangular { half_period: 10 }, vec![24, 30]);
    let mut wins = 0;
    for unit in [24u64, 30] {
        let p = pts
            .iter()
            .find(|x| x.units == unit && x.policy == PolicySpec::Predictive)
            .unwrap();
        let n = pts
            .iter()
            .find(|x| x.units == unit && x.policy == PolicySpec::NonPredictive)
            .unwrap();
        if p.combined < n.combined {
            wins += 1;
        }
    }
    assert!(wins >= 1, "predictive should win at least one high-load point");
}

#[test]
fn claim_nonpredictive_uses_more_replicas_and_less_cpu() {
    // Fig. 9b/9d: "the non-predictive algorithm has a smaller … CPU
    // utilization … however, [it] uses much larger number of subtask
    // replicas".
    let pts = sweep(PatternSpec::Triangular { half_period: 10 }, vec![21]);
    let p = points_for(&pts, PolicySpec::Predictive)[0];
    let n = points_for(&pts, PolicySpec::NonPredictive)[0];
    assert!(
        n.avg_replicas > p.avg_replicas,
        "replicas: non-predictive {} vs predictive {}",
        n.avg_replicas,
        p.avg_replicas
    );
    assert!(
        n.cpu_pct <= p.cpu_pct + 0.5,
        "cpu: non-predictive {} vs predictive {}",
        n.cpu_pct,
        p.cpu_pct
    );
}

#[test]
fn claim_holds_on_ramp_patterns_pre_threshold() {
    // Figs. 13a/13b: "the predictive algorithm performs better than the
    // non-predictive for the workload range 0-28". At this miniature
    // scale the increasing ramp shows the full-scale ordering; the
    // decreasing ramp (which *starts* in overload, before any profile of
    // the run has been observed) is noisier, so it only gets a band check
    // here — EXPERIMENTS.md records the full-scale win on both ramps.
    let inc = sweep(PatternSpec::Increasing { ramp_periods: 60 }, vec![24]);
    let p = points_for(&inc, PolicySpec::Predictive)[0];
    let n = points_for(&inc, PolicySpec::NonPredictive)[0];
    assert!(
        p.combined <= n.combined + 1.0,
        "increasing ramp: predictive {} vs non-predictive {}",
        p.combined,
        n.combined
    );

    let dec = sweep(PatternSpec::Decreasing { ramp_periods: 60 }, vec![24]);
    let p = points_for(&dec, PolicySpec::Predictive)[0];
    let n = points_for(&dec, PolicySpec::NonPredictive)[0];
    assert!(
        (p.combined - n.combined).abs() < 0.25 * n.combined,
        "decreasing ramp stays in the same band: {} vs {}",
        p.combined,
        n.combined
    );
}

#[test]
fn claim_metrics_are_internally_consistent() {
    // The combined metric must equal the sum of its parts for every
    // sweep point (guards the reporting pipeline end to end).
    let pts = sweep(PatternSpec::Triangular { half_period: 10 }, vec![18]);
    for pt in &pts {
        let expect =
            pt.missed_pct + pt.cpu_pct + pt.net_pct + 100.0 * pt.avg_replicas / 6.0;
        assert!(
            (pt.combined - expect).abs() < 1e-9,
            "combined {} vs components {expect}",
            pt.combined
        );
    }
}
