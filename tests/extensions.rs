//! Integration tests for the extension features: multi-task management,
//! online model refinement, and control latency.

use rtds::arm::config::ArmConfig;
use rtds::arm::manager::{CompositeManager, ResourceManager};
use rtds::arm::predictor::analytic_predictor;
use rtds::dynbench::app::{aaw_task, surveillance_task};
use rtds::experiments::models::{quick_predictor, LINK_BPS};
use rtds::prelude::*;
use rtds::regression::BufferDelayModel;

fn comm() -> CommDelayModel {
    CommDelayModel::new(BufferDelayModel::from_slope(0.0005), LINK_BPS)
}

#[test]
fn two_tasks_coexist_under_composite_management() {
    let mut cluster = Cluster::new({
        let mut c = ClusterConfig::paper_baseline(11, SimDuration::from_secs(40));
        c.clock = ClockConfig::perfect();
        c
    });
    let aaw = aaw_task();
    let surv = surveillance_task(TaskId(1));
    cluster.add_task(aaw.clone(), Box::new(|i| 500 + (i % 15) * 800));
    cluster.add_task(surv.clone(), Box::new(|i| 500 + ((i + 7) % 15) * 600));
    let m0 = ResourceManager::new(ArmConfig::paper_predictive(), analytic_predictor(&aaw, comm()));
    let m1 = ResourceManager::new(ArmConfig::paper_predictive(), analytic_predictor(&surv, comm()))
        .for_task(TaskId(1));
    cluster.set_controller(Box::new(CompositeManager::new(vec![m0, m1])));
    let out = cluster.run();

    // Period records interleave the two tasks' releases; both must be
    // overwhelmingly deadline-clean (light-to-moderate combined load).
    let (mut aaw_ok, mut surv_ok) = (0, 0);
    for (i, p) in out.metrics.periods.iter().enumerate() {
        if p.missed == Some(false) {
            if i % 2 == 0 {
                aaw_ok += 1;
            } else {
                surv_ok += 1;
            }
        }
    }
    assert!(aaw_ok >= 35, "AAW task healthy: {aaw_ok}");
    assert!(surv_ok >= 35, "surveillance task healthy: {surv_ok}");
    // Each record carries the right per-task stage arity.
    for (i, p) in out.metrics.periods.iter().enumerate() {
        assert_eq!(p.replicas_per_stage.len(), if i % 2 == 0 { 5 } else { 3 });
    }
}

#[test]
fn total_periodic_workload_feeds_eq5_across_tasks() {
    // With two tasks, the controller's ControlContext.total_tracks must
    // be the sum of both tasks' current workloads.
    struct Probe {
        seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    }
    impl Controller for Probe {
        fn on_period_boundary(
            &mut self,
            _c: &[PeriodObservation],
            ctx: &ControlContext,
        ) -> Vec<ControlAction> {
            self.seen.lock().unwrap().push(ctx.total_tracks());
            Vec::new()
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut cluster = Cluster::new({
        let mut c = ClusterConfig::paper_baseline(12, SimDuration::from_secs(5));
        c.clock = ClockConfig::perfect();
        c
    });
    cluster.add_task(aaw_task(), Box::new(|_| 3_000));
    cluster.add_task(surveillance_task(TaskId(1)), Box::new(|_| 2_000));
    cluster.set_controller(Box::new(Probe { seen: seen.clone() }));
    cluster.run();
    let v = seen.lock().unwrap().clone();
    // After both tasks have released at least once, total = 5000.
    assert!(v.contains(&5_000), "{v:?}");
}

#[test]
fn composite_manager_supports_mixed_policies() {
    // Task 0 managed predictively, task 1 by the non-predictive rule —
    // policies coexist on one cluster without interfering.
    let mut cluster = Cluster::new({
        let mut c = ClusterConfig::paper_baseline(21, SimDuration::from_secs(30));
        c.clock = ClockConfig::perfect();
        c
    });
    let aaw = aaw_task();
    let surv = surveillance_task(TaskId(1));
    cluster.add_task(aaw.clone(), Box::new(|i| 500 + (i % 12) * 1_000));
    cluster.add_task(surv.clone(), Box::new(|i| 500 + ((i + 6) % 12) * 700));
    let m0 = ResourceManager::new(ArmConfig::paper_predictive(), analytic_predictor(&aaw, comm()));
    let m1 = ResourceManager::new(
        ArmConfig::paper_nonpredictive(),
        analytic_predictor(&surv, comm()),
    )
    .for_task(TaskId(1));
    cluster.set_controller(Box::new(CompositeManager::new(vec![m0, m1])));
    let out = cluster.run();
    let ok = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(false))
        .count();
    assert!(ok >= 50, "both tasks mostly healthy: {ok}");
    assert_eq!(out.metrics.rejected_actions, 0);
}

#[test]
fn incremental_policy_adapts_one_replica_at_a_time() {
    let p = quick_predictor();
    let scenario = ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: 10 },
        policy: PolicySpec::Incremental,
        workload: WorkloadRange::new(500, 14_000),
        n_periods: 50,
        ambient_util: 0.10,
        seed: 22,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };
    let r = run_scenario(&scenario, &p);
    assert_eq!(r.policy, "incremental");
    assert!(r.summary.avg_replicas > 1.0, "it replicates: {:?}", r.summary);
    // One-at-a-time growth: replica count never jumps by more than one
    // per stage per period.
    for w in r.metrics.periods.windows(2) {
        for (a, b) in w[0].replicas_per_stage.iter().zip(&w[1].replicas_per_stage) {
            assert!(
                *b <= a + 1,
                "incremental must not jump: {} -> {}",
                a,
                b
            );
        }
    }
}

#[test]
fn online_refinement_recovers_a_bad_prior() {
    // 3x underestimating predictor: without refinement the manager's
    // feedback loop over-replicates; with RLS it converges back to the
    // calibrated behaviour.
    use rtds::regression::ExecLatencyModel;
    let good = quick_predictor();
    let mut bad = good.clone();
    for j in 0..good.n_stages() {
        let m = good.exec_model(j);
        bad.set_exec_model(
            j,
            ExecLatencyModel::from_coefficients(
                [m.a[0] / 3.0, m.a[1] / 3.0, m.a[2] / 3.0],
                [m.b[0] / 3.0, m.b[1] / 3.0, m.b[2] / 3.0],
            ),
        );
    }
    let run = |refine: bool, predictor: &rtds::arm::predictor::Predictor| {
        let scenario = ScenarioConfig {
            pattern: PatternSpec::Triangular { half_period: 10 },
            policy: PolicySpec::Predictive,
            workload: WorkloadRange::new(500, 14_000),
            n_periods: 80,
            ambient_util: 0.10,
            seed: 13,
            scheduler: SchedulerKind::paper_baseline(),
            online_refinement: refine,
            failures: Vec::new(),
            faults: FaultPlan::default(),
            observe: ObserveConfig::default(),
            bg_fast_path: true,
        };
        run_scenario(&scenario, predictor)
    };
    let calibrated = run(false, &good);
    let bad_static = run(false, &bad);
    let bad_refined = run(true, &bad);
    // Refinement pulls the mis-calibrated run toward the calibrated one.
    let gap_static = (bad_static.breakdown.combined - calibrated.breakdown.combined).abs();
    let gap_refined = (bad_refined.breakdown.combined - calibrated.breakdown.combined).abs();
    assert!(
        gap_refined < gap_static,
        "refinement must close the gap: static {gap_static:.2} vs refined {gap_refined:.2}"
    );
}

#[test]
fn act_every_gates_actions_but_not_monitoring() {
    let run = |act_every: u32| {
        let mut cluster = Cluster::new({
            let mut c = ClusterConfig::paper_baseline(14, SimDuration::from_secs(40));
            c.clock = ClockConfig::perfect();
            c
        });
        let mut pattern =
            rtds::workloads::Step::new(rtds::workloads::WorkloadRange::new(500, 14_000), 5, 5);
        cluster.add_task(
            aaw_task(),
            Box::new(move |i| rtds::workloads::Pattern::tracks_at(&mut pattern, i)),
        );
        let mut cfg = ArmConfig::paper_predictive();
        cfg.act_every = act_every;
        cluster.set_controller(Box::new(ResourceManager::new(cfg, quick_predictor())));
        cluster.run().metrics.summarize(&[2, 4])
    };
    let fast = run(1);
    let slow = run(4);
    // Slow control issues fewer placement changes…
    assert!(
        slow.placement_changes < fast.placement_changes,
        "slow {} vs fast {}",
        slow.placement_changes,
        fast.placement_changes
    );
    // …and both still adapt (some replication happens under the square
    // wave at 14k tracks).
    assert!(fast.avg_replicas > 1.0);
    assert!(slow.avg_replicas > 1.0);
}

#[test]
fn failures_via_scenario_config_reach_the_cluster() {
    let p = quick_predictor();
    let mut cfg = ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: 10 },
        policy: PolicySpec::Predictive,
        workload: WorkloadRange::new(500, 8_000),
        n_periods: 40,
        ambient_util: 0.0,
        seed: 15,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: vec![(4, 15)], // EvalDecide home dies at t = 15 s
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };
    let failed = run_scenario(&cfg, &p);
    cfg.failures.clear();
    let clean = run_scenario(&cfg, &p);
    assert!(clean.summary.missed_deadline_pct <= failed.summary.missed_deadline_pct);
    // The managed run survives: most post-failure periods complete.
    let post_ok = failed
        .metrics
        .periods
        .iter()
        .filter(|r| r.instance >= 20 && r.missed == Some(false))
        .count();
    assert!(post_ok >= 15, "post-failure recovery: {post_ok} clean periods");
}
