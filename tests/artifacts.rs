//! Artifact well-formedness: every figure runner must emit tables whose
//! CSV and JSON forms are parseable and mutually consistent, and the
//! run-metrics types must survive serde round-trips (they are the
//! persistence surface of the whole harness).

use rtds::experiments::figures::{patterns, tables, FigureOptions};
use rtds::experiments::models::quick_predictor;
use rtds::prelude::*;

fn opts(tag: &str) -> FigureOptions {
    FigureOptions::quick_for_tests(tag)
}

/// Minimal CSV parser sufficient for our own output (no embedded quotes
/// in the figures' numeric tables).
fn parse_csv(s: &str) -> Vec<Vec<String>> {
    s.lines()
        .map(|l| l.split(',').map(|c| c.trim_matches('"').to_string()).collect())
        .collect()
}

#[test]
fn figure_tables_round_trip_csv_and_json() {
    for fig in [tables::table1(&opts("art1")), patterns::fig8(&opts("art2"))] {
        for (name, table) in &fig.tables {
            let csv = table.to_csv();
            let rows = parse_csv(&csv);
            assert!(rows.len() >= 2, "{name}: header + data");
            let width = rows[0].len();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(r.len(), width, "{name}: row {i} arity");
            }
            // JSON parses and has one object per data row with the same keys.
            let parsed: Vec<serde_json::Value> =
                serde_json::from_str(&table.to_json()).expect("valid JSON");
            assert_eq!(parsed.len(), rows.len() - 1, "{name}: JSON row count");
            for obj in &parsed {
                let map = obj.as_object().expect("objects");
                assert_eq!(map.len(), width, "{name}: JSON key count");
                for key in &rows[0] {
                    assert!(map.contains_key(key), "{name}: missing key {key}");
                }
            }
        }
    }
}

#[test]
fn saved_artifacts_land_on_disk_and_parse() {
    let o = opts("art-disk");
    let fig = tables::table1(&o);
    let paths = fig.save_csvs(&o.out_dir).expect("save");
    assert_eq!(paths.len(), 2, "CSV + JSON per table");
    for p in &paths {
        let content = std::fs::read_to_string(p).expect("readable");
        assert!(!content.is_empty());
        if p.extension().and_then(|e| e.to_str()) == Some("json") {
            let _: Vec<serde_json::Value> = serde_json::from_str(&content).expect("valid JSON");
        }
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn run_metrics_survive_serde_round_trip() {
    // Produce real metrics from a short managed run, then round-trip the
    // whole structure through JSON.
    let scenario = ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: 5 },
        policy: PolicySpec::Predictive,
        workload: WorkloadRange::new(500, 9_000),
        n_periods: 15,
        ambient_util: 0.10,
        seed: 77,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: vec![(5, 8)],
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };
    let r = run_scenario(&scenario, &quick_predictor());
    let json = serde_json::to_string(&r.metrics).expect("serialize");
    let back: rtds::sim::metrics::RunMetrics = serde_json::from_str(&json).expect("deserialize");

    assert_eq!(back.periods.len(), r.metrics.periods.len());
    assert_eq!(back.horizon, r.metrics.horizon);
    assert_eq!(back.placement_changes, r.metrics.placement_changes);
    assert_eq!(back.stage_records.len(), r.metrics.stage_records.len());
    for (a, b) in back.periods.iter().zip(&r.metrics.periods) {
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.end_to_end, b.end_to_end);
        assert_eq!(a.missed, b.missed);
        assert_eq!(a.replicas_per_stage, b.replicas_per_stage);
    }
    // Summaries computed before and after the round trip agree.
    let s1 = r.metrics.summarize(&[2, 4]);
    let s2 = back.summarize(&[2, 4]);
    assert_eq!(s1, s2);
}

#[test]
fn latency_distribution_round_trips_and_orders() {
    let scenario = ScenarioConfig {
        pattern: PatternSpec::Increasing { ramp_periods: 12 },
        policy: PolicySpec::None,
        workload: WorkloadRange::new(500, 6_000),
        n_periods: 12,
        ambient_util: 0.0,
        seed: 3,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };
    let r = run_scenario(&scenario, &quick_predictor());
    let d = r.metrics.latency_distribution().expect("completions");
    assert!(d.min_ms <= d.p50_ms && d.p50_ms <= d.p95_ms);
    assert!(d.p95_ms <= d.p99_ms && d.p99_ms <= d.max_ms);
    assert!(d.mean_ms >= d.min_ms && d.mean_ms <= d.max_ms);
    let json = serde_json::to_string(&d).unwrap();
    let back: rtds::sim::metrics::LatencyDistribution = serde_json::from_str(&json).unwrap();
    assert_eq!(back, d);
}

#[test]
fn profile_data_artifact_from_campaign_is_loadable() {
    // The `profile` binary's artifact shape: build a small campaign,
    // save, reload, and verify the fitted models are usable.
    use rtds::dynbench::profile::{profile_execution, ProfileConfig};
    let cfg = ProfileConfig::quick(9);
    let mut data = ProfileData::default();
    data.exec_samples
        .insert(2, profile_execution(rtds::dynbench::filter_cost(), &cfg));
    data.fit_all();
    let dir = std::env::temp_dir().join("rtds-artifact-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    data.save(&path).unwrap();
    let back = ProfileData::load(&path).unwrap();
    let m = back.exec_models.get(&2).expect("fitted model survives");
    assert!(m.predict(20.0, 40.0) > 0.0);
    std::fs::remove_file(&path).ok();
}
