//! Golden-file regression test: the quick triangular sweep must produce
//! byte-identical CSV output run over run. Guards the entire pipeline
//! (simulator, algorithms, metrics, reporting) against unintended
//! behavioral drift — any change to this file's expectations should be a
//! deliberate, review-worthy event.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test -p rtds --test golden`

use std::path::PathBuf;

use rtds::experiments::models::quick_predictor;
use rtds::experiments::report::Table;
use rtds::experiments::scenario::PatternSpec;
use rtds::experiments::sweep::{run_sweep, SweepConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig9_quick.csv")
}

fn produce_csv() -> String {
    let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
    cfg.units = vec![4, 16, 28];
    cfg.n_periods = 40;
    cfg.threads = 1;
    let points = run_sweep(&cfg, &quick_predictor());
    let mut t = Table::new(vec![
        "units",
        "policy",
        "missed_pct",
        "cpu_pct",
        "net_pct",
        "avg_replicas",
        "combined",
    ]);
    for p in &points {
        t.row(vec![
            p.units.to_string(),
            p.policy.name().to_string(),
            format!("{:.6}", p.missed_pct),
            format!("{:.6}", p.cpu_pct),
            format!("{:.6}", p.net_pct),
            format!("{:.6}", p.avg_replicas),
            format!("{:.6}", p.combined),
        ]);
    }
    t.to_csv()
}

#[test]
fn quick_sweep_matches_golden_output() {
    let csv = produce_csv();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("golden file updated: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test -p rtds --test golden",
            path.display()
        )
    });
    assert_eq!(
        csv, golden,
        "sweep output drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}
