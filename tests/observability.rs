//! Observability-layer integration tests.
//!
//! The contract under test: enabling the trace and decision sinks is
//! *pure observation* — byte-identical results to an unobserved run —
//! while every placement change the manager makes is explained by a
//! decision record, and the exporters produce documents that actually
//! load in their target tools.

use std::path::PathBuf;

use rtds::arm::audit::DecisionArm;
use rtds::experiments::export::{chrome_trace, decisions_jsonl, validate_chrome_trace};
use rtds::experiments::models::quick_predictor;
use rtds::experiments::report::Table;
use rtds::experiments::scenario::{
    run_scenario, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig, ScenarioResult,
};
use rtds::experiments::sweep::{run_sweep, SweepConfig};
use rtds::sim::metrics::ResidualKind;
use rtds::sim::trace::TraceEvent;

fn observed(policy: PolicySpec) -> ScenarioResult {
    let mut cfg = ScenarioConfig::paper(
        PatternSpec::Triangular { half_period: 10 },
        policy,
        14_000,
    );
    cfg.n_periods = 40;
    cfg.observe = ObserveConfig::full();
    run_scenario(&cfg, &quick_predictor())
}

/// The golden-determinism guarantee: the quick sweep with *both* sinks
/// enabled must reproduce `tests/golden/fig9_quick.csv` byte for byte.
/// This is the same pipeline as `tests/golden.rs`, differing only in
/// `observe` — any divergence means observation perturbed the simulation.
#[test]
fn observed_sweep_is_byte_identical_to_golden() {
    let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
    cfg.units = vec![4, 16, 28];
    cfg.n_periods = 40;
    cfg.threads = 1;
    cfg.observe = ObserveConfig::full();
    let points = run_sweep(&cfg, &quick_predictor());
    let mut t = Table::new(vec![
        "units",
        "policy",
        "missed_pct",
        "cpu_pct",
        "net_pct",
        "avg_replicas",
        "combined",
    ]);
    for p in &points {
        t.row(vec![
            p.units.to_string(),
            p.policy.name().to_string(),
            format!("{:.6}", p.missed_pct),
            format!("{:.6}", p.cpu_pct),
            format!("{:.6}", p.net_pct),
            format!("{:.6}", p.avg_replicas),
            format!("{:.6}", p.combined),
        ]);
    }
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig9_quick.csv");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert_eq!(
        t.to_csv(),
        golden,
        "enabling observability sinks changed simulation results (observer effect)"
    );
}

/// Every `Placement` trace event in a managed run must be matched by a
/// decision record at the same instant, for the same stage, choosing
/// exactly that replica set — i.e. no placement ever changes without an
/// audit trail saying why.
#[test]
fn every_placement_change_is_explained_by_a_decision() {
    for policy in [PolicySpec::Predictive, PolicySpec::NonPredictive] {
        let r = observed(policy);
        let trace = r.trace.as_ref().expect("trace sink enabled");
        let mut placements = 0;
        for (t, e) in trace.events() {
            if let TraceEvent::Placement { stage, nodes } = e {
                placements += 1;
                let explained = r.decisions.iter().any(|(dt, d)| {
                    dt == t
                        && d.task == stage.task.0
                        && d.stage == stage.subtask.0
                        && d.arm != DecisionArm::NoOp
                        && d.chosen == *nodes
                });
                assert!(
                    explained,
                    "{policy:?}: placement at {t} for {stage} -> {nodes:?} \
                     has no matching decision record"
                );
            }
        }
        assert!(placements > 0, "{policy:?}: scenario should change placements");
    }
}

/// The decision stream carries the paper's decision procedure: replicate
/// decisions from the predictive policy name candidates with forecasts
/// compared against the `dl(st) − sl` threshold.
#[test]
fn predictive_decisions_expose_forecasts_and_thresholds() {
    let r = observed(PolicySpec::Predictive);
    let replicate: Vec<_> = r
        .decisions
        .iter()
        .filter(|(_, d)| d.arm == DecisionArm::Replicate)
        .collect();
    assert!(!replicate.is_empty(), "heavy load must trigger replication");
    for (_, d) in &replicate {
        assert_eq!(d.policy, "predictive");
        assert!(d.threshold_ms > 0.0 && d.threshold_ms < d.budget_ms);
        assert!(
            !d.candidates.is_empty() || d.out_of_processors,
            "a replicate decision either examines candidates or records that \
             none were available"
        );
        for c in &d.candidates {
            assert!(c.eex_ms.is_some() && c.ecd_ms.is_some(), "predictive forecasts");
        }
        // Running out of processors (or a threshold already met) may keep
        // the set as-is, but replication never shrinks it.
        assert!(d.chosen.len() >= d.before.len());
    }
    assert!(
        replicate.iter().any(|(_, d)| d.chosen.len() > d.before.len()),
        "at least one replicate decision must actually grow a replica set"
    );
}

/// Exporters produce documents that re-parse and validate.
#[test]
fn exports_validate_against_their_schemas() {
    let r = observed(PolicySpec::Predictive);
    let doc = chrome_trace(r.trace.as_ref(), &r.decisions, None);
    let n = validate_chrome_trace(&doc).expect("exported Chrome trace validates");
    assert!(n > 0);
    assert!(doc.contains("ReplicateSubtask"));

    let jsonl = decisions_jsonl(&r.decisions);
    assert_eq!(jsonl.lines().count(), r.decisions.len());
    for line in jsonl.lines() {
        let v: rtds::experiments::serde_json::Value =
            rtds::experiments::serde_json::from_str(line).expect("valid JSON line");
        assert!(v["at_us"].as_u64().is_some());
        assert!(v["decision"]["policy"].as_str().is_some());
    }
}

/// Forecast-accuracy telemetry: predictive runs accumulate per-stage
/// residual statistics for both the Eq. (3) execution forecast and the
/// Eqs. (4)–(6) communication forecast; non-forecasting policies report
/// none.
#[test]
fn forecast_residuals_land_in_run_metrics() {
    let r = observed(PolicySpec::Predictive);
    let res = &r.metrics.forecast_residuals;
    assert!(!res.is_empty(), "predictive run must report residuals");
    for s in res {
        assert!(s.count > 0);
        assert!(s.mean_abs_err_ms().is_finite());
        assert!(s.max_abs_err_ms >= 0.0);
        assert!(s.max_abs_err_ms + 1e-12 >= s.mean_abs_err_ms());
    }
    assert!(res.iter().any(|s| matches!(s.kind, ResidualKind::Exec)));
    assert!(res.iter().any(|s| matches!(s.kind, ResidualKind::Comm)));

    let n = observed(PolicySpec::NonPredictive);
    assert!(
        n.metrics.forecast_residuals.is_empty(),
        "non-forecasting policies have no forecasts to score"
    );
}

/// The static policy makes no decisions, and disabled sinks yield no
/// artifacts at all.
#[test]
fn sinks_off_and_static_policy_yield_no_artifacts() {
    let r = observed(PolicySpec::None);
    assert!(r.decisions.is_empty(), "static policy makes no decisions");

    let mut cfg = ScenarioConfig::paper(
        PatternSpec::Triangular { half_period: 10 },
        PolicySpec::Predictive,
        14_000,
    );
    cfg.n_periods = 30;
    let r = run_scenario(&cfg, &quick_predictor());
    assert!(r.trace.is_none(), "no trace without opt-in");
    assert!(r.decisions.is_empty(), "no decisions without opt-in");
}
