//! End-to-end integration tests across all workspace crates: simulator +
//! regression + benchmark app + resource manager + experiment harness.

use rtds::arm::config::ArmConfig;
use rtds::arm::manager::ResourceManager;
use rtds::dynbench::app::{aaw_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
use rtds::experiments::models::{predictor_from_profile, quick_predictor};
use rtds::prelude::*;

fn quick_scenario(policy: PolicySpec, max_tracks: u64, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: 10 },
        policy,
        workload: WorkloadRange::new(500.min(max_tracks), max_tracks),
        n_periods: 50,
        ambient_util: 0.10,
        seed,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    }
}

#[test]
fn full_pipeline_light_load_all_policies_agree() {
    let p = quick_predictor();
    let mut results = Vec::new();
    for policy in [PolicySpec::None, PolicySpec::Predictive, PolicySpec::NonPredictive] {
        let r = run_scenario(&quick_scenario(policy, 2_000, 1), &p);
        assert_eq!(
            r.summary.missed_deadline_pct, 0.0,
            "light load must be deadline-clean under {policy:?}"
        );
        results.push(r);
    }
    // No replication is needed, so all three behave identically on the
    // replica metric (the paper: "for smaller workloads where no
    // replication is needed, the performance of both algorithms is the
    // same").
    for r in &results {
        assert!(
            (r.summary.avg_replicas - 1.0).abs() < 0.05,
            "no replication at light load: {}",
            r.summary.avg_replicas
        );
    }
}

#[test]
fn adaptation_beats_static_placement_at_heavy_load() {
    let p = quick_predictor();
    let stat = run_scenario(&quick_scenario(PolicySpec::None, 16_000, 2), &p);
    let pred = run_scenario(&quick_scenario(PolicySpec::Predictive, 16_000, 2), &p);
    let nonp = run_scenario(&quick_scenario(PolicySpec::NonPredictive, 16_000, 2), &p);
    assert!(
        stat.summary.missed_deadline_pct > 5.0,
        "static must collapse: {:?}",
        stat.summary
    );
    assert!(pred.summary.missed_deadline_pct < stat.summary.missed_deadline_pct / 2.0);
    assert!(nonp.summary.missed_deadline_pct < stat.summary.missed_deadline_pct / 2.0);
}

#[test]
fn nonpredictive_overprovisions_relative_to_predictive() {
    let p = quick_predictor();
    // Just past the replication onset, where the predictive algorithm
    // still gets by with one or two replicas while the non-predictive one
    // grabs every idle node (cf. Fig. 9d's widest gap region).
    let pred = run_scenario(&quick_scenario(PolicySpec::Predictive, 10_500, 3), &p);
    let nonp = run_scenario(&quick_scenario(PolicySpec::NonPredictive, 10_500, 3), &p);
    assert!(
        nonp.summary.avg_replicas > pred.summary.avg_replicas + 0.2,
        "non-predictive {} vs predictive {}",
        nonp.summary.avg_replicas,
        pred.summary.avg_replicas
    );
}

#[test]
fn combined_metric_prefers_predictive_under_fluctuating_load() {
    // The paper's headline conclusion, at a workload high enough to need
    // replication but inside the pre-threshold band.
    let p = quick_predictor();
    let pred = run_scenario(&quick_scenario(PolicySpec::Predictive, 12_500, 4), &p);
    let nonp = run_scenario(&quick_scenario(PolicySpec::NonPredictive, 12_500, 4), &p);
    assert!(
        pred.breakdown.combined <= nonp.breakdown.combined + 1.0,
        "predictive {} vs non-predictive {}",
        pred.breakdown.combined,
        nonp.breakdown.combined
    );
}

#[test]
fn same_seed_reproduces_bit_identical_summaries() {
    let p = quick_predictor();
    let a = run_scenario(&quick_scenario(PolicySpec::Predictive, 13_000, 9), &p);
    let b = run_scenario(&quick_scenario(PolicySpec::Predictive, 13_000, 9), &p);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.breakdown.combined, b.breakdown.combined);
    let lat_a: Vec<_> = a.metrics.periods.iter().map(|x| x.end_to_end).collect();
    let lat_b: Vec<_> = b.metrics.periods.iter().map(|x| x.end_to_end).collect();
    assert_eq!(lat_a, lat_b);
}

#[test]
fn different_seeds_change_details_not_orderings() {
    let p = quick_predictor();
    let a = run_scenario(&quick_scenario(PolicySpec::Predictive, 13_000, 10), &p);
    let b = run_scenario(&quick_scenario(PolicySpec::Predictive, 13_000, 11), &p);
    // Ambient Poisson load differs -> different exact latencies…
    let lat_a: Vec<_> = a.metrics.periods.iter().map(|x| x.end_to_end).collect();
    let lat_b: Vec<_> = b.metrics.periods.iter().map(|x| x.end_to_end).collect();
    assert_ne!(lat_a, lat_b, "seeds must matter");
    // …but the run is still deadline-clean-ish either way.
    assert!(a.summary.missed_deadline_pct < 20.0);
    assert!(b.summary.missed_deadline_pct < 20.0);
}

#[test]
fn profile_fitted_predictor_drives_the_manager() {
    // A miniature profiling campaign (coarse grid), fitted end to end,
    // then used for an actual managed run — the paper's full §4.2.1 loop.
    use rtds::dynbench::profile::{profile_buffer_delay, profile_execution, ProfileConfig};
    let cfg = ProfileConfig {
        utilizations_pct: vec![10.0, 40.0, 70.0],
        data_sizes: vec![1_000, 5_000, 10_000],
        periods_per_point: 3,
        warmup_periods: 1,
        seed: 5,
    };
    let task = aaw_task();
    let mut data = ProfileData::default();
    for (j, stage) in task.stages.iter().enumerate() {
        data.exec_samples.insert(j, profile_execution(stage.cost, &cfg));
    }
    data.buffer_samples = profile_buffer_delay(&cfg, 3);
    let fitted = data.fit_all();
    assert_eq!(fitted, 6, "5 stage models + 1 buffer model");
    let predictor = predictor_from_profile(&data);

    let r = run_scenario(&quick_scenario(PolicySpec::Predictive, 14_000, 6), &predictor);
    assert!(
        r.summary.missed_deadline_pct < 15.0,
        "fitted predictor must manage the load: {:?}",
        r.summary
    );
    assert!(r.summary.avg_replicas > 1.0, "replication happened");
}

#[test]
fn manager_stats_align_with_cluster_placement_changes() {
    let predictor = quick_predictor();
    let scenario = quick_scenario(PolicySpec::Predictive, 15_000, 7);
    // Re-run manually so we can hold onto the manager's stats.
    let mut config = ClusterConfig::paper_baseline(scenario.seed, SimDuration::from_secs(50));
    config.clock = ClockConfig::perfect();
    let mut cluster = Cluster::new(config);
    cluster.add_task(aaw_task(), Box::new(|i| 500 + (i % 20) * 700));
    cluster.set_controller(Box::new(ResourceManager::new(
        ArmConfig::paper_predictive(),
        predictor,
    )));
    let out = cluster.run();
    // Every placement change the cluster applied was a manager action; the
    // manager never emits no-op actions, so the counters agree.
    assert_eq!(out.metrics.rejected_actions, 0, "manager actions are always valid");
    assert!(out.metrics.placement_changes > 0);
}

#[test]
fn replica_counts_stay_within_cluster_bounds() {
    let p = quick_predictor();
    for policy in [PolicySpec::Predictive, PolicySpec::NonPredictive] {
        let r = run_scenario(&quick_scenario(policy, 17_500, 8), &p);
        for rec in &r.metrics.periods {
            for (j, &k) in rec.replicas_per_stage.iter().enumerate() {
                assert!(k >= 1, "stage {j} lost its last replica");
                assert!(k <= 6, "stage {j} exceeded the cluster: {k}");
                if j != FILTER_STAGE && j != EVAL_DECIDE_STAGE {
                    assert_eq!(k, 1, "non-replicable stage {j} was replicated");
                }
            }
        }
    }
}

#[test]
fn workload_patterns_feed_the_scenario_exactly() {
    let p = quick_predictor();
    let scenario = ScenarioConfig {
        pattern: PatternSpec::Increasing { ramp_periods: 40 },
        policy: PolicySpec::None,
        workload: WorkloadRange::new(1_000, 9_000),
        n_periods: 40,
        ambient_util: 0.0,
        seed: 12,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    };
    let r = run_scenario(&scenario, &p);
    let tracks: Vec<u64> = r.metrics.periods.iter().map(|x| x.tracks).collect();
    assert_eq!(tracks[0], 1_000);
    assert!(tracks.windows(2).all(|w| w[0] <= w[1]), "ramp is monotone");
    assert_eq!(*tracks.last().unwrap(), 9_000);
}
