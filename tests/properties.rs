//! Property-style tests on the core invariants the paper's algorithms
//! rely on.
//!
//! Originally written with proptest; the build environment has no
//! registry access, so these now drive the same properties from a
//! deterministic in-file generator (xorshift-based). Each property runs
//! over a few hundred pseudo-random cases — deterministic, so a failure
//! reproduces exactly.

use rtds::arm::online::OnlineRefiner;
use rtds::arm::prelude::*;
use rtds::regression::{BufferDelayModel, ExecLatencyModel, LatencySample, Polynomial};
use rtds::sim::event::EventQueue;
use rtds::sim::ids::NodeId;
use rtds::sim::pipeline::split_tracks;
use rtds::sim::time::{SimDuration, SimTime};

/// Small deterministic generator for test case synthesis.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.0 = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    /// Uniform u64 in `[lo, hi)`.
    fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform usize in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A vector of uniform f64 draws.
    fn vec_f64(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

// ---------------------------------------------------------------
// Deadline assignment (EQF)
// ---------------------------------------------------------------

/// Classic EQF budgets always partition the end-to-end deadline.
#[test]
fn eqf_classic_partitions_deadline() {
    let mut g = Gen::new(11);
    for _ in 0..300 {
        let n = g.usize_in(1, 8);
        let exec = g.vec_f64(n, 0.0, 500.0);
        let deadline_ms = g.f64_in(1.0, 5_000.0);
        let comm_seed = g.f64_in(0.0, 100.0);
        let comm: Vec<f64> = (0..exec.len().saturating_sub(1))
            .map(|i| comm_seed * (i as f64 + 0.5) % 97.0)
            .collect();
        let a = assign_deadlines(
            &exec,
            &comm,
            SimDuration::from_millis_f64(deadline_ms),
            EqfVariant::Classic,
        );
        let total: f64 = a
            .subtask
            .iter()
            .chain(a.message.iter())
            .map(|d| d.as_millis_f64())
            .sum();
        // Rounding to whole microseconds may shift each component by 0.5us.
        let tolerance = 0.002 * (a.subtask.len() + a.message.len()) as f64;
        assert!(
            (total - deadline_ms).abs() <= tolerance,
            "sum {total} vs deadline {deadline_ms}"
        );
    }
}

/// Budgets are monotone in the estimates: more estimated work never
/// yields a *smaller* budget under the same totals.
#[test]
fn eqf_budgets_proportional_to_estimates() {
    let mut g = Gen::new(12);
    for _ in 0..300 {
        let base = g.f64_in(1.0, 100.0);
        let factor = g.f64_in(1.01, 10.0);
        let deadline_ms = g.f64_in(100.0, 5_000.0);
        let exec = vec![base, base * factor];
        let a = assign_deadlines(
            &exec,
            &[0.0],
            SimDuration::from_millis_f64(deadline_ms),
            EqfVariant::Classic,
        );
        assert!(a.subtask[1] >= a.subtask[0]);
    }
}

/// Equal-slack budgets also partition the deadline whenever there is
/// non-negative slack.
#[test]
fn eqs_partitions_deadline_when_feasible() {
    let mut g = Gen::new(13);
    for _ in 0..300 {
        let n = g.usize_in(1, 6);
        let exec = g.vec_f64(n, 1.0, 100.0);
        let slack_per_comp = g.f64_in(0.0, 50.0);
        let comm: Vec<f64> = (0..exec.len().saturating_sub(1))
            .map(|i| 1.0 + i as f64)
            .collect();
        let total: f64 = exec.iter().sum::<f64>() + comm.iter().sum::<f64>();
        let n_comp = (exec.len() + comm.len()) as f64;
        let deadline = total + slack_per_comp * n_comp;
        let a = assign_deadlines(
            &exec,
            &comm,
            SimDuration::from_millis_f64(deadline),
            EqfVariant::EqualSlack,
        );
        let sum: f64 = a
            .subtask
            .iter()
            .chain(a.message.iter())
            .map(|d| d.as_millis_f64())
            .sum();
        let tolerance = 0.002 * n_comp;
        assert!((sum - deadline).abs() <= tolerance, "{sum} vs {deadline}");
        // And every budget at least covers its estimate.
        for (b, e) in a.subtask.iter().zip(&exec) {
            assert!(b.as_millis_f64() + 0.001 >= *e);
        }
    }
}

/// The online refiner never produces non-finite coefficients from
/// finite observation streams, and converges on self-generated data.
#[test]
fn online_refiner_is_stable_on_random_streams() {
    let mut g = Gen::new(14);
    for _ in 0..100 {
        let a3 = g.f64_in(0.001, 0.5);
        let b3 = g.f64_in(0.1, 5.0);
        let lambda = g.f64_in(0.9, 1.0);
        let seed = g.u64_in(0, 1000);
        let truth = ExecLatencyModel::from_coefficients([1e-5, 1e-3, a3], [1e-4, 1e-2, b3]);
        let mut r = OnlineRefiner::from_model(
            &ExecLatencyModel::from_coefficients([0.0, 0.0, 0.1], [0.0, 0.0, 1.0]),
            lambda,
            100.0,
        );
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as f64 / (u32::MAX as f64 / 2.0)
        };
        for _ in 0..200 {
            let d = 1.0 + next() * 40.0;
            let u = next() * 80.0;
            r.observe(d, u, truth.predict_raw(d, u));
        }
        let m = r.model();
        for c in m.a.iter().chain(m.b.iter()) {
            assert!(c.is_finite(), "coefficient diverged: {c}");
        }
        let (d, u) = (20.0, 40.0);
        let err = (r.predict(d, u) - truth.predict_raw(d, u)).abs();
        assert!(
            err < 0.05 * truth.predict_raw(d, u).max(1.0),
            "err {err} at truth {}",
            truth.predict_raw(d, u)
        );
    }
}

/// Composite patterns stay within the union of their phases' ranges.
#[test]
fn composite_pattern_is_bounded() {
    use rtds::workloads::{Composite, Constant, Pattern, Triangular, WorkloadRange};
    let mut g = Gen::new(15);
    for _ in 0..300 {
        let lens: Vec<u64> = (0..g.usize_in(1, 5)).map(|_| g.u64_in(1, 10)).collect();
        let period = g.u64_in(0, 200);
        let phases: Vec<(Box<dyn Pattern>, u64)> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let p: Box<dyn Pattern> = if i % 2 == 0 {
                    Box::new(Constant(100 + i as u64))
                } else {
                    Box::new(Triangular::new(WorkloadRange::new(50, 500), 3))
                };
                (p, n)
            })
            .collect();
        let mut c = Composite::new(phases);
        let v = c.tracks_at(period);
        assert!((50..=500).contains(&v) || (100..105).contains(&v), "{v}");
    }
}

// ---------------------------------------------------------------
// Data-stream splitting
// ---------------------------------------------------------------

/// Replica shares conserve the stream and are balanced within 1.
#[test]
fn split_tracks_conserves_and_balances() {
    let mut g = Gen::new(16);
    for _ in 0..500 {
        let tracks = g.u64_in(0, 1_000_000);
        let k = g.usize_in(1, 32);
        let s = split_tracks(tracks, k);
        assert_eq!(s.len(), k);
        assert_eq!(s.iter().sum::<u64>(), tracks);
        let max = *s.iter().max().unwrap();
        let min = *s.iter().min().unwrap();
        assert!(max - min <= 1);
    }
}

// ---------------------------------------------------------------
// Regression substrate
// ---------------------------------------------------------------

/// The two-stage Eq. (3) fit recovers a surface generated by the model
/// family itself (with non-negative coefficient draws).
#[test]
fn eq3_fit_recovers_model_family() {
    let mut g = Gen::new(17);
    for _ in 0..100 {
        let a = [
            g.f64_in(0.0, 1e-4),
            g.f64_in(0.0, 1e-2),
            g.f64_in(0.001, 0.5),
        ];
        let b = [
            g.f64_in(0.0, 1e-3),
            g.f64_in(0.0, 1e-1),
            g.f64_in(0.1, 5.0),
        ];
        let truth = ExecLatencyModel::from_coefficients(a, b);
        let mut samples = Vec::new();
        for &u in &[10.0, 30.0, 50.0, 70.0] {
            for d in (1..=8).map(|i| i as f64 * 2.0) {
                samples.push(LatencySample {
                    d,
                    u,
                    latency_ms: truth.predict_raw(d, u),
                });
            }
        }
        let fitted = ExecLatencyModel::fit_two_stage(&samples).unwrap();
        for &u in &[20.0, 60.0] {
            for &d in &[3.0, 9.0, 15.0] {
                let t = truth.predict_raw(d, u);
                let f = fitted.predict_raw(d, u);
                assert!(
                    (t - f).abs() <= 1e-6 + 1e-6 * t.abs(),
                    "({d},{u}): {f} vs {t}"
                );
            }
        }
    }
}

/// Polynomial fits are exact on data generated by polynomials of the
/// same degree.
#[test]
fn polyfit_exact_on_own_family() {
    let mut g = Gen::new(18);
    for _ in 0..300 {
        let c0 = g.f64_in(-10.0, 10.0);
        let c1 = g.f64_in(-10.0, 10.0);
        let c2 = g.f64_in(-2.0, 2.0);
        let xs: Vec<f64> = (0..12).map(|i| i as f64 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| c0 + c1 * x + c2 * x * x).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        assert!((p.eval(5.5) - (c0 + c1 * 5.5 + c2 * 5.5 * 5.5)).abs() < 1e-6);
    }
}

/// The buffer-delay fit recovers any non-negative slope exactly from
/// noiseless data.
#[test]
fn buffer_fit_recovers_slope() {
    let mut g = Gen::new(19);
    for _ in 0..300 {
        let k = g.f64_in(0.0, 1.0);
        let samples: Vec<rtds::regression::BufferDelaySample> = (1..=10)
            .map(|i| rtds::regression::BufferDelaySample {
                total_tracks: i as f64 * 1_000.0,
                delay_ms: k * i as f64 * 1_000.0,
            })
            .collect();
        let m = BufferDelayModel::fit(&samples).unwrap();
        assert!((m.k - k).abs() < 1e-9 * (1.0 + k));
    }
}

// ---------------------------------------------------------------
// Monitoring
// ---------------------------------------------------------------

/// Classification is total and consistent with the slack bands.
#[test]
fn classify_matches_band_arithmetic() {
    let mut g = Gen::new(20);
    for _ in 0..500 {
        let observed_ms = g.f64_in(0.0, 2_000.0);
        let budget_ms = g.f64_in(1.0, 2_000.0);
        let cfg = MonitorConfig::default();
        let h = classify(
            SimDuration::from_millis_f64(observed_ms),
            SimDuration::from_millis_f64(budget_ms),
            &cfg,
        );
        // Recompute from the rounded durations the classifier actually saw.
        let obs = SimDuration::from_millis_f64(observed_ms).as_millis_f64();
        let bud = SimDuration::from_millis_f64(budget_ms).as_millis_f64();
        if obs > bud {
            assert_eq!(h, StageHealth::Missed);
        } else {
            let slack = (bud - obs) / bud;
            if slack < 0.2 {
                assert_eq!(h, StageHealth::LowSlack);
            } else if slack > 0.6 {
                assert_eq!(h, StageHealth::HighSlack);
            } else {
                assert_eq!(h, StageHealth::Nominal);
            }
        }
    }
}

// ---------------------------------------------------------------
// Fig. 5 / Fig. 7 allocation invariants
// ---------------------------------------------------------------

/// The non-predictive enlargement always contains the original set,
/// never duplicates, and only adds below-threshold processors.
#[test]
fn nonpredictive_enlargement_invariants() {
    let mut g = Gen::new(21);
    for _ in 0..300 {
        let n = g.usize_in(2, 12);
        let utils = g.vec_f64(n, 0.0, 100.0);
        let threshold = g.f64_in(0.0, 100.0);
        let current = vec![NodeId(0)];
        let ps = replicate_subtask_nonpredictive(&current, &utils, threshold);
        assert_eq!(ps[0], NodeId(0));
        let mut seen = std::collections::HashSet::new();
        for n in &ps {
            assert!(seen.insert(*n), "duplicate {n}");
            assert!(n.index() < utils.len());
        }
        for n in &ps[1..] {
            assert!(utils[n.index()] < threshold);
        }
        // Exhaustiveness: every qualifying node is in.
        for (i, &u) in utils.iter().enumerate() {
            if u < threshold {
                assert!(ps.contains(&NodeId(i as u32)));
            }
        }
    }
}

/// Shutdown removes exactly one (the last) replica and never the
/// original.
#[test]
fn shutdown_invariants() {
    let mut g = Gen::new(22);
    for _ in 0..300 {
        let n_extra = g.usize_in(0, 8);
        let mut current = vec![NodeId(0)];
        for i in 0..n_extra {
            current.push(NodeId(i as u32 + 1));
        }
        let after = shutdown_a_replica(&current);
        assert_eq!(after[0], NodeId(0));
        if current.len() == 1 {
            assert_eq!(after.len(), 1);
        } else {
            assert_eq!(after.len(), current.len() - 1);
            assert_eq!(&after[..], &current[..current.len() - 1]);
        }
    }
}

// ---------------------------------------------------------------
// Simulation substrate
// ---------------------------------------------------------------

/// The event queue pops in (time, insertion) order whatever the
/// schedule order.
#[test]
fn event_queue_is_stable_priority_queue() {
    let mut g = Gen::new(23);
    for _ in 0..200 {
        let n = g.usize_in(1, 200);
        let times: Vec<u64> = (0..n).map(|_| g.u64_in(0, 10_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }
}

/// Time arithmetic round-trips.
#[test]
fn sim_time_arithmetic_round_trips() {
    let mut g = Gen::new(24);
    for _ in 0..500 {
        let base = g.u64_in(0, u32::MAX as u64);
        let delta = g.u64_in(0, u32::MAX as u64);
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }
}

// ---------------------------------------------------------------
// Combined metric
// ---------------------------------------------------------------

/// The combined metric is monotone in each component.
#[test]
fn combined_metric_is_monotone() {
    let mut g = Gen::new(25);
    for _ in 0..300 {
        let md = g.f64_in(0.0, 100.0);
        let cpu = g.f64_in(0.0, 100.0);
        let net = g.f64_in(0.0, 100.0);
        let reps = g.f64_in(1.0, 6.0);
        let bump = g.f64_in(0.001, 10.0);
        let mk = |md, cpu, net, reps| rtds::sim::metrics::RunSummary {
            missed_deadline_pct: md,
            avg_cpu_util_pct: cpu,
            avg_net_util_pct: net,
            avg_replicas: reps,
            decided_periods: 1,
            released_periods: 1,
            placement_changes: 0,
        };
        let base = combined_metric(&mk(md, cpu, net, reps), 6);
        assert!(combined_metric(&mk(md + bump, cpu, net, reps), 6) > base);
        assert!(combined_metric(&mk(md, cpu + bump, net, reps), 6) > base);
        assert!(combined_metric(&mk(md, cpu, net + bump, reps), 6) > base);
        assert!(combined_metric(&mk(md, cpu, net, reps + bump.min(1.0)), 6) > base);
    }
}

/// Fig. 5 replication: the result is always a superset of the current
/// set with no duplicates, regardless of utilizations and budgets —
/// and on failure the best-effort set is the whole cluster.
#[test]
fn predictive_replication_set_invariants() {
    use rtds::arm::predictive::{replicate_subtask, ReplicateFailure, ReplicationRequest};
    use rtds::experiments::models::quick_predictor;
    let mut g = Gen::new(26);
    let predictor = quick_predictor();
    for _ in 0..16 {
        let utils = g.vec_f64(6, 0.0, 95.0);
        let tracks = g.u64_in(1_000, 17_500);
        let budget_ms = g.f64_in(10.0, 900.0);
        let current = vec![NodeId(2)];
        let budget = SimDuration::from_millis_f64(budget_ms);
        let req = ReplicationRequest {
            current: &current,
            node_util_pct: &utils,
            stage: 2,
            tracks,
            total_periodic_tracks: tracks,
            budget,
            slack: budget.mul_f64(0.2),
        };
        let set = match replicate_subtask(&req, &predictor) {
            Ok(ps) => ps,
            Err(ReplicateFailure::OutOfProcessors { best_effort, .. }) => {
                assert_eq!(best_effort.len(), 6);
                best_effort
            }
        };
        assert_eq!(set[0], NodeId(2));
        let mut seen = std::collections::HashSet::new();
        for n in &set {
            assert!(seen.insert(*n));
            assert!(n.index() < 6);
        }
        assert!(set.len() >= 2, "Fig. 5 always adds at least one replica");
    }
}
