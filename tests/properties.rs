//! Property-based tests (proptest) on the core invariants the paper's
//! algorithms rely on.

use proptest::prelude::*;

use rtds::arm::online::OnlineRefiner;
use rtds::arm::prelude::*;
use rtds::regression::{BufferDelayModel, ExecLatencyModel, LatencySample, Polynomial};
use rtds::sim::event::EventQueue;
use rtds::sim::ids::NodeId;
use rtds::sim::pipeline::split_tracks;
use rtds::sim::time::{SimDuration, SimTime};

proptest! {
    // ---------------------------------------------------------------
    // Deadline assignment (EQF)
    // ---------------------------------------------------------------

    /// Classic EQF budgets always partition the end-to-end deadline.
    #[test]
    fn eqf_classic_partitions_deadline(
        exec in prop::collection::vec(0.0f64..500.0, 1..8),
        deadline_ms in 1.0f64..5_000.0,
        comm_seed in 0.0f64..100.0,
    ) {
        let comm: Vec<f64> = (0..exec.len().saturating_sub(1))
            .map(|i| comm_seed * (i as f64 + 0.5) % 97.0)
            .collect();
        let a = assign_deadlines(
            &exec, &comm,
            SimDuration::from_millis_f64(deadline_ms),
            EqfVariant::Classic,
        );
        let total: f64 = a.subtask.iter().chain(a.message.iter())
            .map(|d| d.as_millis_f64()).sum();
        // Rounding to whole microseconds may shift each component by 0.5us.
        let tolerance = 0.002 * (a.subtask.len() + a.message.len()) as f64;
        prop_assert!((total - deadline_ms).abs() <= tolerance,
            "sum {total} vs deadline {deadline_ms}");
    }

    /// Budgets are monotone in the estimates: more estimated work never
    /// yields a *smaller* budget under the same totals.
    #[test]
    fn eqf_budgets_proportional_to_estimates(
        base in 1.0f64..100.0,
        factor in 1.01f64..10.0,
        deadline_ms in 100.0f64..5_000.0,
    ) {
        let exec = vec![base, base * factor];
        let a = assign_deadlines(
            &exec, &[0.0],
            SimDuration::from_millis_f64(deadline_ms),
            EqfVariant::Classic,
        );
        prop_assert!(a.subtask[1] >= a.subtask[0]);
    }

    /// Equal-slack budgets also partition the deadline whenever there is
    /// non-negative slack.
    #[test]
    fn eqs_partitions_deadline_when_feasible(
        exec in prop::collection::vec(1.0f64..100.0, 1..6),
        slack_per_comp in 0.0f64..50.0,
    ) {
        let comm: Vec<f64> = (0..exec.len().saturating_sub(1)).map(|i| 1.0 + i as f64).collect();
        let total: f64 = exec.iter().sum::<f64>() + comm.iter().sum::<f64>();
        let n_comp = (exec.len() + comm.len()) as f64;
        let deadline = total + slack_per_comp * n_comp;
        let a = assign_deadlines(
            &exec, &comm,
            SimDuration::from_millis_f64(deadline),
            EqfVariant::EqualSlack,
        );
        let sum: f64 = a.subtask.iter().chain(a.message.iter())
            .map(|d| d.as_millis_f64()).sum();
        let tolerance = 0.002 * n_comp;
        prop_assert!((sum - deadline).abs() <= tolerance, "{sum} vs {deadline}");
        // And every budget at least covers its estimate.
        for (b, e) in a.subtask.iter().zip(&exec) {
            prop_assert!(b.as_millis_f64() + 0.001 >= *e);
        }
    }

    /// The online refiner never produces non-finite coefficients from
    /// finite observation streams, and converges on self-generated data.
    #[test]
    fn online_refiner_is_stable_on_random_streams(
        a3 in 0.001f64..0.5, b3 in 0.1f64..5.0,
        lambda in 0.9f64..1.0,
        seed in 0u64..1000,
    ) {
        use rtds::regression::ExecLatencyModel;
        let truth = ExecLatencyModel::from_coefficients(
            [1e-5, 1e-3, a3], [1e-4, 1e-2, b3]);
        let mut r = OnlineRefiner::from_model(
            &ExecLatencyModel::from_coefficients([0.0, 0.0, 0.1], [0.0, 0.0, 1.0]),
            lambda, 100.0);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s >> 12; s ^= s << 25; s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as f64 / (u32::MAX as f64 / 2.0)
        };
        for _ in 0..200 {
            let d = 1.0 + next() * 40.0;
            let u = next() * 80.0;
            r.observe(d, u, truth.predict_raw(d, u));
        }
        let m = r.model();
        for c in m.a.iter().chain(m.b.iter()) {
            prop_assert!(c.is_finite(), "coefficient diverged: {c}");
        }
        let (d, u) = (20.0, 40.0);
        let err = (r.predict(d, u) - truth.predict_raw(d, u)).abs();
        prop_assert!(
            err < 0.05 * truth.predict_raw(d, u).max(1.0),
            "err {err} at truth {}", truth.predict_raw(d, u)
        );
    }

    /// Composite patterns stay within the union of their phases' ranges.
    #[test]
    fn composite_pattern_is_bounded(
        lens in prop::collection::vec(1u64..10, 1..5),
        period in 0u64..200,
    ) {
        use rtds::workloads::{Composite, Constant, Pattern, Triangular, WorkloadRange};
        let phases: Vec<(Box<dyn Pattern>, u64)> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let p: Box<dyn Pattern> = if i % 2 == 0 {
                    Box::new(Constant(100 + i as u64))
                } else {
                    Box::new(Triangular::new(WorkloadRange::new(50, 500), 3))
                };
                (p, n)
            })
            .collect();
        let mut c = Composite::new(phases);
        let v = c.tracks_at(period);
        prop_assert!((50..=500).contains(&v) || (100..105).contains(&v), "{v}");
    }

    // ---------------------------------------------------------------
    // Data-stream splitting
    // ---------------------------------------------------------------

    /// Replica shares conserve the stream and are balanced within 1.
    #[test]
    fn split_tracks_conserves_and_balances(tracks in 0u64..1_000_000, k in 1usize..32) {
        let s = split_tracks(tracks, k);
        prop_assert_eq!(s.len(), k);
        prop_assert_eq!(s.iter().sum::<u64>(), tracks);
        let max = *s.iter().max().unwrap();
        let min = *s.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    // ---------------------------------------------------------------
    // Regression substrate
    // ---------------------------------------------------------------

    /// The two-stage Eq. (3) fit recovers a surface generated by the model
    /// family itself (with non-negative coefficient draws).
    #[test]
    fn eq3_fit_recovers_model_family(
        a1 in 0.0f64..1e-4, a2 in 0.0f64..1e-2, a3 in 0.001f64..0.5,
        b1 in 0.0f64..1e-3, b2 in 0.0f64..1e-1, b3 in 0.1f64..5.0,
    ) {
        let truth = ExecLatencyModel::from_coefficients([a1, a2, a3], [b1, b2, b3]);
        let mut samples = Vec::new();
        for &u in &[10.0, 30.0, 50.0, 70.0] {
            for d in (1..=8).map(|i| i as f64 * 2.0) {
                samples.push(LatencySample { d, u, latency_ms: truth.predict_raw(d, u) });
            }
        }
        let fitted = ExecLatencyModel::fit_two_stage(&samples).unwrap();
        for &u in &[20.0, 60.0] {
            for &d in &[3.0, 9.0, 15.0] {
                let t = truth.predict_raw(d, u);
                let f = fitted.predict_raw(d, u);
                prop_assert!((t - f).abs() <= 1e-6 + 1e-6 * t.abs(),
                    "({d},{u}): {f} vs {t}");
            }
        }
    }

    /// Polynomial fits are exact on data generated by polynomials of the
    /// same degree.
    #[test]
    fn polyfit_exact_on_own_family(
        c0 in -10.0f64..10.0, c1 in -10.0f64..10.0, c2 in -2.0f64..2.0,
    ) {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| c0 + c1 * x + c2 * x * x).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        prop_assert!((p.eval(5.5) - (c0 + c1 * 5.5 + c2 * 5.5 * 5.5)).abs() < 1e-6);
    }

    /// The buffer-delay fit recovers any non-negative slope exactly from
    /// noiseless data.
    #[test]
    fn buffer_fit_recovers_slope(k in 0.0f64..1.0) {
        let samples: Vec<rtds::regression::BufferDelaySample> = (1..=10)
            .map(|i| rtds::regression::BufferDelaySample {
                total_tracks: i as f64 * 1_000.0,
                delay_ms: k * i as f64 * 1_000.0,
            })
            .collect();
        let m = BufferDelayModel::fit(&samples).unwrap();
        prop_assert!((m.k - k).abs() < 1e-9 * (1.0 + k));
    }

    // ---------------------------------------------------------------
    // Monitoring
    // ---------------------------------------------------------------

    /// Classification is total and consistent with the slack bands.
    #[test]
    fn classify_matches_band_arithmetic(
        observed_ms in 0.0f64..2_000.0,
        budget_ms in 1.0f64..2_000.0,
    ) {
        let cfg = MonitorConfig::default();
        let h = classify(
            SimDuration::from_millis_f64(observed_ms),
            SimDuration::from_millis_f64(budget_ms),
            &cfg,
        );
        // Recompute from the rounded durations the classifier actually saw.
        let obs = SimDuration::from_millis_f64(observed_ms).as_millis_f64();
        let bud = SimDuration::from_millis_f64(budget_ms).as_millis_f64();
        if obs > bud {
            prop_assert_eq!(h, StageHealth::Missed);
        } else {
            let slack = (bud - obs) / bud;
            if slack < 0.2 {
                prop_assert_eq!(h, StageHealth::LowSlack);
            } else if slack > 0.6 {
                prop_assert_eq!(h, StageHealth::HighSlack);
            } else {
                prop_assert_eq!(h, StageHealth::Nominal);
            }
        }
    }

    // ---------------------------------------------------------------
    // Fig. 5 / Fig. 7 allocation invariants
    // ---------------------------------------------------------------

    /// The non-predictive enlargement always contains the original set,
    /// never duplicates, and only adds below-threshold processors.
    #[test]
    fn nonpredictive_enlargement_invariants(
        utils in prop::collection::vec(0.0f64..100.0, 2..12),
        threshold in 0.0f64..100.0,
    ) {
        let current = vec![NodeId(0)];
        let ps = replicate_subtask_nonpredictive(&current, &utils, threshold);
        prop_assert_eq!(ps[0], NodeId(0));
        let mut seen = std::collections::HashSet::new();
        for n in &ps {
            prop_assert!(seen.insert(*n), "duplicate {n}");
            prop_assert!(n.index() < utils.len());
        }
        for n in &ps[1..] {
            prop_assert!(utils[n.index()] < threshold);
        }
        // Exhaustiveness: every qualifying node is in.
        for (i, &u) in utils.iter().enumerate() {
            if u < threshold {
                prop_assert!(ps.contains(&NodeId(i as u32)));
            }
        }
    }

    /// Shutdown removes exactly one (the last) replica and never the
    /// original.
    #[test]
    fn shutdown_invariants(extra in prop::collection::vec(1u32..16, 0..8)) {
        let mut current = vec![NodeId(0)];
        for (i, _) in extra.iter().enumerate() {
            current.push(NodeId(i as u32 + 1));
        }
        let after = shutdown_a_replica(&current);
        prop_assert_eq!(after[0], NodeId(0));
        if current.len() == 1 {
            prop_assert_eq!(after.len(), 1);
        } else {
            prop_assert_eq!(after.len(), current.len() - 1);
            prop_assert_eq!(&after[..], &current[..current.len() - 1]);
        }
    }

    // ---------------------------------------------------------------
    // Simulation substrate
    // ---------------------------------------------------------------

    /// The event queue pops in (time, insertion) order whatever the
    /// schedule order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// Time arithmetic round-trips.
    #[test]
    fn sim_time_arithmetic_round_trips(base in 0u64..u32::MAX as u64, delta in 0u64..u32::MAX as u64) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    // ---------------------------------------------------------------
    // Combined metric
    // ---------------------------------------------------------------

    /// The combined metric is monotone in each component.
    #[test]
    fn combined_metric_is_monotone(
        md in 0.0f64..100.0, cpu in 0.0f64..100.0,
        net in 0.0f64..100.0, reps in 1.0f64..6.0, bump in 0.001f64..10.0,
    ) {
        let mk = |md, cpu, net, reps| rtds::sim::metrics::RunSummary {
            missed_deadline_pct: md,
            avg_cpu_util_pct: cpu,
            avg_net_util_pct: net,
            avg_replicas: reps,
            decided_periods: 1,
            released_periods: 1,
            placement_changes: 0,
        };
        let base = combined_metric(&mk(md, cpu, net, reps), 6);
        prop_assert!(combined_metric(&mk(md + bump, cpu, net, reps), 6) > base);
        prop_assert!(combined_metric(&mk(md, cpu + bump, net, reps), 6) > base);
        prop_assert!(combined_metric(&mk(md, cpu, net + bump, reps), 6) > base);
        prop_assert!(combined_metric(&mk(md, cpu, net, reps + bump.min(1.0)), 6) > base);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fig. 5 replication: the result is always a superset of the current
    /// set with no duplicates, regardless of utilizations and budgets —
    /// and on failure the best-effort set is the whole cluster.
    #[test]
    fn predictive_replication_set_invariants(
        utils in prop::collection::vec(0.0f64..95.0, 6..7),
        tracks in 1_000u64..17_500,
        budget_ms in 10.0f64..900.0,
    ) {
        use rtds::arm::predictive::{replicate_subtask, ReplicationRequest, ReplicateFailure};
        use rtds::experiments::models::quick_predictor;
        let predictor = quick_predictor();
        let current = vec![NodeId(2)];
        let budget = SimDuration::from_millis_f64(budget_ms);
        let req = ReplicationRequest {
            current: &current,
            node_util_pct: &utils,
            stage: 2,
            tracks,
            total_periodic_tracks: tracks,
            budget,
            slack: budget.mul_f64(0.2),
        };
        let set = match replicate_subtask(&req, &predictor) {
            Ok(ps) => ps,
            Err(ReplicateFailure::OutOfProcessors { best_effort, .. }) => {
                prop_assert_eq!(best_effort.len(), 6);
                best_effort
            }
        };
        prop_assert_eq!(set[0], NodeId(2));
        let mut seen = std::collections::HashSet::new();
        for n in &set {
            prop_assert!(seen.insert(*n));
            prop_assert!(n.index() < 6);
        }
        prop_assert!(set.len() >= 2, "Fig. 5 always adds at least one replica");
    }
}
