#!/usr/bin/env python3
"""Compare a fresh hotpath bench run against the checked-in baseline.

Usage:
    cargo bench -p rtds-bench --bench hotpath -- --quick --save-json /tmp/hotpath.json
    python3 scripts/check_bench_regression.py BENCH_hotpath.json /tmp/hotpath.json

Fails (exit 1) if any benchmark present in both files is more than
FACTOR (default 2.0) slower than its baseline mean. A generous factor is
deliberate: CI runners are noisy and the guarded optimizations are all
well beyond 2x, so anything that trips this is a real regression, not
jitter. Benchmarks present in only one file are reported but never fatal,
so adding or retiring a bench does not require touching the baseline in
the same commit.

Regenerate the baseline (on a quiet machine) with:
    cargo bench -p rtds-bench --bench hotpath -- --save-json BENCH_hotpath.json
"""

import json
import sys


def load(path):
    with open(path) as f:
        return {row["name"]: row for row in json.load(f)}


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    factor = float(argv[3]) if len(argv) > 3 else 2.0
    baseline = load(baseline_path)
    current = load(current_path)

    failures = []
    print(f"{'benchmark':45} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name in sorted(baseline.keys() | current.keys()):
        if name not in baseline:
            print(f"{name:45} {'-':>12} {current[name]['ns_per_iter']:12.0f}   (new)")
            continue
        if name not in current:
            print(f"{name:45} {baseline[name]['ns_per_iter']:12.0f} {'-':>12}   (retired)")
            continue
        base_ns = baseline[name]["ns_per_iter"]
        cur_ns = current[name]["ns_per_iter"]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = "  FAIL" if ratio > factor else ""
        print(f"{name:45} {base_ns:12.0f} {cur_ns:12.0f} {ratio:6.2f}x{flag}")
        if ratio > factor:
            failures.append((name, ratio))

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than {factor}x "
            "against BENCH_hotpath.json",
            file=sys.stderr,
        )
        return 1
    print(f"\nok: no benchmark exceeded {factor}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
