//! Offline vendored `Serialize` / `Deserialize` derive macros.
//!
//! Written directly against `proc_macro` (no syn/quote, which are not
//! available offline). The macros parse just enough of the item — name,
//! struct fields or enum variants — and emit impls of the facade traits
//! by building Rust source text and re-parsing it.
//!
//! Emitted shapes match real serde's defaults:
//! * named struct      → JSON object, fields in declaration order
//! * newtype struct    → the inner value, transparently
//! * tuple struct      → JSON array
//! * unit enum variant → `"Variant"`
//! * data variants     → externally tagged, `{"Variant": ...}`
//!
//! Generic items and `#[serde(...)]` attributes are unsupported; the
//! workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a struct body or one enum variant's payload.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving {name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(other) => panic!("serde_derive: unexpected token {other} in struct {name}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive: expected enum body for {name}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // The type: consume to the next top-level comma. Nested generics
        // arrive as flat punctuation, so track angle-bracket depth.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    fields
}

/// Arity of a `( ... )` tuple struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_content_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_content_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_content_since_comma = true;
    }
    if !saw_content_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Variant list of an enum body.
fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1; // past the comma
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in names {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
            )),
            Fields::Named(names) => {
                let pat = names.join(", ");
                let mut inner = String::from("let mut m = ::serde::Map::new();\n");
                for f in names {
                    inner.push_str(&format!(
                        "m.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {pat} }} => {{\n{inner}\
                     let mut outer = ::serde::Map::new();\n\
                     outer.insert(::std::string::String::from(\"{v}\"), ::serde::Value::Object(m));\n\
                     ::serde::Value::Object(outer)\n}}\n"
                ));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let pat = binds.join(", ");
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{v}({pat}) => {{\n\
                     let mut outer = ::serde::Map::new();\n\
                     outer.insert(::std::string::String::from(\"{v}\"), {payload});\n\
                     ::serde::Value::Object(outer)\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::core::result::Result::Ok({name})"),
        Fields::Named(names) => {
            let mut s = format!("let m = ::serde::expect_object(v, \"struct {name}\")?;\n");
            s.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in names {
                s.push_str(&format!("{f}: ::serde::get_field(m, \"{f}\", \"{name}\")?,\n"));
            }
            s.push_str("})");
            s
        }
        Fields::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Fields::Tuple(n) => {
            let mut s = format!("let a = ::serde::expect_array(v, \"tuple struct {name}\", {n})?;\n");
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            s.push_str(&format!(
                "::core::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
            )),
            Fields::Named(names) => {
                let mut inner = format!(
                    "let m = ::serde::expect_object(inner, \"variant {name}::{v}\")?;\n"
                );
                inner.push_str(&format!("::core::result::Result::Ok({name}::{v} {{\n"));
                for f in names {
                    inner.push_str(&format!(
                        "{f}: ::serde::get_field(m, \"{f}\", \"{name}::{v}\")?,\n"
                    ));
                }
                inner.push_str("})");
                data_arms.push_str(&format!("\"{v}\" => {{\n{inner}\n}}\n"));
            }
            Fields::Tuple(n) => {
                let body = if *n == 1 {
                    format!(
                        "::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(inner)?))"
                    )
                } else {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                        .collect();
                    format!(
                        "let a = ::serde::expect_array(inner, \"variant {name}::{v}\", {n})?;\n\
                         ::core::result::Result::Ok({name}::{v}({}))",
                        items.join(", ")
                    )
                };
                data_arms.push_str(&format!("\"{v}\" => {{\n{body}\n}}\n"));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => ::core::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
         }},\n\
         ::serde::Value::Object(m) => {{\n\
         let (k, inner) = ::serde::expect_single_entry(m, \"enum {name}\")?;\n\
         match k {{\n\
         {data_arms}\
         other => ::core::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
         }}\n\
         }},\n\
         other => ::core::result::Result::Err(::serde::Error::expected(\"enum {name}\", other)),\n\
         }}\n}}\n}}\n"
    )
}
