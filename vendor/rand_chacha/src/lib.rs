//! Offline vendored ChaCha random number generators.
//!
//! Implements the ChaCha stream cipher (D. J. Bernstein) as an RNG with
//! the trait surface of the vendored `rand` crate. The 256-bit seed is the
//! cipher key; the block counter is 64-bit and starts at zero with a zero
//! nonce, so a given seed always yields the same stream. Output words are
//! the keystream words of successive blocks in order, little-endian, and
//! `next_u64` consumes two consecutive 32-bit words (low word first).

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k": the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One keystream block: `rounds` ChaCha rounds plus the feed-forward add.
fn chacha_block(input: &[u32; 16], rounds: u32, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:literal) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Cipher input block: constants, key, counter, nonce.
            state: [u32; 16],
            /// Current keystream block.
            buf: [u32; 16],
            /// Next unconsumed word of `buf`; 16 forces a refill.
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                chacha_block(&self.state, $rounds, &mut self.buf);
                // 64-bit block counter in words 12..13.
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.idx = 0;
            }

            #[inline]
            fn next_word(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&SIGMA);
                for i in 0..8 {
                    state[4 + i] = u32::from_le_bytes(
                        seed[4 * i..4 * i + 4].try_into().unwrap(),
                    );
                }
                // Counter and nonce start at zero.
                $name { state, buf: [0; 16], idx: 16 }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_word()
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_word();
                let hi = self.next_word();
                u64::from(lo) | (u64::from(hi) << 32)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                let mut chunks = dest.chunks_exact_mut(4);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.next_word().to_le_bytes());
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let bytes = self.next_word().to_le_bytes();
                    let n = rem.len();
                    rem.copy_from_slice(&bytes[..n]);
                }
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the workspace's fast deterministic stream.
    ChaCha8Rng, 8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng, 12
);
chacha_rng!(
    /// ChaCha with 20 rounds (the original cipher strength).
    ChaCha20Rng, 20
);

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: ChaCha20 block function.
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&SIGMA);
        // Key 00 01 02 ... 1f.
        let key: Vec<u8> = (0u8..32).collect();
        for i in 0..8 {
            input[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        input[12] = 1; // counter
        input[13] = 0x0900_0000; // nonce
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let mut out = [0u32; 16];
        chacha_block(&input, 20, &mut out);
        assert_eq!(
            out,
            [
                0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033,
                0x9aaa2204, 0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9,
                0xd19c12b5, 0xb94e16de, 0xe883d0cb, 0x4e3c50a2,
            ]
        );
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::from_seed([9; 32]);
        let mut b = ChaCha8Rng::from_seed([9; 32]);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..], &w2);
    }

    #[test]
    fn counter_carries_across_block_boundaries() {
        // Force many refills; stream must not repeat over 4 blocks.
        let mut r = ChaCha8Rng::from_seed([3; 32]);
        let words: Vec<u32> = (0..64).map(|_| r.next_u32()).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 60, "keystream words should be distinct");
    }
}
