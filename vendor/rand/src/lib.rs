//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *exact* trait surface it
//! consumes (`Rng::random::<f64>()`, `Rng::random_range(Range<uint>)`,
//! `RngCore`, `SeedableRng`) as a tiny self-contained crate. Algorithms
//! follow the upstream definitions where the output stream matters:
//!
//! * `random::<f64>()` uses the 53-bit multiply convention,
//!   `(next_u64() >> 11) * 2^-53`, identical to upstream's
//!   `StandardUniform` for `f64`.
//! * integer `random_range` uses Lemire's widening-multiply rejection
//!   method (unbiased).
//!
//! Only what the workspace calls is provided; this is not a general
//! replacement for the real crate.

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed material type (a fixed-size byte array for all provided
    /// generators).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spread over the seed bytes with a
    /// splitmix64 sequence.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::random`] from uniform bits.
pub trait StandardSample: Sized {
    /// Draws one value from the generator.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as upstream StandardUniform.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Unbiased draw in `[0, n)` via Lemire's widening-multiply rejection.
///
/// # Panics
/// Panics if `n == 0`.
#[inline]
pub fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    // Accept when the low 64 bits of v*n land at or above 2^64 mod n; the
    // high 64 bits are then exactly uniform over [0, n).
    let zone = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}
int_range!(u64, u32, u16, u8, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::standard_sample(rng)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Upstream-compatible module path for distribution traits.
pub mod distr {
    pub use super::{SampleRange, StandardSample};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_cover_domain_without_escaping() {
        let mut r = Counter(7);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.random_range(0u64..7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_plausibly_uniform() {
        let mut r = Counter(3);
        let n = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[uniform_u64_below(&mut r, n) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }
}
