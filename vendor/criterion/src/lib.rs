//! Offline vendored micro-benchmark harness.
//!
//! Presents the criterion API surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`) over a simple wall-clock measurement
//! loop: warm up, then time batches until a measurement budget is spent,
//! and report the mean with min/max batch means as the spread.
//!
//! Command line (after `cargo bench -- ...`):
//! * a bare word filters benchmarks by substring;
//! * `--measurement-time <secs>` sets the per-benchmark budget;
//! * `--quick` uses a 0.1 s budget;
//! * `--save-json <path>` (or env `RTDS_BENCH_JSON`) writes
//!   `[{"name": ..., "ns_per_iter": ...}, ...]` on exit;
//! * other flags are accepted and ignored for cargo compatibility.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark id (`group/function` or `group/function/param`).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Fastest batch mean observed.
    pub min_ns: f64,
    /// Slowest batch mean observed.
    pub max_ns: f64,
}

/// Benchmark driver: configuration plus collected results.
pub struct Criterion {
    measurement_time: Duration,
    filter: Option<String>,
    json_path: Option<String>,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(
                std::env::var("RTDS_BENCH_QUICK")
                    .ok()
                    .filter(|v| v != "0")
                    .map(|_| 100)
                    .unwrap_or(1_000),
            ),
            filter: None,
            json_path: std::env::var("RTDS_BENCH_JSON").ok(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (see crate docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--measurement-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        c.measurement_time = Duration::from_secs_f64(v.max(0.001));
                    }
                }
                "--quick" => c.measurement_time = Duration::from_millis(100),
                "--save-json" => c.json_path = args.next(),
                // Cargo/criterion pass-through flags with a value operand.
                "--sample-size" | "--warm-up-time" | "--color" | "--output-format" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget: self.measurement_time,
            sample: None,
        };
        f(&mut b);
        let Some((ns, min, max)) = b.sample else {
            return;
        };
        println!(
            "{name:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(ns),
            fmt_ns(max)
        );
        self.results.push(Sample {
            name,
            ns_per_iter: ns,
            min_ns: min,
            max_ns: max,
        });
    }

    /// Prints the trailer and writes the JSON report when requested.
    pub fn final_summary(&mut self) {
        if let Some(path) = &self.json_path {
            let mut s = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    s.push_str(",\n");
                }
                s.push_str(&format!(
                    "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                    r.name.replace('"', "'"),
                    r.ns_per_iter,
                    r.min_ns,
                    r.max_ns
                ));
            }
            s.push_str("\n]\n");
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write bench JSON to {path}: {e}");
            } else {
                println!("bench results written to {path}");
            }
        }
        println!("{} benchmark(s) complete", self.results.len());
    }

    /// The collected results (for harness-embedding tests).
    pub fn results(&self) -> &[Sample] {
        &self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs `f` as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_name());
        self.criterion.run_one(full, f);
        self
    }

    /// Runs `f` with a borrowed input as `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_name());
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// Renders the display name.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

/// A `function/parameter` benchmark id.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter display form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    budget: Duration,
    sample: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `f`, spending roughly the configured time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: one untimed call, then grow the batch until it costs
        // at least ~1/50 of the budget (so timer overhead stays <2%).
        black_box(f());
        let budget_ns = self.budget.as_nanos() as f64;
        let mut batch = 1u64;
        let mut per_iter;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let spent = t0.elapsed().as_nanos() as f64;
            per_iter = spent / batch as f64;
            if spent >= budget_ns / 50.0 || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        // Measure: fixed-size batches until the budget is consumed.
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        while total_ns < budget_ns {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let spent = t0.elapsed().as_nanos() as f64;
            let mean = spent / batch as f64;
            min = min.min(mean);
            max = max.max(mean);
            total_ns += spent;
            total_iters += batch;
        }
        let _ = per_iter;
        self.sample = Some((total_ns / total_iters as f64, min, max));
    }

    /// Upstream parity: measurement with a per-iteration setup stage.
    pub fn iter_with_setup<S, O, FS: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: FS,
        mut f: F,
    ) {
        // Setup cost is included (adequate for the workspace's uses).
        self.iter(|| f(setup()));
    }
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_a_positive_sample() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..100u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        let r = c.results();
        assert_eq!(r.len(), 1);
        assert!(r[0].ns_per_iter > 0.0);
        assert!(r[0].min_ns <= r[0].ns_per_iter && r[0].ns_per_iter <= r[0].max_ns);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Default::default()
        };
        c.measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| 1u32 + 1));
        g.finish();
        assert!(c.results().is_empty());
    }

    #[test]
    fn benchmark_ids_compose_names() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_name(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").into_benchmark_name(), "p");
    }
}
