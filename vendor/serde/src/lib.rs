//! Offline vendored serialization facade.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal `serde`-shaped crate: the `Serialize` / `Deserialize` traits,
//! derive macros (re-exported from the vendored `serde_derive`), and a
//! JSON-oriented data model ([`Value`], [`Number`], [`Map`]) that the
//! vendored `serde_json` crate re-exports.
//!
//! Unlike real serde's zero-copy visitor architecture, this facade
//! round-trips everything through [`Value`] — simple, allocating, and
//! entirely adequate for the workspace's uses (artifact JSON files and
//! round-trip tests, none on a simulation hot path). The derive macros
//! generate the same *shapes* real serde would: structs as objects,
//! newtype structs transparently, tuple structs as arrays, enums
//! externally tagged, missing `Option` fields as `None`.

extern crate self as serde;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

mod json;
pub use json::{from_str, to_string, to_string_pretty};

/// A JSON number, kept in its original integer class so integers print
/// without a decimal point and round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point (always finite; non-finite floats serialize as null).
    F64(f64),
}

impl Number {
    /// The value as a float, regardless of class.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as a `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as an `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if (i64::MIN as f64..=i64::MAX as f64).contains(&v) && v.fract() == 0.0 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            // {:?} is shortest round-trip and keeps a ".0" on integral
            // floats, matching serde_json's ryu output closely.
            Number::F64(v) => write!(f, "{v:?}"),
        }
    }
}

/// An order-preserving string-keyed map (the object type of [`Value`]).
///
/// Backed by a vector so object keys serialize in insertion order, which
/// for derived structs is declaration order — stable and readable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq + Ord, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` at `key`, returning a displaced previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<V> Map<String, V> {
    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl<K: PartialEq + Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = &'a (K, V);
    type IntoIter = std::slice::Iter<'a, (K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The object contents, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as a float, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Index a value as an object; missing keys or non-objects yield `Null`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Index a value as an array; out-of-range or non-arrays yield `Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        match self {
            Value::Number(n) => n.as_i64() == Some(i64::from(*other)),
            _ => false,
        }
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number::F64(v))
        } else {
            Value::Null
        }
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(f64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U64(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::U64(u64::from(v)))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::U64(v as u64))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::Number(Number::U64(v as u64))
        } else {
            Value::Number(Number::I64(v))
        }
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::from(i64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

/// A (de)serialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// "expected X, found Y" for a mismatched value shape.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Error(format!("expected {what}, found {kind}"))
    }

    /// Unknown enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {ty}"))
    }

    /// Missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` of {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts to the JSON data model.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field of this type is absent.
    /// `None` means absence is an error; `Option<T>` overrides this to
    /// produce `None`, matching serde's treatment of optional fields.
    fn absent() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------
// Impls for primitives and std containers (the shapes derives produce).
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("a boolean", v))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| Error::expected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null; accept the round trip.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("a number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("a string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("a character", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("an array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::expected("an array", v))?;
        if a.len() != N {
            return Err(Error::msg(format!("expected {N} elements, found {}", a.len())));
        }
        let items: Vec<T> = a.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::expected("a 2-tuple", v))?;
        if a.len() != 2 {
            return Err(Error::msg(format!("expected 2 elements, found {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

/// Key types usable in serialized maps (JSON object keys are strings).
pub trait JsonKey: Sized + Ord {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!(
                    "invalid {} map key `{s}`", stringify!($t))))
            }
        }
    )*};
}
int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}
impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("an object", v))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj.iter() {
            out.insert(K::from_key(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Helpers called by derive-generated code.
// ---------------------------------------------------------------------

/// Expects an object, for struct/enum deserialization.
pub fn expect_object<'v>(v: &'v Value, what: &str) -> Result<&'v Map<String, Value>, Error> {
    v.as_object().ok_or_else(|| Error::expected(what, v))
}

/// Expects an array of exactly `n` elements, for tuple structs/variants.
pub fn expect_array<'v>(v: &'v Value, what: &str, n: usize) -> Result<&'v [Value], Error> {
    let a = v.as_array().ok_or_else(|| Error::expected(what, v))?;
    if a.len() != n {
        return Err(Error::msg(format!(
            "expected {n} elements for {what}, found {}",
            a.len()
        )));
    }
    Ok(a)
}

/// Expects a single-entry object, for externally tagged enum variants.
pub fn expect_single_entry<'v>(
    m: &'v Map<String, Value>,
    what: &str,
) -> Result<(&'v str, &'v Value), Error> {
    let mut it = m.iter();
    match (it.next(), it.next()) {
        (Some((k, v)), None) => Ok((k.as_str(), v)),
        _ => Err(Error::msg(format!(
            "expected a single-variant object for {what}"
        ))),
    }
}

/// Reads one struct field, honoring `Deserialize::absent` for missing keys.
pub fn get_field<T: Deserialize>(
    m: &Map<String, Value>,
    field: &str,
    ty: &str,
) -> Result<T, Error> {
    match m.get(field) {
        Some(v) => T::from_value(v),
        None => T::absent().ok_or_else(|| Error::missing_field(ty, field)),
    }
}

/// Upstream-compatible module path: `serde::de::DeserializeOwned` etc.
pub mod de {
    pub use super::{Deserialize, Error};
    /// In this facade every `Deserialize` is already owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Upstream-compatible module path for serialization.
pub mod ser {
    pub use super::{Error, Serialize};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m: Map = Map::new();
        m.insert("b".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        assert_eq!(m.insert("b".into(), Value::from(3u64)), Some(Value::from(1u64)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn option_fields_tolerate_absence() {
        let m: Map = Map::new();
        let x: Option<u64> = get_field(&m, "missing", "T").unwrap();
        assert_eq!(x, None);
        assert!(get_field::<u64>(&m, "missing", "T").is_err());
    }

    #[test]
    fn value_indexing_defaults_to_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn numbers_preserve_integer_class() {
        assert_eq!(Value::from(3u64).to_string_repr(), "3");
        assert_eq!(Value::from(-3i64).to_string_repr(), "-3");
        assert_eq!(Value::from(3.0f64).to_string_repr(), "3.0");
    }

    impl Value {
        fn to_string_repr(&self) -> String {
            crate::to_string(self).unwrap()
        }
    }

    #[test]
    fn btreemap_uses_stringified_keys() {
        let mut m = BTreeMap::new();
        m.insert(2usize, 7u64);
        let v = m.to_value();
        assert_eq!(v["2"], 7u64);
        let back: BTreeMap<usize, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
