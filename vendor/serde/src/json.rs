//! JSON text encoding and decoding for the [`Value`](crate::Value) data
//! model. Output conventions match serde_json: compact form has no
//! whitespace, pretty form indents by two spaces, strings escape control
//! characters, and numbers print in their integer class.

use crate::{Deserialize, Error, Map, Number, Serialize, Value};
use std::fmt::Write as _;

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.consume_keyword("null") => Ok(Value::Null),
            Some(b't') if self.consume_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.consume_keyword("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::msg("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_form_has_no_whitespace() {
        let mut m: Map = Map::new();
        m.insert("a".into(), Value::from(1u64));
        m.insert("b".into(), Value::Array(vec![Value::from(2.5f64), Value::Null]));
        let v = Value::Object(m);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[2.5,null]}"#);
    }

    #[test]
    fn pretty_form_indents_by_two() {
        let mut m: Map = Map::new();
        m.insert("a".into(), Value::from(1u64));
        let v = Value::Object(m);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parse_round_trips_nested_values() {
        let text = r#"{"s":"he\"llo\n","xs":[1,-2,3.5,true,false,null],"o":{"k":7}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["s"], "he\"llo\n");
        assert_eq!(v["xs"][0], 1u64);
        assert_eq!(v["xs"][1], -2i32);
        assert_eq!(v["xs"][2], 3.5f64);
        assert_eq!(v["xs"][3], true);
        assert!(v["xs"][5].is_null());
        assert_eq!(v["o"]["k"], 7u64);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 6.4e-6, 1e300, -2.5e-7, 123456.789] {
            let v = Value::from(x);
            let text = to_string(&v).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
