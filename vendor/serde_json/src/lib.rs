//! Offline vendored `serde_json` front-end.
//!
//! The JSON data model and codec live in the vendored `serde` facade (one
//! shared `Value` type keeps derive codegen and JSON I/O in one place);
//! this crate re-exports them under the familiar `serde_json` names and
//! adds the [`json!`] macro.
//!
//! Float output uses Rust's shortest-round-trip formatting, so the
//! `float_roundtrip` feature of the real crate is inherently satisfied;
//! object keys keep insertion order.

pub use serde::{from_str, to_string, to_string_pretty, Error, Map, Number, Value};

/// Builds a [`Value`] from a literal or any `Into<Value>` expression.
///
/// Supports the subset of the real macro the workspace uses: `null`,
/// scalars, and plain expressions. (Array/object literal syntax is not
/// needed — build [`Map`]s directly for those.)
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

/// Serializes into a generic writer (convenience parity with upstream).
pub fn to_writer<W: std::io::Write, T: serde::Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), std::io::Error> {
    let s = to_string(value).map_err(std::io::Error::other)?;
    writer.write_all(s.as_bytes())
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_converts_scalars() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(1.5f64), 1.5f64);
        assert_eq!(json!("hi"), "hi");
        assert_eq!(json!(3u64), 3u64);
        assert_eq!(json!(true), true);
    }

    #[test]
    fn value_round_trips_through_text() {
        let mut m: Map = Map::new();
        m.insert("k".into(), json!(42.5f64));
        let v = Value::Object(m);
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["k"], 42.5f64);
    }
}
