//! The predictive `ReplicateSubtask` algorithm (paper Fig. 5).
//!
//! Given a candidate subtask with replica set `PS(st)`, the algorithm
//! repeatedly adds the least-utilized processor not yet hosting a replica,
//! then **forecasts** every replica's latency: each replica will process
//! `1/|PS|` of the data stream, its execution latency comes from the
//! Eq. (3) regression at the replica's node utilization, and its inbound
//! message delay from Eqs. (4)–(6) at the current periodic workload. It
//! stops as soon as every replica's forecast total fits within the
//! subtask's deadline minus the required slack (`sl = 0.2 · dl`), and
//! fails if processors run out first.

use rtds_sim::ids::NodeId;
use rtds_sim::time::SimDuration;

use crate::predictor::Predictor;

/// Why `replicate_subtask` could not find a satisfying replica set.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicateFailure {
    /// Every processor already hosts a replica and the forecast still
    /// exceeds the budget (Fig. 5 step 2.1).
    OutOfProcessors {
        /// The best (complete) replica set reached before giving up.
        best_effort: Vec<NodeId>,
        /// The worst replica forecast with that set, ms.
        worst_forecast_ms: f64,
    },
}

/// Inputs that vary per invocation of Fig. 5.
#[derive(Debug, Clone)]
pub struct ReplicationRequest<'a> {
    /// Current replica set `PS(st)` (ordered, original first).
    pub current: &'a [NodeId],
    /// Observed utilization `ut(p, t)` per node, percent, indexed by node.
    pub node_util_pct: &'a [f64],
    /// Pipeline index of the candidate subtask.
    pub stage: usize,
    /// Data items the subtask must process this period (`ds(T_i, c)`).
    pub tracks: u64,
    /// Total periodic workload `Σ ds` for Eq. (5).
    pub total_periodic_tracks: u64,
    /// The subtask's deadline budget `dl(st)` (here: its combined
    /// message + execution budget, which is what its forecast total is
    /// compared against).
    pub budget: SimDuration,
    /// Required slack `sl` (the paper: `0.2 · dl(st)`).
    pub slack: SimDuration,
}

/// How Fig. 5's step 3 picks the next host — the paper uses the
/// least-utilized processor; the alternatives exist for the DESIGN.md
/// ablation of that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum ProcessorChoice {
    /// The paper's rule: lowest observed utilization, ties to lower id.
    #[default]
    LeastUtilized,
    /// Lowest node id not yet hosting a replica (utilization-blind).
    FirstAvailable,
    /// Deterministic pseudorandom pick (hash of the candidate set size and
    /// the stage), utilization-blind.
    Pseudorandom,
}

impl ProcessorChoice {
    fn pick(self, candidates: &mut dyn Iterator<Item = NodeId>, utils: &[f64], salt: usize) -> Option<NodeId> {
        match self {
            ProcessorChoice::LeastUtilized => candidates.min_by(|a, b| {
                utils[a.index()]
                    .partial_cmp(&utils[b.index()])
                    .expect("utilization is never NaN")
                    .then(a.cmp(b))
            }),
            ProcessorChoice::FirstAvailable => candidates.min(),
            ProcessorChoice::Pseudorandom => {
                let all: Vec<NodeId> = candidates.collect();
                if all.is_empty() {
                    None
                } else {
                    // splitmix-style mix of the salt for a stable pick.
                    let mut z = salt as u64 ^ 0x9E37_79B9_7F4A_7C15;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z ^= z >> 27;
                    Some(all[(z % all.len() as u64) as usize])
                }
            }
        }
    }
}

/// Fig. 5. Returns the satisfying replica set (a strict superset of
/// `current`, in utilization-greedy order) or a failure.
///
/// ```
/// use rtds_arm::predictive::{replicate_subtask, ReplicationRequest};
/// use rtds_arm::predictor::analytic_predictor;
/// use rtds_dynbench::app::aaw_task;
/// use rtds_regression::{BufferDelayModel, CommDelayModel};
/// use rtds_sim::ids::NodeId;
/// use rtds_sim::time::SimDuration;
///
/// let predictor = analytic_predictor(
///     &aaw_task(),
///     CommDelayModel::new(BufferDelayModel::from_slope(0.0005), 100e6),
/// );
/// let current = [NodeId(2)];
/// let utils = [10.0; 6];
/// let budget = SimDuration::from_millis(200);
/// let ps = replicate_subtask(
///     &ReplicationRequest {
///         current: &current,
///         node_util_pct: &utils,
///         stage: 2, // Filter
///         tracks: 10_000,
///         total_periodic_tracks: 10_000,
///         budget,
///         slack: budget.mul_f64(0.2),
///     },
///     &predictor,
/// )
/// .expect("an idle cluster can absorb this");
/// assert!(ps.len() >= 2 && ps[0] == NodeId(2));
/// ```
pub fn replicate_subtask(
    req: &ReplicationRequest<'_>,
    predictor: &Predictor,
) -> Result<Vec<NodeId>, ReplicateFailure> {
    replicate_subtask_with(req, predictor, ProcessorChoice::LeastUtilized)
}

/// One candidate processor examined by an audited Fig. 5 run: the node,
/// the utilization it was picked at, its own forecast with the enlarged
/// replica set, the worst forecast across that set, and whether the set
/// was accepted (forecast within threshold) at that size.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CandidateStep {
    /// The processor added at this step.
    pub node: NodeId,
    /// Its observed utilization at selection time, percent.
    pub util_pct: f64,
    /// Forecast execution latency of this node's replica (Eq. (3)), ms.
    pub eex_ms: f64,
    /// Forecast inbound communication delay (Eqs. (4)–(6)), ms; 0 for
    /// stage 0, which has no inbound message.
    pub ecd_ms: f64,
    /// Worst replica forecast across the whole enlarged set, ms — the
    /// value Fig. 5 compares against the threshold.
    pub worst_total_ms: f64,
    /// Whether the enlarged set satisfied `worst ≤ budget − slack`.
    pub accepted: bool,
}

/// Fig. 5 with an explicit host-selection rule (ablation entry point).
pub fn replicate_subtask_with(
    req: &ReplicationRequest<'_>,
    predictor: &Predictor,
    choice: ProcessorChoice,
) -> Result<Vec<NodeId>, ReplicateFailure> {
    replicate_subtask_core(req, predictor, choice, None)
}

/// Fig. 5 with a per-candidate audit trail: every processor examined is
/// appended to `audit` with its forecast against the threshold. The
/// decision is **identical** to [`replicate_subtask_with`] — the audit
/// only records what the algorithm computed anyway (plus the added
/// node's own eex/ecd split, derived from the same predictor calls).
pub fn replicate_subtask_audited(
    req: &ReplicationRequest<'_>,
    predictor: &Predictor,
    choice: ProcessorChoice,
    audit: &mut Vec<CandidateStep>,
) -> Result<Vec<NodeId>, ReplicateFailure> {
    replicate_subtask_core(req, predictor, choice, Some(audit))
}

fn replicate_subtask_core(
    req: &ReplicationRequest<'_>,
    predictor: &Predictor,
    choice: ProcessorChoice,
    mut audit: Option<&mut Vec<CandidateStep>>,
) -> Result<Vec<NodeId>, ReplicateFailure> {
    let n_nodes = req.node_util_pct.len();
    assert!(!req.current.is_empty(), "replica set can never be empty");
    assert!(req.stage < predictor.n_stages(), "stage out of range");
    let mut ps: Vec<NodeId> = req.current.to_vec();
    let threshold = req.budget.saturating_sub(req.slack).as_millis_f64();

    loop {
        // Step 1-3: find the next processor outside PS per the rule.
        let candidate = choice.pick(
            &mut (0..n_nodes).map(NodeId::from_index).filter(|n| !ps.contains(n)),
            req.node_util_pct,
            req.stage * 31 + ps.len(),
        );
        let Some(p) = candidate else {
            // Step 2.1: no processors left.
            let worst = worst_forecast_ms(&ps, req, predictor);
            return Err(ReplicateFailure::OutOfProcessors {
                best_effort: ps,
                worst_forecast_ms: worst,
            });
        };
        // Steps 4-5: add it.
        ps.push(p);
        // Step 6: forecast every replica with the enlarged set.
        let worst = worst_forecast_ms(&ps, req, predictor);
        let accepted = worst <= threshold;
        if let Some(trail) = audit.as_deref_mut() {
            let (eex_ms, ecd_ms) = replica_forecast_ms(p, ps.len(), req, predictor);
            trail.push(CandidateStep {
                node: p,
                util_pct: req.node_util_pct[p.index()],
                eex_ms,
                ecd_ms,
                worst_total_ms: worst,
                accepted,
            });
        }
        if accepted {
            // Step 7.
            return Ok(ps);
        }
        // Step 6.6.1: need another replica; loop.
    }
}

/// The (eex, ecd) forecast in ms for one replica of the set, at set size
/// `k` — the per-node split behind [`worst_forecast_ms`].
fn replica_forecast_ms(
    q: NodeId,
    k: usize,
    req: &ReplicationRequest<'_>,
    predictor: &Predictor,
) -> (f64, f64) {
    let share = req.tracks.div_ceil(k as u64);
    let eex = predictor.eex(req.stage, share, req.node_util_pct[q.index()]);
    let ecd = if req.stage == 0 {
        SimDuration::ZERO
    } else {
        predictor.ecd(req.stage - 1, share, req.total_periodic_tracks)
    };
    (eex.as_millis_f64(), ecd.as_millis_f64())
}

/// The forecast total (eex + ecd, ms) of the worst-off replica under the
/// given replica set — Fig. 5 steps 6.1–6.5 for every `q ∈ PS(st)`.
pub fn worst_forecast_ms(
    ps: &[NodeId],
    req: &ReplicationRequest<'_>,
    predictor: &Predictor,
) -> f64 {
    let k = ps.len() as u64;
    // Step 6.2: each replica processes 1/|PS| of the data (round up so the
    // forecast covers the largest share).
    let share = req.tracks.div_ceil(k);
    let mut worst = 0.0f64;
    for &q in ps {
        let u = req.node_util_pct[q.index()];
        // Step 6.3.
        let eex = predictor.eex(req.stage, share, u);
        // Step 6.4: the inbound message carries the replica's share; its
        // size is the predecessor's output for that share. Stage 0 has no
        // inbound message.
        let ecd = if req.stage == 0 {
            SimDuration::ZERO
        } else {
            predictor.ecd(req.stage - 1, share, req.total_periodic_tracks)
        };
        // Step 6.5.
        let total = (eex + ecd).as_millis_f64();
        worst = worst.max(total);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::analytic_predictor;
    use rtds_dynbench::app::aaw_task;
    use rtds_regression::buffer::{BufferDelayModel, CommDelayModel};

    fn predictor() -> Predictor {
        analytic_predictor(
            &aaw_task(),
            CommDelayModel::new(BufferDelayModel::from_slope(0.0005), 100e6),
        )
    }

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn req<'a>(
        current: &'a [NodeId],
        utils: &'a [f64],
        tracks: u64,
        budget_ms: f64,
    ) -> ReplicationRequest<'a> {
        ReplicationRequest {
            current,
            node_util_pct: utils,
            stage: 2, // Filter
            tracks,
            total_periodic_tracks: tracks,
            budget: ms(budget_ms),
            slack: ms(0.2 * budget_ms),
        }
    }

    #[test]
    fn adds_exactly_enough_replicas() {
        // Filter at 10_000 tracks: demand = 0.010*100^2 + 0.9*100 = 190 ms
        // at u=0. Budget 200 ms with 40 ms slack -> threshold 160 ms.
        // 1 replica: ~190+ecd -> too slow. 2 replicas (5_000 each):
        // 25+45=70 ms exec + ~30 ms msg -> fits.
        let utils = [5.0; 6];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 10_000, 200.0);
        let ps = replicate_subtask(&r, &predictor()).unwrap();
        assert_eq!(ps.len(), 2, "one extra replica should suffice: {ps:?}");
        assert_eq!(ps[0], NodeId(2), "original stays first");
    }

    #[test]
    fn always_adds_at_least_one_replica() {
        // Called as a candidate even if the forecast already fits: Fig. 5
        // adds a processor before the first check.
        let utils = [5.0; 6];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 100, 900.0);
        let ps = replicate_subtask(&r, &predictor()).unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn picks_least_utilized_processors_in_order() {
        let utils = [50.0, 10.0, 0.0, 30.0, 5.0, 90.0];
        let current = [NodeId(2)];
        // Big load, small budget: forces several additions.
        let r = req(&current, &utils, 16_000, 260.0);
        let ps = replicate_subtask(&r, &predictor()).unwrap();
        // Greedy order after the original (node 2): 4 (5 %), 1 (10 %), ...
        assert_eq!(ps[0], NodeId(2));
        assert_eq!(ps[1], NodeId(4));
        if ps.len() > 2 {
            assert_eq!(ps[2], NodeId(1));
        }
    }

    #[test]
    fn fails_when_processors_run_out() {
        let utils = [95.0; 3]; // tiny, saturated cluster
        let current = [NodeId(0)];
        let mut r = req(&current, &utils, 17_500, 100.0);
        r.node_util_pct = &utils;
        match replicate_subtask(&r, &predictor()) {
            Err(ReplicateFailure::OutOfProcessors {
                best_effort,
                worst_forecast_ms,
            }) => {
                assert_eq!(best_effort.len(), 3, "all processors used");
                assert!(worst_forecast_ms > 80.0);
            }
            Ok(ps) => panic!("should not satisfy 100 ms budget: {ps:?}"),
        }
    }

    #[test]
    fn higher_budget_needs_fewer_replicas() {
        let utils = [10.0; 6];
        let current = [NodeId(2)];
        let tight = replicate_subtask(&req(&current, &utils, 14_000, 250.0), &predictor())
            .map(|p| p.len())
            .unwrap_or(6);
        let loose = replicate_subtask(&req(&current, &utils, 14_000, 800.0), &predictor())
            .map(|p| p.len())
            .unwrap_or(6);
        assert!(loose <= tight, "loose budget {loose} vs tight {tight}");
    }

    #[test]
    fn worst_forecast_decreases_with_more_replicas() {
        let utils = [10.0; 6];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 12_000, 500.0);
        let one = worst_forecast_ms(&[NodeId(2)], &r, &predictor());
        let two = worst_forecast_ms(&[NodeId(2), NodeId(5)], &r, &predictor());
        let three = worst_forecast_ms(&[NodeId(2), NodeId(5), NodeId(0)], &r, &predictor());
        assert!(two < one, "{two} !< {one}");
        assert!(three < two, "{three} !< {two}");
    }

    #[test]
    fn forecast_accounts_for_replica_node_utilization() {
        let busy = [80.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let idle = [0.0; 6];
        let current = [NodeId(0)];
        let r_busy = req(&current, &busy, 8_000, 500.0);
        let r_idle = req(&current, &idle, 8_000, 500.0);
        let p = predictor();
        assert!(
            worst_forecast_ms(&[NodeId(0)], &r_busy, &p)
                > worst_forecast_ms(&[NodeId(0)], &r_idle, &p)
        );
    }

    #[test]
    fn stage_zero_has_no_inbound_message_cost() {
        let utils = [0.0; 6];
        let current = [NodeId(0)];
        let mut r = req(&current, &utils, 8_000, 500.0);
        r.stage = 0;
        let w = worst_forecast_ms(&[NodeId(0)], &r, &predictor());
        // Radar: 0.08 ms per hundred tracks * 80 = 6.4 ms, no ecd.
        assert!((w - 6.4).abs() < 0.5, "{w}");
    }

    #[test]
    fn processor_choice_first_available_ignores_utilization() {
        let utils = [90.0, 0.0, 50.0, 0.0, 0.0, 0.0];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 12_000, 400.0);
        let ps =
            replicate_subtask_with(&r, &predictor(), ProcessorChoice::FirstAvailable).unwrap();
        // FirstAvailable adds node 0 (busiest!) before node 1.
        assert_eq!(ps[1], NodeId(0));
    }

    #[test]
    fn processor_choice_pseudorandom_is_deterministic() {
        let utils = [10.0; 6];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 12_000, 400.0);
        let a = replicate_subtask_with(&r, &predictor(), ProcessorChoice::Pseudorandom).unwrap();
        let b = replicate_subtask_with(&r, &predictor(), ProcessorChoice::Pseudorandom).unwrap();
        assert_eq!(a, b);
        // Still a valid set.
        let mut seen = std::collections::HashSet::new();
        assert!(a.iter().all(|n| seen.insert(*n)));
    }

    #[test]
    fn least_utilized_choice_matches_default_entry_point() {
        let utils = [50.0, 10.0, 0.0, 30.0, 5.0, 90.0];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 16_000, 260.0);
        let a = replicate_subtask(&r, &predictor()).unwrap();
        let b =
            replicate_subtask_with(&r, &predictor(), ProcessorChoice::LeastUtilized).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn audited_run_matches_unaudited_and_explains_each_step() {
        let utils = [50.0, 10.0, 0.0, 30.0, 5.0, 90.0];
        let current = [NodeId(2)];
        let r = req(&current, &utils, 16_000, 260.0);
        let p = predictor();
        let plain = replicate_subtask(&r, &p).unwrap();
        let mut trail = Vec::new();
        let audited =
            replicate_subtask_audited(&r, &p, ProcessorChoice::LeastUtilized, &mut trail)
                .unwrap();
        assert_eq!(plain, audited, "audit must not change the decision");
        // One step per processor added beyond the original set.
        assert_eq!(trail.len(), audited.len() - current.len());
        // Exactly the last step is accepted; earlier ones were rejected.
        assert!(trail.last().unwrap().accepted);
        assert!(trail[..trail.len() - 1].iter().all(|s| !s.accepted));
        let threshold = r.budget.saturating_sub(r.slack).as_millis_f64();
        for (i, s) in trail.iter().enumerate() {
            assert_eq!(s.node, audited[current.len() + i]);
            assert_eq!(s.util_pct, utils[s.node.index()]);
            assert!(s.eex_ms > 0.0 && s.ecd_ms > 0.0);
            // The worst forecast bounds this replica's own forecast and
            // acceptance means it beat the threshold.
            assert!(s.worst_total_ms >= 0.0);
            assert_eq!(s.accepted, s.worst_total_ms <= threshold);
        }
    }

    #[test]
    fn audited_out_of_processors_keeps_the_rejected_trail() {
        let utils = [95.0; 3];
        let current = [NodeId(0)];
        let r = req(&current, &utils, 17_500, 100.0);
        let mut trail = Vec::new();
        let err = replicate_subtask_audited(
            &r,
            &predictor(),
            ProcessorChoice::LeastUtilized,
            &mut trail,
        )
        .unwrap_err();
        assert!(matches!(err, ReplicateFailure::OutOfProcessors { .. }));
        assert_eq!(trail.len(), 2, "both extra processors were examined");
        assert!(trail.iter().all(|s| !s.accepted));
    }

    #[test]
    #[should_panic(expected = "never be empty")]
    fn empty_replica_set_panics() {
        let utils = [0.0; 6];
        let r = req(&[], &utils, 100, 100.0);
        let _ = replicate_subtask(&r, &predictor());
    }
}
