//! The non-predictive baseline algorithm (paper Fig. 7) and the replica
//! shutdown rule (Fig. 6) shared by both algorithms.

use rtds_sim::ids::NodeId;

/// Fig. 7: `ReplicateSubtask` without prediction. "The algorithm
/// identifies processors that are exhibiting utilization levels below a
/// threshold value and replicates the candidate subtasks" onto **every**
/// such processor — no forecast, no stopping rule.
///
/// Returns the enlarged replica set (unchanged if no processor qualifies).
pub fn replicate_subtask_nonpredictive(
    current: &[NodeId],
    node_util_pct: &[f64],
    threshold_pct: f64,
) -> Vec<NodeId> {
    assert!(!current.is_empty(), "replica set can never be empty");
    assert!(
        (0.0..=100.0).contains(&threshold_pct),
        "threshold must be a percentage"
    );
    let mut ps = current.to_vec();
    for (i, &u) in node_util_pct.iter().enumerate() {
        let n = NodeId::from_index(i);
        if !ps.contains(&n) && u < threshold_pct {
            ps.push(n);
        }
    }
    ps
}

/// A second heuristic baseline, *not* in the paper: add exactly **one**
/// replica per candidate per control round, on the least-utilized
/// processor, with no forecast. Comparing it against Fig. 5 isolates the
/// value of the *prediction* from the value of incremental least-utilized
/// allocation — the paper's Fig. 7 baseline conflates the two by grabbing
/// every idle node at once.
///
/// Returns the enlarged set, or the original if no processor remains.
pub fn replicate_subtask_incremental(
    current: &[NodeId],
    node_util_pct: &[f64],
) -> Vec<NodeId> {
    assert!(!current.is_empty(), "replica set can never be empty");
    let mut ps = current.to_vec();
    let candidate = (0..node_util_pct.len())
        .map(NodeId::from_index)
        .filter(|n| !ps.contains(n))
        .min_by(|a, b| {
            node_util_pct[a.index()]
                .partial_cmp(&node_util_pct[b.index()])
                .expect("utilization is never NaN")
                .then(a.cmp(b))
        });
    if let Some(n) = candidate {
        ps.push(n);
    }
    ps
}

/// Fig. 6: `ShutDownAReplica` — removes the **last added** replica, never
/// the original (step 1: a single-replica set is left alone).
///
/// Returns the reduced set (unchanged if only the original remains).
pub fn shutdown_a_replica(current: &[NodeId]) -> Vec<NodeId> {
    assert!(!current.is_empty(), "replica set can never be empty");
    if current.len() == 1 {
        return current.to_vec();
    }
    current[..current.len() - 1].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicates_onto_every_low_utilization_node() {
        let utils = [50.0, 10.0, 5.0, 30.0, 19.9, 90.0];
        let ps = replicate_subtask_nonpredictive(&[NodeId(0)], &utils, 20.0);
        // Nodes 1 (10 %), 2 (5 %), 4 (19.9 %) qualify; 3 and 5 do not.
        assert_eq!(ps, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn threshold_is_strict() {
        let utils = [20.0, 20.0];
        let ps = replicate_subtask_nonpredictive(&[NodeId(0)], &utils, 20.0);
        assert_eq!(ps, vec![NodeId(0)], "exactly-at-threshold does not qualify");
    }

    #[test]
    fn existing_replicas_are_not_duplicated() {
        let utils = [0.0, 0.0, 0.0];
        let ps = replicate_subtask_nonpredictive(&[NodeId(1), NodeId(0)], &utils, 20.0);
        assert_eq!(ps, vec![NodeId(1), NodeId(0), NodeId(2)]);
    }

    #[test]
    fn no_qualifying_nodes_leaves_set_unchanged() {
        let utils = [80.0, 70.0, 95.0];
        let ps = replicate_subtask_nonpredictive(&[NodeId(0)], &utils, 20.0);
        assert_eq!(ps, vec![NodeId(0)]);
    }

    #[test]
    fn greedy_replication_uses_the_whole_idle_cluster() {
        // The defining behavior the paper's figures show: the
        // non-predictive algorithm grabs every idle node it can see.
        let utils = [1.0; 6];
        let ps = replicate_subtask_nonpredictive(&[NodeId(2)], &utils, 20.0);
        assert_eq!(ps.len(), 6);
    }

    #[test]
    fn incremental_adds_exactly_one_least_utilized() {
        let utils = [50.0, 10.0, 5.0, 30.0, 19.9, 90.0];
        let ps = replicate_subtask_incremental(&[NodeId(0)], &utils);
        assert_eq!(ps, vec![NodeId(0), NodeId(2)], "one replica, least utilized");
        // Saturated set: unchanged.
        let all: Vec<NodeId> = (0..6).map(NodeId).collect();
        assert_eq!(replicate_subtask_incremental(&all, &utils), all);
    }

    #[test]
    fn shutdown_removes_only_the_last_added() {
        let ps = shutdown_a_replica(&[NodeId(2), NodeId(5), NodeId(0)]);
        assert_eq!(ps, vec![NodeId(2), NodeId(5)]);
    }

    #[test]
    fn shutdown_never_removes_the_original() {
        let ps = shutdown_a_replica(&[NodeId(2)]);
        assert_eq!(ps, vec![NodeId(2)]);
    }

    #[test]
    fn repeated_shutdown_converges_to_original() {
        let mut ps = vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        for _ in 0..10 {
            ps = shutdown_a_replica(&ps);
        }
        assert_eq!(ps, vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bad_threshold_panics() {
        let _ = replicate_subtask_nonpredictive(&[NodeId(0)], &[0.0], 150.0);
    }
}
