//! A decentralized variant of the resource manager.
//!
//! The paper argues asynchronous real-time applications "require
//! decentralization because of the physical distribution of application
//! resources and for achieving survivability" (§1), yet its algorithms
//! are presented as one global decision procedure. This module makes the
//! decentralization cost measurable: each replicable subtask gets an
//! **independent agent** that
//!
//! * monitors only its own stage's observations;
//! * keeps a **fixed** budget from the initial EQF assignment (no global
//!   re-assignment after actions — that would need coordination);
//! * allocates with the same Fig. 5 forecast, but against a **stale**
//!   utilization snapshot (state dissemination in a distributed system is
//!   `staleness` periods behind), and without seeing what the other
//!   agents decided this round.
//!
//! The failure mode this surfaces is *herding*: two agents that both see
//! the same idle node in the same round both take it, and with stale
//! state they keep chasing utilization that no longer exists. The
//! `ext_decentralized` experiment quantifies the effect against the
//! centralized manager.

use std::collections::VecDeque;

use rtds_sim::control::{ControlAction, ControlContext, Controller, PeriodObservation};
use rtds_sim::ids::{NodeId, SubtaskIdx, TaskId};
use rtds_sim::time::SimDuration;

use crate::config::ArmConfig;
use crate::eqf::{assign_deadlines, try_assign_deadlines, DeadlineAssignment};
use crate::monitor::{assess_stage, SlackTracker};
use crate::nonpredictive::shutdown_a_replica;
use crate::predictive::{replicate_subtask_with, ReplicateFailure, ReplicationRequest};
use crate::predictor::Predictor;

/// Decentralized per-stage management with stale state dissemination.
pub struct DecentralizedManager {
    cfg: ArmConfig,
    predictor: Predictor,
    task: TaskId,
    /// Stage budgets, frozen at the first invocation.
    budgets: Option<Vec<SimDuration>>,
    tracker: SlackTracker,
    /// How many periods behind each agent's view of node utilization is.
    staleness: usize,
    /// Ring of past utilization snapshots (front = oldest retained).
    util_history: VecDeque<Vec<f64>>,
}

impl DecentralizedManager {
    /// Creates the decentralized manager. `staleness` = 0 means agents see
    /// current utilization but still decide independently with fixed
    /// budgets.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ArmConfig, predictor: Predictor, staleness: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ARM configuration: {e}");
        }
        let n = predictor.n_stages();
        DecentralizedManager {
            cfg,
            predictor,
            task: TaskId(0),
            budgets: None,
            tracker: SlackTracker::new(n),
            staleness,
            util_history: VecDeque::new(),
        }
    }

    /// Targets a different task id.
    pub fn for_task(mut self, task: TaskId) -> Self {
        self.task = task;
        self
    }

    fn init_budgets(&mut self, ctx: &ControlContext) -> Vec<SimDuration> {
        let (exec, comm) = self.predictor.initial_estimates(
            self.cfg.d_init_tracks,
            self.cfg.u_init_pct,
            self.cfg.d_init_tracks,
        );
        let n = self.predictor.n_stages();
        let a: DeadlineAssignment = try_assign_deadlines(
            &exec,
            &comm,
            ctx.deadlines[self.task.index()],
            self.cfg.eqf,
        )
        .unwrap_or_else(|_| {
            // Degenerate initial estimates must not crash an agent; fall
            // back to a uniform split of the end-to-end deadline.
            assign_deadlines(
                &vec![1.0; n],
                &vec![1.0; n.saturating_sub(1)],
                ctx.deadlines[self.task.index()],
                self.cfg.eqf,
            )
        });
        (0..self.predictor.n_stages())
            .map(|j| a.stage_budget(j))
            .collect()
    }

    /// The utilization snapshot an agent sees: `staleness` periods old
    /// (clamped to the oldest retained), with dead nodes masked.
    fn stale_utils(&self, ctx: &ControlContext) -> Vec<f64> {
        let snapshot = if self.staleness == 0 || self.util_history.len() <= 1 {
            &ctx.node_util_pct
        } else {
            let idx = self.util_history.len().saturating_sub(1 + self.staleness);
            &self.util_history[idx.min(self.util_history.len() - 1)]
        };
        snapshot
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                if !ctx.alive[i] {
                    1e6
                } else if ctx.cold[i] {
                    // A restarted node's estimate is still warming up:
                    // substitute the prior rather than trusting a near-zero
                    // reading (stale snapshots are even staler for it).
                    self.cfg.u_init_pct
                } else {
                    u
                }
            })
            .collect()
    }
}

impl Controller for DecentralizedManager {
    fn on_period_boundary(
        &mut self,
        completed: &[PeriodObservation],
        ctx: &ControlContext,
    ) -> Vec<ControlAction> {
        let t = self.task.index();
        if self.budgets.is_none() {
            self.budgets = Some(self.init_budgets(ctx));
        }
        // Record the current snapshot for future (stale) reads, bounded.
        self.util_history.push_back(ctx.node_util_pct.clone());
        while self.util_history.len() > self.staleness + 2 {
            self.util_history.pop_front();
        }
        let utils = self.stale_utils(ctx);
        let budgets = self.budgets.clone().expect("initialized above");

        let mut actions = Vec::new();
        let latest = completed
            .iter().rfind(|o| o.task == self.task && !o.stages.is_empty());

        for j in 0..self.predictor.n_stages() {
            if !ctx.replicable[t][j] {
                continue;
            }
            // Survivability repair stays local too: drop dead nodes.
            let mut current: Vec<NodeId> = ctx.placements[t][j]
                .iter()
                .copied()
                .filter(|n| ctx.alive[n.index()])
                .collect();
            if current.is_empty() {
                if let Some(n) = ctx.least_utilized_excluding(&[]) {
                    current.push(n);
                } else {
                    continue;
                }
            }
            let mut changed = current != ctx.placements[t][j];

            if let Some(obs) = latest {
                if let Some(st) = obs.stages.get(j) {
                    // Fixed budgets: the fiction every agent lives with.
                    let assignment = DeadlineAssignment {
                        subtask: budgets.clone(),
                        message: vec![SimDuration::ZERO; budgets.len().saturating_sub(1)],
                        variant: self.cfg.eqf,
                    };
                    let health = assess_stage(st, &assignment, &self.cfg.monitor);
                    let shutdown_ready =
                        self.tracker
                            .observe(j, health, self.cfg.monitor.shutdown_patience);
                    if health.needs_replication() {
                        let budget = budgets[j];
                        let req = ReplicationRequest {
                            current: &current,
                            node_util_pct: &utils,
                            stage: j,
                            tracks: st.tracks,
                            total_periodic_tracks: ctx.total_tracks(),
                            budget,
                            slack: budget.mul_f64(self.cfg.monitor.slack_fraction),
                        };
                        let new = match replicate_subtask_with(
                            &req,
                            &self.predictor,
                            self.cfg.processor_choice,
                        ) {
                            Ok(ps) => ps,
                            Err(ReplicateFailure::OutOfProcessors { best_effort, .. }) => {
                                best_effort
                            }
                        };
                        let new: Vec<NodeId> =
                            new.into_iter().filter(|n| ctx.alive[n.index()]).collect();
                        if !new.is_empty() && new != current {
                            current = new;
                            changed = true;
                        }
                    } else if shutdown_ready && current.len() > 1 {
                        current = shutdown_a_replica(&current);
                        changed = true;
                    }
                }
            }
            if changed {
                actions.push(ControlAction::SetPlacement {
                    task: self.task,
                    subtask: SubtaskIdx::from_index(j),
                    nodes: current,
                });
            }
        }
        actions
    }

    fn name(&self) -> &'static str {
        "decentralized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::analytic_predictor;
    use rtds_dynbench::app::{aaw_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
    use rtds_regression::buffer::{BufferDelayModel, CommDelayModel};
    use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
    use rtds_sim::clock::ClockConfig;
    use rtds_sim::load::PoissonLoad;
    use rtds_sim::time::SimTime;

    fn predictor() -> Predictor {
        analytic_predictor(
            &aaw_task(),
            CommDelayModel::new(BufferDelayModel::from_slope(0.0005), 100e6),
        )
    }

    fn run(staleness: usize, max_tracks: u64, seed: u64) -> rtds_sim::metrics::RunSummary {
        let mut config = ClusterConfig::paper_baseline(seed, SimDuration::from_secs(60));
        config.clock = ClockConfig::perfect();
        let mut cl = Cluster::new(config);
        cl.add_task(aaw_task(), Box::new(move |i| 500 + (i % 15) * (max_tracks / 15)));
        for n in 0..6 {
            cl.add_load(Box::new(PoissonLoad::with_utilization(
                rtds_sim::ids::LoadGenId(n),
                NodeId(n),
                0.10,
                SimDuration::from_millis(2),
            )));
        }
        cl.set_controller(Box::new(DecentralizedManager::new(
            ArmConfig::paper_predictive(),
            predictor(),
            staleness,
        )));
        cl.run().metrics.summarize(&[FILTER_STAGE, EVAL_DECIDE_STAGE])
    }

    #[test]
    fn decentralized_manager_keeps_the_mission_alive() {
        let s = run(0, 13_000, 1);
        assert!(s.missed_deadline_pct < 10.0, "{s:?}");
        assert!(s.avg_replicas > 1.0, "it adapts: {s:?}");
    }

    #[test]
    fn stale_state_is_tolerated_but_not_free() {
        let fresh = run(0, 13_000, 2);
        let stale = run(5, 13_000, 2);
        // Both keep the mission alive; staleness may cost extra replicas
        // or placement churn, never a wedge.
        assert!(fresh.missed_deadline_pct <= 15.0);
        assert!(stale.missed_deadline_pct <= 15.0);
        assert!(stale.avg_replicas >= 1.0);
    }

    #[test]
    fn repairs_node_failures_locally() {
        let mut config = ClusterConfig::paper_baseline(3, SimDuration::from_secs(30));
        config.clock = ClockConfig::perfect();
        let mut cl = Cluster::new(config);
        cl.add_task(aaw_task(), Box::new(|_| 8_000));
        cl.set_controller(Box::new(DecentralizedManager::new(
            ArmConfig::paper_predictive(),
            predictor(),
            2,
        )));
        cl.fail_node_at(NodeId(FILTER_STAGE as u32), SimTime::from_secs(10));
        let out = cl.run();
        let late_ok = out
            .metrics
            .periods
            .iter()
            .filter(|p| p.instance >= 15 && p.missed == Some(false))
            .count();
        assert!(late_ok >= 10, "recovers after home failure: {late_ok}");
    }

    #[test]
    fn name_distinguishes_it() {
        let m = DecentralizedManager::new(ArmConfig::paper_predictive(), predictor(), 1);
        assert_eq!(Controller::name(&m), "decentralized");
    }

    #[test]
    #[should_panic(expected = "invalid ARM configuration")]
    fn invalid_config_rejected() {
        let mut cfg = ArmConfig::paper_predictive();
        cfg.monitor.shutdown_patience = 0;
        let _ = DecentralizedManager::new(cfg, predictor(), 0);
    }
}
