//! The timeliness predictor (paper §4.2.1.1–4.2.1.2).
//!
//! Bundles a fitted Eq. (3) execution-latency model per pipeline stage with
//! the Eq. (4)–(6) communication-delay model, and answers the two questions
//! Fig. 5 asks on every iteration:
//!
//! * `eex(st, d, u)` — how long will this stage take to process `d` data
//!   items on a processor observed at utilization `u`?
//! * `ecd(m, d, c)` — how long will the message carrying `d` items into
//!   this stage take, given the current total periodic workload?

use rtds_regression::buffer::CommDelayModel;
use rtds_regression::model::ExecLatencyModel;
use rtds_sim::pipeline::TaskSpec;
use rtds_sim::time::SimDuration;

/// Per-task timeliness predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// One Eq. (3) model per pipeline stage, in order.
    exec: Vec<ExecLatencyModel>,
    /// The Eq. (4)–(6) communication model.
    comm: CommDelayModel,
    /// Bytes of message payload produced per input track, per stage.
    out_bytes_per_track: Vec<f64>,
}

impl Predictor {
    /// Builds a predictor for a task.
    ///
    /// # Panics
    /// Panics if the number of models does not match the task's stages.
    pub fn new(task: &TaskSpec, exec: Vec<ExecLatencyModel>, comm: CommDelayModel) -> Self {
        assert_eq!(
            exec.len(),
            task.n_stages(),
            "need one execution model per stage"
        );
        Predictor {
            exec,
            comm,
            out_bytes_per_track: task
                .stages
                .iter()
                .map(|s| s.output_bytes_per_track)
                .collect(),
        }
    }

    /// Number of stages covered.
    pub fn n_stages(&self) -> usize {
        self.exec.len()
    }

    /// The execution model of one stage.
    pub fn exec_model(&self, stage: usize) -> &ExecLatencyModel {
        &self.exec[stage]
    }

    /// Replaces one stage's execution model (online refinement writes the
    /// refined coefficients back through this).
    pub fn set_exec_model(&mut self, stage: usize, model: ExecLatencyModel) {
        self.exec[stage] = model;
    }

    /// The communication model.
    pub fn comm_model(&self) -> &CommDelayModel {
        &self.comm
    }

    /// Eq. (3): predicted execution latency of `stage` processing `tracks`
    /// data items on a processor at `util_pct` percent utilization.
    pub fn eex(&self, stage: usize, tracks: u64, util_pct: f64) -> SimDuration {
        let d = tracks as f64 / 100.0;
        SimDuration::from_millis_f64(self.exec[stage].predict(d, util_pct))
    }

    /// Eq. (4): predicted delay of the message from `from_stage` carrying
    /// `tracks` items, under `total_periodic_tracks` of system-wide
    /// periodic workload. For stage 0 (sensor-fed) there is no inbound
    /// message and the caller should not ask.
    pub fn ecd(&self, from_stage: usize, tracks: u64, total_periodic_tracks: u64) -> SimDuration {
        let bytes = tracks as f64 * self.out_bytes_per_track[from_stage];
        SimDuration::from_millis_f64(
            self.comm
                .predict_ms(bytes, total_periodic_tracks as f64),
        )
    }

    /// Initial-condition estimates for the EQF assignment (paper §4.1):
    /// per-stage `eex(st, d_init, u_init)` and per-message
    /// `ecd(m, d_init, c_init)` in milliseconds.
    pub fn initial_estimates(
        &self,
        d_init_tracks: u64,
        u_init_pct: f64,
        total_periodic_tracks: u64,
    ) -> (Vec<f64>, Vec<f64>) {
        let exec: Vec<f64> = (0..self.n_stages())
            .map(|j| self.eex(j, d_init_tracks, u_init_pct).as_millis_f64())
            .collect();
        let comm: Vec<f64> = (0..self.n_stages().saturating_sub(1))
            .map(|j| {
                self.ecd(j, d_init_tracks, total_periodic_tracks)
                    .as_millis_f64()
            })
            .collect();
        (exec, comm)
    }
}

/// Builds a predictor whose per-stage models are *analytically derived*
/// from the task's intrinsic cost polynomials under the round-robin
/// stretch approximation `latency ≈ demand / (1 − u/100)`, quadratically
/// approximated in `u`. This is the zero-profiling fallback, used by tests
/// and as a sanity baseline; real experiments fit models from profile
/// data.
pub fn analytic_predictor(task: &TaskSpec, comm: CommDelayModel) -> Predictor {
    let models = task
        .stages
        .iter()
        .map(|s| {
            // demand(h) = q h² + l h + c;  latency = demand * stretch(u).
            // Approximate stretch(u) = 1/(1-u/100) by its quadratic Taylor
            // expansion around u=0: 1 + u/100 + (u/100)² — good to ~20 %
            // relative error at u = 70 and exact in shape.
            let (q, l) = (s.cost.quad, s.cost.lin);
            ExecLatencyModel::from_coefficients(
                [q * 1e-4, q * 1e-2, q],
                [l * 1e-4, l * 1e-2, l],
            )
        })
        .collect();
    Predictor::new(task, models, comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_dynbench::app::aaw_task;
    use rtds_regression::buffer::BufferDelayModel;

    fn comm() -> CommDelayModel {
        CommDelayModel::new(BufferDelayModel::from_slope(0.001), 100e6)
    }

    fn predictor() -> Predictor {
        analytic_predictor(&aaw_task(), comm())
    }

    #[test]
    fn predictor_covers_all_stages() {
        let p = predictor();
        assert_eq!(p.n_stages(), 5);
    }

    #[test]
    fn eex_grows_with_workload_and_utilization() {
        let p = predictor();
        let base = p.eex(2, 2_000, 20.0);
        assert!(p.eex(2, 6_000, 20.0) > base);
        assert!(p.eex(2, 2_000, 70.0) > base);
        assert!(base > SimDuration::ZERO);
    }

    #[test]
    fn analytic_model_tracks_intrinsic_demand_at_zero_utilization() {
        let task = aaw_task();
        let p = analytic_predictor(&task, comm());
        for (j, s) in task.stages.iter().enumerate() {
            // The analytic model omits the constant demand term (Eq. 3 has
            // none), so compare against the polynomial part only.
            let h = 40.0;
            let expect = s.cost.quad * h * h + s.cost.lin * h;
            let got = p.eex(j, 4_000, 0.0).as_millis_f64();
            assert!(
                (got - expect).abs() < 1e-6,
                "stage {j}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn analytic_stretch_is_close_to_rr_sharing() {
        let p = predictor();
        let at = |u: f64| p.eex(2, 8_000, u).as_millis_f64();
        let base = at(0.0);
        // Quadratic approx of 1/(1-u): at 50 % true stretch is 2.0,
        // approx gives 1.75; at 70 % true 3.33, approx 2.19. We only need
        // the right direction and rough magnitude for the predictor to
        // drive replication decisions sensibly.
        assert!(at(50.0) / base > 1.6 && at(50.0) / base < 2.1);
        assert!(at(70.0) / base > 2.0);
    }

    #[test]
    fn ecd_combines_buffer_and_transmission() {
        let p = predictor();
        // Stage 2 output: 80 B/track. 10_000 tracks = 800 kB = 64 ms at
        // 100 Mbps; buffer = 0.001 ms/track * 20_000 = 20 ms.
        let d = p.ecd(2, 10_000, 20_000);
        assert!((d.as_millis_f64() - 84.0).abs() < 0.5, "{d}");
    }

    #[test]
    fn ecd_respects_stage_output_size() {
        let p = predictor();
        // EvalDecide (stage 4) emits 16 B/track vs 80 B/track elsewhere.
        assert!(p.ecd(4, 10_000, 0) < p.ecd(3, 10_000, 0));
    }

    #[test]
    fn initial_estimates_have_right_arity() {
        let p = predictor();
        let (e, c) = p.initial_estimates(1_000, 20.0, 1_000);
        assert_eq!(e.len(), 5);
        assert_eq!(c.len(), 4);
        assert!(e.iter().all(|&x| x > 0.0));
        assert!(c.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "one execution model per stage")]
    fn model_count_mismatch_panics() {
        let task = aaw_task();
        let _ = Predictor::new(&task, vec![], comm());
    }
}
