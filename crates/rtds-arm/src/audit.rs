//! Decision-audit records.
//!
//! The paper's contribution is a *decision procedure* (Figs. 5–6):
//! forecast each candidate processor's `eex` + `ecd`, stop when the
//! forecast beats the subtask budget minus slack. A placement change
//! alone does not show whether that procedure worked — the interesting
//! part is which candidates were examined, what their forecasts said,
//! and how the threshold was derived. [`DecisionRecord`] captures one
//! control-cycle decision for one stage, including explicit no-ops, and
//! the manager emits it into any
//! [`EventSink<DecisionRecord>`](rtds_sim::sink::EventSink) the embedder
//! attaches. Strictly opt-in: with no sink attached nothing is computed
//! beyond what the decision itself needed, and simulation outcomes are
//! identical either way.

use rtds_sim::ids::NodeId;

use crate::monitor::StageHealth;
use crate::predictive::CandidateStep;

/// Which arm of the management loop fired for a stage this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum DecisionArm {
    /// `ReplicateSubtask` ran (Fig. 5 predictive, Fig. 7 non-predictive,
    /// or the incremental variant) because the stage needed help.
    Replicate,
    /// `ShutDownAReplica` dropped the most recently added replica
    /// (Fig. 6) after sustained high slack.
    ShutDown,
    /// The stage was healthy and the cycle was an acting one, but no
    /// action was warranted.
    NoOp,
    /// Survivability repair: dead nodes were pruned from the replica set
    /// before the monitor ever looked at health.
    Repair,
}

/// One candidate processor as seen by the decision, with its forecast.
///
/// For forecasting policies the numbers come from the Fig. 5 audit trail
/// ([`CandidateStep`]); utilization-heuristic policies (non-predictive,
/// incremental) never compute `eex`/`ecd`, so those are `None` and only
/// `util_pct`/`accepted` are meaningful.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CandidateForecast {
    /// The candidate processor.
    pub node: NodeId,
    /// Its observed utilization at selection time, percent.
    pub util_pct: f64,
    /// Forecast execution latency (Eq. (3)), ms; `None` if the policy
    /// does not forecast.
    pub eex_ms: Option<f64>,
    /// Forecast inbound communication delay (Eqs. (4)–(6)), ms.
    pub ecd_ms: Option<f64>,
    /// Worst replica forecast over the enlarged set at this step, ms.
    pub worst_total_ms: Option<f64>,
    /// Whether the set including this candidate satisfied the stopping
    /// rule (forecast within threshold, or heuristic satisfied).
    pub accepted: bool,
}

impl From<CandidateStep> for CandidateForecast {
    fn from(s: CandidateStep) -> Self {
        CandidateForecast {
            node: s.node,
            util_pct: s.util_pct,
            eex_ms: Some(s.eex_ms),
            ecd_ms: Some(s.ecd_ms),
            worst_total_ms: Some(s.worst_total_ms),
            accepted: s.accepted,
        }
    }
}

/// One control-cycle decision for one stage: what the manager saw, what
/// it considered, and what it did.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct DecisionRecord {
    /// Owning task index.
    pub task: u32,
    /// Stage index within the pipeline.
    pub stage: u32,
    /// Policy name (`"predictive"`, `"nonpredictive"`, …).
    pub policy: String,
    /// Which arm fired.
    pub arm: DecisionArm,
    /// The latest monitored health of the stage, if an observation had
    /// arrived by this cycle.
    pub health: Option<StageHealth>,
    /// Observed slack of the latest observation: budget minus observed
    /// stage latency, ms (negative when the stage overran its budget).
    /// `None` before the first observation or when deadlines are not yet
    /// assigned.
    pub observed_slack_ms: Option<f64>,
    /// The stage's deadline budget `dl(st)`, ms.
    pub budget_ms: f64,
    /// The stopping threshold `dl(st) − sl` the forecasts were compared
    /// against, ms.
    pub threshold_ms: f64,
    /// Candidate processors examined, in examination order; empty for
    /// no-op, shutdown, and repair decisions.
    pub candidates: Vec<CandidateForecast>,
    /// Replica set before the decision.
    pub before: Vec<NodeId>,
    /// Replica set the decision chose (equals `before` for a no-op).
    pub chosen: Vec<NodeId>,
    /// True if `ReplicateSubtask` ran out of processors and fell back to
    /// the best-effort set.
    pub out_of_processors: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DecisionRecord {
        DecisionRecord {
            task: 0,
            stage: 2,
            policy: "predictive".into(),
            arm: DecisionArm::Replicate,
            health: Some(StageHealth::LowSlack),
            observed_slack_ms: Some(12.5),
            budget_ms: 200.0,
            threshold_ms: 160.0,
            candidates: vec![CandidateForecast {
                node: NodeId(4),
                util_pct: 5.0,
                eex_ms: Some(70.0),
                ecd_ms: Some(30.0),
                worst_total_ms: Some(110.0),
                accepted: true,
            }],
            before: vec![NodeId(2)],
            chosen: vec![NodeId(2), NodeId(4)],
            out_of_processors: false,
        }
    }

    #[test]
    fn decision_record_roundtrips_through_json() {
        let r = record();
        let js = serde_json::to_string(&r).unwrap();
        assert!(js.contains("\"arm\":\"Replicate\""), "{js}");
        assert!(js.contains("\"threshold_ms\":160.0"), "{js}");
        let back: DecisionRecord = serde_json::from_str(&js).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn candidate_forecast_from_step_preserves_every_field() {
        let s = CandidateStep {
            node: NodeId(1),
            util_pct: 42.0,
            eex_ms: 10.0,
            ecd_ms: 3.0,
            worst_total_ms: 13.0,
            accepted: false,
        };
        let c = CandidateForecast::from(s);
        assert_eq!(c.node, NodeId(1));
        assert_eq!(c.util_pct, 42.0);
        assert_eq!(c.eex_ms, Some(10.0));
        assert_eq!(c.ecd_ms, Some(3.0));
        assert_eq!(c.worst_total_ms, Some(13.0));
        assert!(!c.accepted);
    }
}
