//! # rtds-arm — predictive adaptive resource management
//!
//! The primary contribution of Ravindran & Hegazy, *"A Predictive
//! Algorithm for Adaptive Resource Management of Periodic Tasks in
//! Asynchronous Real-Time Distributed Systems"* (IPPS 2001):
//!
//! * [`eqf`] — subtask/message deadline assignment from end-to-end
//!   deadlines (Eqs. 1–2, EQF variant of Kao & Garcia-Molina);
//! * [`predictor`] — the timeliness forecaster combining the Eq. (3)
//!   execution-latency regression with the Eq. (4)–(6) communication-delay
//!   model;
//! * [`monitor`] — run-time slack monitoring and candidate selection
//!   (§4.1), shared by both algorithms;
//! * [`predictive`] — the predictive `ReplicateSubtask` (Fig. 5);
//! * [`nonpredictive`] — the heuristic baseline (Fig. 7) and the shared
//!   `ShutDownAReplica` rule (Fig. 6);
//! * [`manager`] — the full control loop as a simulator
//!   [`Controller`](rtds_sim::control::Controller);
//! * [`audit`] — decision records explaining every replicate / shut-down
//!   / no-op choice, for the observability layer;
//! * [`config`] — Table 1 constants and policy selection;
//! * [`metrics`] — the combined performance metric of §5.2.
//!
//! ## Quick start
//!
//! ```
//! use rtds_arm::prelude::*;
//! use rtds_dynbench::app::aaw_task;
//! use rtds_regression::buffer::{BufferDelayModel, CommDelayModel};
//!
//! let task = aaw_task();
//! let predictor = analytic_predictor(
//!     &task,
//!     CommDelayModel::new(BufferDelayModel::from_slope(0.0005), 100e6),
//! );
//! let manager = ResourceManager::new(ArmConfig::paper_predictive(), predictor);
//! // `manager` plugs into `rtds_sim::Cluster::set_controller`.
//! assert_eq!(rtds_sim::control::Controller::name(&manager), "predictive");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod config;
pub mod decentralized;
pub mod eqf;
pub mod manager;
pub mod metrics;
pub mod monitor;
pub mod nonpredictive;
pub mod online;
pub mod predictive;
pub mod predictor;

/// One-stop imports.
pub mod prelude {
    pub use crate::audit::{CandidateForecast, DecisionArm, DecisionRecord};
    pub use crate::config::{ArmConfig, Policy};
    pub use crate::eqf::{assign_deadlines, DeadlineAssignment, EqfVariant};
    pub use crate::decentralized::DecentralizedManager;
    pub use crate::manager::{CompositeManager, ManagerStats, ResourceManager};
    pub use crate::metrics::{combined_breakdown, combined_metric, combined_metric_weighted, CombinedBreakdown, MetricWeights};
    pub use crate::monitor::{assess_stage, classify, MonitorConfig, SlackTracker, StageHealth};
    pub use crate::nonpredictive::{replicate_subtask_incremental, replicate_subtask_nonpredictive, shutdown_a_replica};
    pub use crate::online::OnlineRefiner;
    pub use crate::predictive::{replicate_subtask, replicate_subtask_audited, replicate_subtask_with, CandidateStep, ProcessorChoice, ReplicateFailure, ReplicationRequest};
    pub use crate::predictor::{analytic_predictor, Predictor};
}
