//! Resource-manager configuration (paper Table 1 and §4 constants).

use crate::eqf::EqfVariant;
use crate::monitor::MonitorConfig;
use crate::predictive::ProcessorChoice;

/// Which step-2 algorithm decides replica counts and processors.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// The paper's contribution (Fig. 5): forecast timeliness via the
    /// regression models and add replicas until the forecast fits.
    Predictive,
    /// The heuristic baseline (Fig. 7): replicate onto every processor
    /// below the utilization threshold.
    NonPredictive {
        /// Table 1's "CPU Utilization Threshold": 20 %.
        utilization_threshold_pct: f64,
    },
    /// Extension baseline: one least-utilized replica per candidate per
    /// round, no forecast (isolates forecasting from incrementality).
    Incremental,
}

impl Policy {
    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Predictive => "predictive",
            Policy::NonPredictive { .. } => "non-predictive",
            Policy::Incremental => "incremental",
        }
    }
}

/// Full configuration of the adaptive resource manager.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ArmConfig {
    /// Step-2 policy.
    pub policy: Policy,
    /// Step-1 monitoring thresholds (shared by both policies).
    pub monitor: MonitorConfig,
    /// Deadline-assignment variant.
    pub eqf: EqfVariant,
    /// `d_init`: data size assumed for the initial EQF assignment, tracks.
    pub d_init_tracks: u64,
    /// `u_init`: CPU utilization assumed for the initial assignment, %.
    /// Also substituted for a freshly-restarted (cold) node whose EWMA has
    /// not yet seen `Node::COLD_SAMPLES` samples — stale near-zero readings
    /// would otherwise look like spare capacity.
    pub u_init_pct: f64,
    /// How Fig. 5 picks the next replica host (ablation knob; the paper
    /// uses the least-utilized processor).
    pub processor_choice: ProcessorChoice,
    /// Refine the Eq. (3) models online from observed stage latencies
    /// (recursive least squares; extension, see `crate::online`).
    pub online_refinement: bool,
    /// Control latency: the manager issues actions only every this many
    /// period boundaries (monitoring continues every period). 1 = the
    /// idealized zero-latency loop; larger values model the reaction
    /// latency of a distributed resource-management middleware like the
    /// paper's testbed (see EXPERIMENTS.md deviation 1).
    pub act_every: u32,
}

impl ArmConfig {
    /// The paper's predictive configuration.
    pub fn paper_predictive() -> Self {
        ArmConfig {
            policy: Policy::Predictive,
            monitor: MonitorConfig::default(),
            eqf: EqfVariant::Classic,
            d_init_tracks: 1_000,
            u_init_pct: 10.0,
            processor_choice: ProcessorChoice::LeastUtilized,
            online_refinement: false,
            act_every: 1,
        }
    }

    /// Enables online model refinement.
    pub fn with_online_refinement(mut self) -> Self {
        self.online_refinement = true;
        self
    }

    /// The paper's non-predictive configuration (Table 1: UT = 20 %).
    pub fn paper_nonpredictive() -> Self {
        ArmConfig {
            policy: Policy::NonPredictive {
                utilization_threshold_pct: 20.0,
            },
            ..Self::paper_predictive()
        }
    }

    /// The extension incremental baseline.
    pub fn incremental() -> Self {
        ArmConfig {
            policy: Policy::Incremental,
            ..Self::paper_predictive()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.monitor.validate()?;
        if let Policy::NonPredictive {
            utilization_threshold_pct,
        } = self.policy
        {
            if !(0.0..=100.0).contains(&utilization_threshold_pct) {
                return Err(format!(
                    "utilization threshold {utilization_threshold_pct} not a percentage"
                ));
            }
        }
        if !(0.0..=100.0).contains(&self.u_init_pct) {
            return Err(format!("u_init {} not a percentage", self.u_init_pct));
        }
        if self.act_every == 0 {
            return Err("act_every must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        assert!(ArmConfig::paper_predictive().validate().is_ok());
        assert!(ArmConfig::paper_nonpredictive().validate().is_ok());
    }

    #[test]
    fn nonpredictive_uses_table1_threshold() {
        match ArmConfig::paper_nonpredictive().policy {
            Policy::NonPredictive {
                utilization_threshold_pct,
            } => assert_eq!(utilization_threshold_pct, 20.0),
            _ => panic!("wrong policy"),
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Predictive.name(), "predictive");
        assert_eq!(
            Policy::NonPredictive {
                utilization_threshold_pct: 20.0
            }
            .name(),
            "non-predictive"
        );
    }

    #[test]
    fn validation_catches_bad_threshold() {
        let mut c = ArmConfig::paper_nonpredictive();
        c.policy = Policy::NonPredictive {
            utilization_threshold_pct: -5.0,
        };
        assert!(c.validate().is_err());
        let mut c2 = ArmConfig::paper_predictive();
        c2.u_init_pct = 300.0;
        assert!(c2.validate().is_err());
        let mut c3 = ArmConfig::paper_predictive();
        c3.act_every = 0;
        assert!(c3.validate().is_err());
    }
}
