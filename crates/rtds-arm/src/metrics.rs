//! The paper's combined performance metric (§5.2).
//!
//! `C = MD + U_CPU + U_Net + R̄ / Max(R)`
//!
//! where `MD` is the missed-deadline percentage, `U_CPU`/`U_Net` the
//! average processor/network utilizations, and `R̄ / Max(R)` the "percentage
//! replica use" — the average replica count over the maximum concurrency
//! the cluster could exploit (bounded by the processor count). All four
//! addends are percentages, so `C ∈ [0, 400]` and **smaller is better**.

use rtds_sim::metrics::RunSummary;

/// Computes the combined metric for a run on an `n_nodes`-processor
/// cluster.
///
/// # Panics
/// Panics if `n_nodes == 0`.
pub fn combined_metric(summary: &RunSummary, n_nodes: usize) -> f64 {
    assert!(n_nodes > 0, "cluster has no processors");
    summary.missed_deadline_pct
        + summary.avg_cpu_util_pct
        + summary.avg_net_util_pct
        + 100.0 * summary.avg_replicas / n_nodes as f64
}

/// Weights for a generalized combined metric. The paper weights the four
/// components equally; the weighted form lets the robustness of the
/// paper's conclusion be checked against other operator preferences
/// (e.g. timeliness-dominant or resource-dominant valuations).
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct MetricWeights {
    /// Weight on missed-deadline percentage.
    pub missed: f64,
    /// Weight on average CPU utilization.
    pub cpu: f64,
    /// Weight on average network utilization.
    pub net: f64,
    /// Weight on replica-use percentage.
    pub replicas: f64,
}

impl MetricWeights {
    /// The paper's equal weighting.
    pub fn paper() -> Self {
        MetricWeights {
            missed: 1.0,
            cpu: 1.0,
            net: 1.0,
            replicas: 1.0,
        }
    }

    /// A timeliness-dominant valuation (misses 10x as costly).
    pub fn timeliness_dominant() -> Self {
        MetricWeights {
            missed: 10.0,
            ..Self::paper()
        }
    }

    /// A resource-dominant valuation (replica use 5x as costly).
    pub fn resource_dominant() -> Self {
        MetricWeights {
            replicas: 5.0,
            ..Self::paper()
        }
    }
}

/// The weighted combined metric; [`combined_metric`] is the special case
/// of all-ones weights.
///
/// # Panics
/// Panics if `n_nodes == 0` or any weight is negative/non-finite.
pub fn combined_metric_weighted(
    summary: &RunSummary,
    n_nodes: usize,
    w: &MetricWeights,
) -> f64 {
    assert!(n_nodes > 0, "cluster has no processors");
    for v in [w.missed, w.cpu, w.net, w.replicas] {
        assert!(v.is_finite() && v >= 0.0, "weights must be finite and >= 0");
    }
    w.missed * summary.missed_deadline_pct
        + w.cpu * summary.avg_cpu_util_pct
        + w.net * summary.avg_net_util_pct
        + w.replicas * 100.0 * summary.avg_replicas / n_nodes as f64
}

/// The four components, for tabular reports.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CombinedBreakdown {
    /// Missed-deadline percentage.
    pub missed_pct: f64,
    /// Average CPU utilization, percent.
    pub cpu_pct: f64,
    /// Average network utilization, percent.
    pub net_pct: f64,
    /// Replica use, percent of maximum concurrency.
    pub replica_use_pct: f64,
    /// The sum.
    pub combined: f64,
}

/// Computes the metric with its breakdown.
pub fn combined_breakdown(summary: &RunSummary, n_nodes: usize) -> CombinedBreakdown {
    assert!(n_nodes > 0, "cluster has no processors");
    let replica_use_pct = 100.0 * summary.avg_replicas / n_nodes as f64;
    CombinedBreakdown {
        missed_pct: summary.missed_deadline_pct,
        cpu_pct: summary.avg_cpu_util_pct,
        net_pct: summary.avg_net_util_pct,
        replica_use_pct,
        combined: summary.missed_deadline_pct
            + summary.avg_cpu_util_pct
            + summary.avg_net_util_pct
            + replica_use_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(md: f64, cpu: f64, net: f64, replicas: f64) -> RunSummary {
        RunSummary {
            missed_deadline_pct: md,
            avg_cpu_util_pct: cpu,
            avg_net_util_pct: net,
            avg_replicas: replicas,
            decided_periods: 100,
            released_periods: 100,
            placement_changes: 0,
        }
    }

    #[test]
    fn combined_is_sum_of_percentages() {
        let s = summary(10.0, 30.0, 20.0, 3.0);
        // 3 replicas of 6 nodes = 50 % replica use.
        assert!((combined_metric(&s, 6) - 110.0).abs() < 1e-9);
    }

    #[test]
    fn zero_everything_is_zero() {
        assert_eq!(combined_metric(&summary(0.0, 0.0, 0.0, 0.0), 6), 0.0);
    }

    #[test]
    fn smaller_is_better_ordering_holds() {
        let good = summary(0.0, 20.0, 10.0, 1.5);
        let bad = summary(5.0, 18.0, 30.0, 5.5);
        assert!(combined_metric(&good, 6) < combined_metric(&bad, 6));
    }

    #[test]
    fn breakdown_sums_to_combined() {
        let s = summary(7.0, 33.0, 12.0, 2.4);
        let b = combined_breakdown(&s, 6);
        assert!((b.combined - combined_metric(&s, 6)).abs() < 1e-12);
        assert!((b.replica_use_pct - 40.0).abs() < 1e-9);
        assert!(
            (b.missed_pct + b.cpu_pct + b.net_pct + b.replica_use_pct - b.combined).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "no processors")]
    fn zero_nodes_panics() {
        let _ = combined_metric(&summary(0.0, 0.0, 0.0, 0.0), 0);
    }

    #[test]
    fn paper_weights_reduce_to_unweighted_metric() {
        let s = summary(7.0, 33.0, 12.0, 2.4);
        assert!(
            (combined_metric_weighted(&s, 6, &MetricWeights::paper())
                - combined_metric(&s, 6))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn weights_shift_the_winner_as_expected() {
        // A: no misses, many replicas. B: some misses, few replicas.
        let a = summary(0.0, 15.0, 20.0, 4.0);
        let b = summary(5.0, 15.0, 20.0, 1.5);
        let td = MetricWeights::timeliness_dominant();
        let rd = MetricWeights::resource_dominant();
        assert!(
            combined_metric_weighted(&a, 6, &td) < combined_metric_weighted(&b, 6, &td),
            "timeliness-dominant prefers the clean run"
        );
        assert!(
            combined_metric_weighted(&b, 6, &rd) < combined_metric_weighted(&a, 6, &rd),
            "resource-dominant prefers the frugal run"
        );
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn negative_weights_rejected() {
        let w = MetricWeights {
            missed: -1.0,
            ..MetricWeights::paper()
        };
        let _ = combined_metric_weighted(&summary(0.0, 0.0, 0.0, 0.0), 6, &w);
    }
}
