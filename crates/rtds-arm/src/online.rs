//! Online refinement of the Eq. (3) latency model.
//!
//! The paper's closest related work (\[BN+98, RSYJ97\]) observes resource
//! requirements **a-posteriori** and uses the observations "to refine the
//! a-priori estimates". This module brings that capability to the
//! predictive algorithm: Eq. (3) is linear in the feature vector
//! `φ(d, u) = [u²d², ud², d², u²d, ud, d]`, so its coefficients can be
//! updated from live `(d, u, latency)` observations with **recursive
//! least squares** (RLS) with exponential forgetting — no refitting pass,
//! O(36) state per subtask, and graceful tracking when the application's
//! true cost drifts (sensor upgrades, software changes, interference).
//!
//! Enable via [`crate::config::ArmConfig::online_refinement`]; the manager
//! then feeds every completed stage observation into the refiner and
//! predicts from the refined coefficients.

use rtds_regression::incremental::RecursiveLeastSquares;
use rtds_regression::model::ExecLatencyModel;

/// Number of Eq. (3) coefficients.
const K: usize = 6;

/// Internal feature scaling. The raw Eq. (3) features span ~7 orders of
/// magnitude (`u²d²` vs `d` at u ≈ 50, d ≈ 30), which wrecks RLS
/// conditioning; scaling them to comparable magnitudes keeps the inverse
/// covariance well-behaved. Coefficients are stored in *scaled* space and
/// converted on export.
const SCALE: [f64; K] = [1e-5, 1e-3, 1e-1, 1e-3, 1e-1, 1.0];

/// Recursive-least-squares refiner for one subtask's Eq. (3) model: the
/// Eq. (3) feature map and scaling around a generic
/// [`RecursiveLeastSquares`] core (which owns the rank-1 Sherman–Morrison
/// update), with coefficients imported from / exported to
/// [`ExecLatencyModel`].
#[derive(Debug, Clone)]
pub struct OnlineRefiner {
    /// The incremental estimator over scaled Eq. (3) features.
    rls: RecursiveLeastSquares<K>,
}

fn features(d: f64, u: f64) -> [f64; K] {
    let raw = [u * u * d * d, u * d * d, d * d, u * u * d, u * d, d];
    let mut out = [0.0; K];
    for i in 0..K {
        out[i] = raw[i] * SCALE[i];
    }
    out
}

impl OnlineRefiner {
    /// Starts from a fitted (or analytic) model. `prior_strength`
    /// controls how much the prior coefficients resist early updates:
    /// the initial inverse covariance is `I / prior_strength`, so larger
    /// values mean stronger trust in the prior.
    ///
    /// # Panics
    /// Panics unless `0 < lambda <= 1` and `prior_strength > 0`.
    pub fn from_model(model: &ExecLatencyModel, lambda: f64, prior_strength: f64) -> Self {
        let raw = [
            model.a[0], model.a[1], model.a[2], model.b[0], model.b[1], model.b[2],
        ];
        let mut theta = [0.0; K];
        for i in 0..K {
            theta[i] = raw[i] / SCALE[i];
        }
        OnlineRefiner {
            rls: RecursiveLeastSquares::new(theta, lambda, prior_strength),
        }
    }

    /// Default tuning for per-period stage observations: λ = 0.98
    /// (≈ 50-period memory) and a moderately confident prior.
    pub fn default_tuning(model: &ExecLatencyModel) -> Self {
        Self::from_model(model, 0.98, 1e3)
    }

    /// Number of observations absorbed.
    pub fn updates(&self) -> u64 {
        self.rls.updates()
    }

    /// Absorbs one observation: the stage processed `d` (hundreds of
    /// tracks, per replica) at utilization `u` (percent) in `latency_ms`.
    /// One rank-1 update, O(K²). Non-finite or non-positive-`d` inputs
    /// are ignored (robustness against degenerate observations).
    pub fn observe(&mut self, d: f64, u: f64, latency_ms: f64) {
        if !(d.is_finite() && u.is_finite()) || d <= 0.0 {
            return;
        }
        let _ = self.rls.update(&features(d, u), latency_ms);
    }

    /// Current prediction for `(d, u)`, clamped non-negative like
    /// [`ExecLatencyModel::predict`].
    pub fn predict(&self, d: f64, u: f64) -> f64 {
        self.rls.predict(&features(d, u)).max(0.0)
    }

    /// Exports the refined coefficients as an [`ExecLatencyModel`].
    pub fn model(&self) -> ExecLatencyModel {
        let theta = self.rls.theta();
        let mut raw = [0.0; K];
        for i in 0..K {
            raw[i] = theta[i] * SCALE[i];
        }
        ExecLatencyModel::from_coefficients([raw[0], raw[1], raw[2]], [raw[3], raw[4], raw[5]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(d: f64, u: f64) -> f64 {
        (2e-5 * u * u + 1e-3 * u + 0.02) * d * d + (1e-4 * u * u + 0.04 * u + 1.2) * d
    }

    fn wrong_prior() -> ExecLatencyModel {
        // A prior that is off by 2x on every coefficient.
        ExecLatencyModel::from_coefficients(
            [4e-5, 2e-3, 0.04],
            [2e-4, 0.08, 2.4],
        )
    }

    #[test]
    fn converges_to_the_true_surface() {
        let mut r = OnlineRefiner::from_model(&wrong_prior(), 1.0, 1e2);
        // Stream a few hundred observations over the operating envelope.
        for step in 0..400 {
            let d = 2.0 + (step % 17) as f64 * 3.0;
            let u = 10.0 + (step % 7) as f64 * 10.0;
            r.observe(d, u, truth(d, u));
        }
        for &(d, u) in &[(10.0, 30.0), (40.0, 60.0), (25.0, 15.0)] {
            let p = r.predict(d, u);
            let t = truth(d, u);
            assert!(
                (p - t).abs() < 0.02 * t,
                "refined predict({d},{u}) = {p}, truth {t}"
            );
        }
        assert_eq!(r.updates(), 400);
    }

    #[test]
    fn prior_strength_controls_early_movement() {
        let weak = OnlineRefiner::from_model(&wrong_prior(), 1.0, 1.0);
        let strong = OnlineRefiner::from_model(&wrong_prior(), 1.0, 1e9);
        let mut weak = weak;
        let mut strong = strong;
        let (d, u) = (20.0, 40.0);
        weak.observe(d, u, truth(d, u));
        strong.observe(d, u, truth(d, u));
        let prior_pred = wrong_prior().predict(d, u);
        let t = truth(d, u);
        let weak_moved = (weak.predict(d, u) - prior_pred).abs();
        let strong_moved = (strong.predict(d, u) - prior_pred).abs();
        assert!(weak_moved > strong_moved, "{weak_moved} vs {strong_moved}");
        assert!(weak_moved > 0.1 * (t - prior_pred).abs());
    }

    #[test]
    fn forgetting_tracks_drift() {
        // The true surface doubles mid-stream; with forgetting the refiner
        // follows, and recent-truth error ends far below stale-truth error.
        let mut r = OnlineRefiner::from_model(&wrong_prior(), 0.95, 1e2);
        let drifted = |d: f64, u: f64| 2.0 * truth(d, u);
        for step in 0..300 {
            let d = 2.0 + (step % 13) as f64 * 4.0;
            let u = 10.0 + (step % 6) as f64 * 12.0;
            r.observe(d, u, truth(d, u));
        }
        for step in 0..300 {
            let d = 2.0 + (step % 13) as f64 * 4.0;
            let u = 10.0 + (step % 6) as f64 * 12.0;
            r.observe(d, u, drifted(d, u));
        }
        let (d, u) = (30.0, 40.0);
        let p = r.predict(d, u);
        let err_new = (p - drifted(d, u)).abs();
        let err_old = (p - truth(d, u)).abs();
        assert!(
            err_new < 0.1 * err_old,
            "should track the drifted surface: new-err {err_new}, old-err {err_old}"
        );
    }

    #[test]
    fn without_forgetting_drift_tracking_is_slower() {
        let run = |lambda: f64| {
            let mut r = OnlineRefiner::from_model(&wrong_prior(), lambda, 1e2);
            for step in 0..200 {
                let d = 2.0 + (step % 13) as f64 * 4.0;
                let u = 10.0 + (step % 6) as f64 * 12.0;
                r.observe(d, u, truth(d, u));
            }
            for step in 0..100 {
                let d = 2.0 + (step % 13) as f64 * 4.0;
                let u = 10.0 + (step % 6) as f64 * 12.0;
                r.observe(d, u, 2.0 * truth(d, u));
            }
            let (d, u) = (30.0, 40.0);
            (r.predict(d, u) - 2.0 * truth(d, u)).abs()
        };
        assert!(run(0.93) < run(1.0), "forgetting should adapt faster");
    }

    #[test]
    fn ignores_degenerate_observations() {
        let mut r = OnlineRefiner::default_tuning(&wrong_prior());
        r.observe(f64::NAN, 10.0, 5.0);
        r.observe(10.0, f64::INFINITY, 5.0);
        r.observe(-3.0, 10.0, 5.0);
        r.observe(0.0, 10.0, 5.0);
        assert_eq!(r.updates(), 0);
    }

    #[test]
    fn exported_model_matches_refiner_predictions() {
        let mut r = OnlineRefiner::from_model(&wrong_prior(), 1.0, 10.0);
        for step in 0..100 {
            let d = 1.0 + step as f64 % 20.0;
            let u = 5.0 + step as f64 % 50.0;
            r.observe(d, u, truth(d, u));
        }
        let m = r.model();
        for &(d, u) in &[(5.0, 20.0), (15.0, 45.0)] {
            assert!((m.predict(d, u) - r.predict(d, u)).abs() < 1e-9);
        }
    }

    #[test]
    fn predictions_are_clamped_non_negative() {
        let m = ExecLatencyModel::from_coefficients([-1.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        let r = OnlineRefiner::from_model(&m, 1.0, 1.0);
        assert_eq!(r.predict(10.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_lambda_rejected() {
        let _ = OnlineRefiner::from_model(&wrong_prior(), 1.5, 1.0);
    }
}
