//! The adaptive resource manager (paper Fig. 1 and §4).
//!
//! [`ResourceManager`] implements the simulator's
//! [`Controller`] interface and runs the
//! paper's two-step loop at every period boundary:
//!
//! 1. **Monitor** (shared by both policies, §4.1): assign individual
//!    deadlines to subtasks and messages with EQF, measure each subtask's
//!    slack from the completed instance's observations, and identify
//!    candidates for replication (slack too low / deadline missed) or
//!    replica shutdown (very high slack, with hysteresis).
//! 2. **Allocate** (policy-specific, §4.2): the predictive algorithm
//!    (Fig. 5) forecasts replica timeliness with the fitted regression
//!    models and adds the least-utilized processors until the forecast
//!    fits; the non-predictive algorithm (Fig. 7) replicates onto every
//!    processor under the utilization threshold. Both share the Fig. 6
//!    shutdown rule. Deadlines are re-assigned after every action, as §4.1
//!    prescribes.

use rtds_sim::control::{ControlAction, ControlContext, Controller, PeriodObservation};
use rtds_sim::ids::{NodeId, SubtaskIdx, TaskId};
use rtds_sim::metrics::{ForecastResidualStat, ResidualKind};
use rtds_sim::sink::EventSink;

use crate::audit::{CandidateForecast, DecisionArm, DecisionRecord};
use crate::config::{ArmConfig, Policy};
use crate::eqf::{assign_deadlines, try_assign_deadlines, DeadlineAssignment};
use crate::monitor::{assess_stage, SlackTracker, StageHealth};
use crate::nonpredictive::{replicate_subtask_incremental, replicate_subtask_nonpredictive, shutdown_a_replica};
use crate::online::OnlineRefiner;
use crate::predictive::{
    replicate_subtask_audited, replicate_subtask_with, ReplicateFailure, ReplicationRequest,
};
use crate::predictor::Predictor;

/// Per-allocation audit scratch: what `allocate` examined, for the
/// decision record. Only filled when a decision sink is attached.
#[derive(Debug, Default)]
struct AllocAudit {
    candidates: Vec<CandidateForecast>,
    out_of_processors: bool,
}

/// Counters describing what the manager has done, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ManagerStats {
    /// Replication decisions taken.
    pub replications: u64,
    /// Replica shutdowns taken.
    pub shutdowns: u64,
    /// Predictive allocations that ran out of processors (Fig. 5 FAILURE).
    pub allocation_failures: u64,
    /// Deadline re-assignments performed.
    pub deadline_reassignments: u64,
    /// Placement repairs after node failures.
    pub repairs: u64,
}

/// The adaptive resource manager for one task.
pub struct ResourceManager {
    cfg: ArmConfig,
    predictor: Predictor,
    /// The task this manager is responsible for.
    task: TaskId,
    deadlines: Option<DeadlineAssignment>,
    tracker: SlackTracker,
    stats: ManagerStats,
    /// Per-stage RLS refiners, present when online refinement is enabled.
    refiners: Option<Vec<OnlineRefiner>>,
    /// Period-boundary invocations seen (for the act_every control
    /// latency).
    invocations: u64,
    /// Decision-audit sink, when the embedder wants every replicate /
    /// shut-down / no-op choice explained. `None` (the default) skips all
    /// audit bookkeeping.
    audit: Option<Box<dyn EventSink<DecisionRecord> + Send>>,
    /// Per-stage Eq. (3) forecast residuals (predictive policy only).
    exec_residuals: Vec<ForecastResidualStat>,
    /// Per-stage Eq. (4) forecast residuals; index j grades stage j's
    /// *inbound* message, so index 0 never accumulates.
    comm_residuals: Vec<ForecastResidualStat>,
}

impl ResourceManager {
    /// Creates a manager for task 0 of the cluster.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ArmConfig, predictor: Predictor) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ARM configuration: {e}");
        }
        let n = predictor.n_stages();
        let refiners = cfg.online_refinement.then(|| {
            (0..n)
                .map(|j| OnlineRefiner::default_tuning(predictor.exec_model(j)))
                .collect()
        });
        ResourceManager {
            cfg,
            predictor,
            task: TaskId(0),
            deadlines: None,
            tracker: SlackTracker::new(n),
            stats: ManagerStats::default(),
            refiners,
            invocations: 0,
            audit: None,
            exec_residuals: (0..n)
                .map(|j| ForecastResidualStat::new(0, j as u32, ResidualKind::Exec))
                .collect(),
            comm_residuals: (0..n)
                .map(|j| ForecastResidualStat::new(0, j as u32, ResidualKind::Comm))
                .collect(),
        }
    }

    /// Attaches a decision-audit sink: every subsequent control cycle
    /// emits one [`DecisionRecord`] per replicable stage it acted on (or
    /// explicitly declined to act on). Pure observation — attaching a
    /// sink never changes any decision.
    pub fn set_decision_sink(&mut self, sink: Box<dyn EventSink<DecisionRecord> + Send>) {
        self.audit = Some(sink);
    }

    /// Builder-style [`ResourceManager::set_decision_sink`].
    pub fn with_decision_sink(mut self, sink: Box<dyn EventSink<DecisionRecord> + Send>) -> Self {
        self.set_decision_sink(sink);
        self
    }

    /// The online refiner of one stage, if refinement is enabled.
    pub fn refiner(&self, stage: usize) -> Option<&OnlineRefiner> {
        self.refiners.as_ref().map(|r| &r[stage])
    }

    /// Targets a different task id.
    pub fn for_task(mut self, task: TaskId) -> Self {
        self.task = task;
        self
    }

    /// Action counters so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The current deadline assignment, once initialized.
    pub fn deadlines(&self) -> Option<&DeadlineAssignment> {
        self.deadlines.as_ref()
    }

    /// (Re-)assigns subtask and message deadlines from the current
    /// conditions: per-replica data shares and mean replica-set
    /// utilizations feed the regression estimates that EQF divides the
    /// end-to-end deadline by.
    fn reassign_deadlines(&mut self, ctx: &ControlContext, placements: &[Vec<NodeId>]) {
        let tracks = ctx.last_tracks[self.task.index()].max(self.cfg.d_init_tracks.max(1));
        let total = ctx.total_tracks().max(tracks);
        let n = self.predictor.n_stages();
        let mean_util = |nodes: &[NodeId]| -> f64 {
            if nodes.is_empty() {
                return self.cfg.u_init_pct;
            }
            // A cold (freshly restarted) node's EWMA is dominated by
            // post-restart zeros; treat its utilization as missing and fall
            // back to the same prior used before the first observation.
            nodes
                .iter()
                .map(|p| {
                    if ctx.cold[p.index()] {
                        self.cfg.u_init_pct
                    } else {
                        ctx.node_util_pct[p.index()]
                    }
                })
                .sum::<f64>()
                / nodes.len() as f64
        };
        let exec: Vec<f64> = (0..n)
            .map(|j| {
                let k = placements[j].len().max(1) as u64;
                let share = tracks.div_ceil(k);
                self.predictor
                    .eex(j, share, mean_util(&placements[j]))
                    .as_millis_f64()
            })
            .collect();
        let comm: Vec<f64> = (0..n.saturating_sub(1))
            .map(|j| {
                let k = placements[j].len().max(placements[j + 1].len()).max(1) as u64;
                let share = tracks.div_ceil(k);
                self.predictor.ecd(j, share, total).as_millis_f64()
            })
            .collect();
        match try_assign_deadlines(&exec, &comm, ctx.deadlines[self.task.index()], self.cfg.eqf) {
            Ok(a) => {
                self.deadlines = Some(a);
                self.stats.deadline_reassignments += 1;
            }
            Err(_) => {
                // Degenerate estimates (e.g. right after a crash wiped the
                // task's observations) must not take down the control
                // plane: keep the previous assignment, or fall back to a
                // uniform split if none exists yet.
                if self.deadlines.is_none() {
                    self.deadlines = Some(assign_deadlines(
                        &vec![1.0; n],
                        &vec![1.0; n.saturating_sub(1)],
                        ctx.deadlines[self.task.index()],
                        self.cfg.eqf,
                    ));
                }
            }
        }
    }

    /// Step 2 for one candidate subtask: returns its new placement. Dead
    /// nodes are masked with a pessimal utilization so neither policy ever
    /// selects them, and results are filtered to alive nodes regardless.
    fn allocate(
        &mut self,
        stage: usize,
        current: &[NodeId],
        obs_tracks: u64,
        ctx: &ControlContext,
        mut audit: Option<&mut AllocAudit>,
    ) -> Vec<NodeId> {
        let utils: Vec<f64> = (0..ctx.n_nodes())
            .map(|i| {
                if !ctx.alive[i] {
                    1e6
                } else if ctx.cold[i] {
                    // Restarted node still warming up: its near-zero EWMA
                    // is a measurement artifact, not spare capacity.
                    self.cfg.u_init_pct
                } else {
                    ctx.node_util_pct[i]
                }
            })
            .collect();
        let ps = match self.cfg.policy {
            Policy::Predictive => {
                let deadlines = self.deadlines.as_ref().expect("deadlines initialized");
                let budget = deadlines.stage_budget(stage);
                let req = ReplicationRequest {
                    current,
                    node_util_pct: &utils,
                    stage,
                    tracks: obs_tracks,
                    total_periodic_tracks: ctx.total_tracks(),
                    budget,
                    slack: budget.mul_f64(self.cfg.monitor.slack_fraction),
                };
                let outcome = match audit.as_deref_mut() {
                    Some(a) => {
                        let mut trail = Vec::new();
                        let r = replicate_subtask_audited(
                            &req,
                            &self.predictor,
                            self.cfg.processor_choice,
                            &mut trail,
                        );
                        a.candidates = trail.into_iter().map(CandidateForecast::from).collect();
                        r
                    }
                    None => {
                        replicate_subtask_with(&req, &self.predictor, self.cfg.processor_choice)
                    }
                };
                match outcome {
                    Ok(ps) => ps,
                    Err(ReplicateFailure::OutOfProcessors { best_effort, .. }) => {
                        // Fig. 5 reports FAILURE once every processor hosts
                        // a replica; by then the pseudocode has already
                        // enlarged PS to all of PR, so the maximal set is
                        // what remains in force.
                        self.stats.allocation_failures += 1;
                        if let Some(a) = audit.as_deref_mut() {
                            a.out_of_processors = true;
                        }
                        best_effort
                    }
                }
            }
            Policy::NonPredictive {
                utilization_threshold_pct,
            } => {
                let ps = replicate_subtask_nonpredictive(current, &utils, utilization_threshold_pct);
                if let Some(a) = audit.as_deref_mut() {
                    a.candidates = heuristic_candidates(current, &utils, &ps);
                }
                ps
            }
            Policy::Incremental => {
                let ps = replicate_subtask_incremental(current, &utils);
                if let Some(a) = audit {
                    a.candidates = heuristic_candidates(current, &utils, &ps);
                }
                ps
            }
        };
        let alive_ps: Vec<NodeId> = ps.into_iter().filter(|n| ctx.alive[n.index()]).collect();
        if alive_ps.is_empty() {
            current.to_vec()
        } else {
            alive_ps
        }
    }

    /// Builds and emits one decision record, if a sink is attached.
    /// `observed_ms` is the latest monitored stage latency (exec +
    /// inbound message), from which observed slack is derived.
    #[allow(clippy::too_many_arguments)] // a record has this many facts
    fn emit_decision(
        &mut self,
        ctx: &ControlContext,
        stage: usize,
        arm: DecisionArm,
        health: Option<StageHealth>,
        observed_ms: Option<f64>,
        alloc: Option<AllocAudit>,
        before: &[NodeId],
        chosen: &[NodeId],
    ) {
        let Some(sink) = self.audit.as_mut() else {
            return;
        };
        let deadlines = self.deadlines.as_ref().expect("deadlines initialized");
        let budget = deadlines.stage_budget(stage);
        let threshold = budget.saturating_sub(budget.mul_f64(self.cfg.monitor.slack_fraction));
        let (candidates, out_of_processors) = alloc
            .map(|a| (a.candidates, a.out_of_processors))
            .unwrap_or_default();
        sink.record(
            ctx.now,
            DecisionRecord {
                task: self.task.0,
                stage: stage as u32,
                policy: self.cfg.policy.name().to_string(),
                arm,
                health,
                observed_slack_ms: observed_ms.map(|o| budget.as_millis_f64() - o),
                budget_ms: budget.as_millis_f64(),
                threshold_ms: threshold.as_millis_f64(),
                candidates,
                before: before.to_vec(),
                chosen: chosen.to_vec(),
                out_of_processors,
            },
        );
    }
}

/// Candidate list for the utilization-heuristic policies, which never
/// forecast: every processor outside the current set was "considered",
/// and acceptance is membership in the chosen set.
fn heuristic_candidates(
    current: &[NodeId],
    utils: &[f64],
    chosen: &[NodeId],
) -> Vec<CandidateForecast> {
    (0..utils.len())
        .map(NodeId::from_index)
        .filter(|n| !current.contains(n))
        .map(|n| CandidateForecast {
            node: n,
            util_pct: utils[n.index()],
            eex_ms: None,
            ecd_ms: None,
            worst_total_ms: None,
            accepted: chosen.contains(&n),
        })
        .collect()
}

/// Manages several tasks by delegating to one [`ResourceManager`] each —
/// the paper's model is a *set* of periodic tasks (§3), each with its own
/// pipeline, deadlines, and replica placements, all drawing on the same
/// processor pool.
pub struct CompositeManager {
    managers: Vec<ResourceManager>,
}

impl CompositeManager {
    /// Builds a composite from per-task managers. Each manager must
    /// already be targeted (`for_task`) at its task.
    pub fn new(managers: Vec<ResourceManager>) -> Self {
        assert!(!managers.is_empty(), "composite needs at least one manager");
        CompositeManager { managers }
    }

    /// Per-task manager stats.
    pub fn stats(&self) -> Vec<ManagerStats> {
        self.managers.iter().map(|m| m.stats()).collect()
    }
}

impl Controller for CompositeManager {
    fn on_period_boundary(
        &mut self,
        completed: &[PeriodObservation],
        ctx: &ControlContext,
    ) -> Vec<ControlAction> {
        self.managers
            .iter_mut()
            .flat_map(|m| m.on_period_boundary(completed, ctx))
            .collect()
    }

    fn name(&self) -> &'static str {
        "composite"
    }

    fn forecast_residuals(&self) -> Vec<ForecastResidualStat> {
        self.managers
            .iter()
            .flat_map(Controller::forecast_residuals)
            .collect()
    }
}

impl Controller for ResourceManager {
    fn on_period_boundary(
        &mut self,
        completed: &[PeriodObservation],
        ctx: &ControlContext,
    ) -> Vec<ControlAction> {
        let t = self.task.index();
        // Own a mutable working copy of this task's placement (the context
        // shares the runtime's placement behind an Arc).
        let mut placements = (*ctx.placements[t]).clone();
        if self.deadlines.is_none() {
            self.reassign_deadlines(ctx, &placements);
        }
        let mut actions = Vec::new();
        let mut changed = false;
        // Repair decisions to audit, gathered outside the placements
        // borrow: (stage, before, chosen).
        let mut repair_records: Vec<(usize, Vec<NodeId>, Vec<NodeId>)> = Vec::new();

        // Survivability repair: drop dead nodes from every replica set; a
        // stage whose whole set died is re-homed on the least-utilized
        // alive node (continued availability, paper §1's motivation).
        for (j, ps) in placements.iter_mut().enumerate() {
            if ps.iter().all(|n| ctx.alive[n.index()]) {
                continue;
            }
            let mut repaired: Vec<NodeId> =
                ps.iter().copied().filter(|n| ctx.alive[n.index()]).collect();
            if repaired.is_empty() {
                match ctx.least_utilized_excluding(&[]) {
                    Some(n) => repaired.push(n),
                    None => continue, // whole cluster dead; nothing to do
                }
            }
            self.stats.repairs += 1;
            let before = std::mem::replace(ps, repaired.clone());
            if self.audit.is_some() {
                repair_records.push((j, before, repaired.clone()));
            }
            actions.push(ControlAction::SetPlacement {
                task: self.task,
                subtask: SubtaskIdx::from_index(j),
                nodes: repaired,
            });
            changed = true;
        }
        for (j, before, chosen) in repair_records {
            self.emit_decision(ctx, j, DecisionArm::Repair, None, None, None, &before, &chosen);
        }

        // Forecast-accuracy telemetry: grade the Eq. (3)/(4) forecasts
        // against what the simulator measured, *before* online refinement
        // absorbs these observations (a refined model must not be graded
        // on data it has already seen).
        if matches!(self.cfg.policy, Policy::Predictive) {
            for obs in completed.iter().filter(|o| o.task == self.task) {
                for st in &obs.stages {
                    let j = st.subtask.index();
                    let share = st.tracks.div_ceil(u64::from(st.replicas.max(1)));
                    let ps = &ctx.placements[t][j];
                    let u = if ps.is_empty() {
                        self.cfg.u_init_pct
                    } else {
                        ps.iter().map(|p| ctx.node_util_pct[p.index()]).sum::<f64>()
                            / ps.len() as f64
                    };
                    let eex = self.predictor.eex(j, share, u).as_millis_f64();
                    self.exec_residuals[j].observe(eex, st.exec_latency.as_millis_f64());
                    if j > 0 {
                        let ecd = self
                            .predictor
                            .ecd(j - 1, share, ctx.total_tracks())
                            .as_millis_f64();
                        self.comm_residuals[j].observe(ecd, st.inbound_msg_delay.as_millis_f64());
                    }
                }
            }
        }

        // Online refinement: absorb every completed stage observation and
        // write the refined Eq. (3) coefficients back into the predictor.
        if let Some(refiners) = self.refiners.as_mut() {
            // Bitmask of stages that absorbed at least one observation:
            // only those models are exported back into the predictor, so
            // an epoch's refit cost scales with what actually completed,
            // not with pipeline length. (Pipelines have a handful of
            // stages; for the hypothetical ≥64-stage case the top bit
            // over-approximates, which merely re-exports an unchanged
            // model.)
            let mut touched: u64 = 0;
            for obs in completed.iter().filter(|o| o.task == self.task) {
                for st in &obs.stages {
                    let j = st.subtask.index();
                    let replicas = st.replicas.max(1) as f64;
                    let d = st.tracks as f64 / replicas / 100.0;
                    let ps = &ctx.placements[t][j];
                    let u = if ps.is_empty() {
                        self.cfg.u_init_pct
                    } else {
                        ps.iter().map(|p| ctx.node_util_pct[p.index()]).sum::<f64>()
                            / ps.len() as f64
                    };
                    refiners[j].observe(d, u, st.exec_latency.as_millis_f64());
                    touched |= 1u64 << j.min(63);
                }
            }
            if touched != 0 {
                for (j, r) in refiners.iter().enumerate() {
                    if touched & (1u64 << j.min(63)) != 0 {
                        self.predictor.set_exec_model(j, r.model());
                    }
                }
            }
        }

        // Feed every completed instance through the monitor in order; act
        // on the health of the most recent one.
        let mut latest_health: Vec<Option<(StageHealth, u64)>> =
            vec![None; self.predictor.n_stages()];
        // Latest observed stage latency (exec + inbound message), ms —
        // the decision record derives observed slack from it.
        let mut latest_obs_ms: Vec<Option<f64>> = vec![None; self.predictor.n_stages()];
        let mut shutdown_ready = vec![false; self.predictor.n_stages()];
        let mut saw_shed = false;
        for obs in completed.iter().filter(|o| o.task == self.task) {
            if obs.stages.is_empty() {
                saw_shed |= obs.missed;
                continue;
            }
            let deadlines = self.deadlines.as_ref().expect("initialized above");
            for st in &obs.stages {
                let j = st.subtask.index();
                if !ctx.replicable[t][j] {
                    continue;
                }
                let health = assess_stage(st, deadlines, &self.cfg.monitor);
                shutdown_ready[j] =
                    self.tracker
                        .observe(j, health, self.cfg.monitor.shutdown_patience);
                latest_health[j] = Some((health, st.tracks));
                latest_obs_ms[j] =
                    Some((st.exec_latency + st.inbound_msg_delay).as_millis_f64());
            }
        }

        self.invocations += 1;
        let act_now = self.invocations.is_multiple_of(u64::from(self.cfg.act_every));
        for j in 0..self.predictor.n_stages() {
            if !act_now {
                break; // between control rounds: monitor only
            }
            if !ctx.replicable[t][j] {
                continue;
            }
            let needs = match latest_health[j] {
                Some((h, _)) => h.needs_replication(),
                // A shed period under overload gives no per-stage data;
                // treat every replicable stage as a candidate so the
                // manager can react at all (both policies equally).
                None => saw_shed,
            };
            let auditing = self.audit.is_some();
            let health = latest_health[j].map(|(h, _)| h);
            if needs {
                let tracks = latest_health[j]
                    .map(|(_, tr)| tr)
                    .unwrap_or(ctx.last_tracks[t]);
                let mut alloc_audit = auditing.then(AllocAudit::default);
                let new = self.allocate(j, &placements[j], tracks, ctx, alloc_audit.as_mut());
                self.emit_decision(
                    ctx,
                    j,
                    DecisionArm::Replicate,
                    health,
                    latest_obs_ms[j],
                    alloc_audit,
                    &placements[j],
                    &new,
                );
                if new != placements[j] {
                    self.stats.replications += 1;
                    placements[j] = new.clone();
                    actions.push(ControlAction::SetPlacement {
                        task: self.task,
                        subtask: SubtaskIdx::from_index(j),
                        nodes: new,
                    });
                    changed = true;
                }
            } else if shutdown_ready[j] && placements[j].len() > 1 {
                let new = shutdown_a_replica(&placements[j]);
                self.emit_decision(
                    ctx,
                    j,
                    DecisionArm::ShutDown,
                    health,
                    latest_obs_ms[j],
                    None,
                    &placements[j],
                    &new,
                );
                self.stats.shutdowns += 1;
                placements[j] = new.clone();
                actions.push(ControlAction::SetPlacement {
                    task: self.task,
                    subtask: SubtaskIdx::from_index(j),
                    nodes: new,
                });
                changed = true;
            } else if auditing {
                // Explicit no-op: the stage was examined on an acting
                // cycle and left alone.
                let before = placements[j].clone();
                self.emit_decision(
                    ctx,
                    j,
                    DecisionArm::NoOp,
                    health,
                    latest_obs_ms[j],
                    None,
                    &before,
                    &before,
                );
            }
        }

        // §4.1: "At each time a resource management action … is taken, the
        // subtask deadlines are re-assigned."
        if changed {
            self.reassign_deadlines(ctx, &placements);
        }
        actions
    }

    fn name(&self) -> &'static str {
        self.cfg.policy.name()
    }

    fn forecast_residuals(&self) -> Vec<ForecastResidualStat> {
        let task = self.task.0;
        self.exec_residuals
            .iter()
            .chain(self.comm_residuals.iter())
            .filter(|s| s.count > 0)
            .map(|s| ForecastResidualStat { task, ..*s })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::analytic_predictor;
    use rtds_dynbench::app::{aaw_task, FILTER_STAGE};
    use rtds_regression::buffer::{BufferDelayModel, CommDelayModel};
    use rtds_sim::control::StageObservation;
    use rtds_sim::time::{SimDuration, SimTime};

    fn predictor() -> Predictor {
        analytic_predictor(
            &aaw_task(),
            CommDelayModel::new(BufferDelayModel::from_slope(0.0005), 100e6),
        )
    }

    fn manager(cfg: ArmConfig) -> ResourceManager {
        ResourceManager::new(cfg, predictor())
    }

    fn ctx(utils: Vec<f64>, placements: Vec<Vec<NodeId>>, tracks: u64) -> ControlContext {
        let task = aaw_task();
        ControlContext {
            now: SimTime::from_secs(5),
            alive: vec![true; utils.len()],
            cold: vec![false; utils.len()],
            node_util_pct: utils,
            replicable: vec![task.stages.iter().map(|s| s.replicable).collect()],
            placements: vec![std::sync::Arc::new(placements)],
            periods: vec![task.period],
            deadlines: vec![task.deadline],
            last_tracks: vec![tracks],
        }
    }

    fn home_placements() -> Vec<Vec<NodeId>> {
        (0..5).map(|i| vec![NodeId(i)]).collect()
    }

    fn obs_with_filter_latency(exec_ms: f64, tracks: u64) -> PeriodObservation {
        let stages = (0..5)
            .map(|j| StageObservation {
                subtask: SubtaskIdx::from_index(j),
                replicas: 1,
                tracks,
                exec_latency: if j == FILTER_STAGE {
                    SimDuration::from_millis_f64(exec_ms)
                } else {
                    SimDuration::from_millis(5)
                },
                inbound_msg_delay: SimDuration::from_millis(2),
                stage_latency: SimDuration::from_millis_f64(exec_ms + 2.0),
            })
            .collect();
        PeriodObservation {
            task: TaskId(0),
            instance: 7,
            released: SimTime::from_secs(4),
            tracks,
            end_to_end: Some(SimDuration::from_millis(500)),
            missed: false,
            stages,
        }
    }

    #[test]
    fn quiet_system_takes_no_action() {
        let mut m = manager(ArmConfig::paper_predictive());
        let c = ctx(vec![10.0; 6], home_placements(), 1_000);
        // Filter latency small vs budget: nominal.
        let obs = obs_with_filter_latency(30.0, 1_000);
        let actions = m.on_period_boundary(&[obs], &c);
        // High-slack stages need `shutdown_patience` periods AND >1 replica;
        // single replicas mean no shutdown either.
        assert!(actions.is_empty(), "{actions:?}");
        assert_eq!(m.stats().replications, 0);
    }

    #[test]
    fn deadline_assignment_initialized_on_first_call() {
        let mut m = manager(ArmConfig::paper_predictive());
        assert!(m.deadlines().is_none());
        let c = ctx(vec![10.0; 6], home_placements(), 1_000);
        m.on_period_boundary(&[], &c);
        let d = m.deadlines().expect("initialized");
        assert_eq!(d.subtask.len(), 5);
        assert_eq!(d.message.len(), 4);
        let sum: f64 = d
            .subtask
            .iter()
            .chain(d.message.iter())
            .map(|x| x.as_millis_f64())
            .sum();
        assert!((sum - 990.0).abs() < 0.5, "classic EQF partitions 990: {sum}");
    }

    #[test]
    fn predictive_replicates_overloaded_filter() {
        let mut m = manager(ArmConfig::paper_predictive());
        let c = ctx(vec![15.0; 6], home_placements(), 14_000);
        m.on_period_boundary(&[], &c); // init deadlines
        // Filter way over its budget.
        let obs = obs_with_filter_latency(900.0, 14_000);
        let actions = m.on_period_boundary(&[obs], &c);
        let filter_action = actions.iter().find_map(|a| match a {
            ControlAction::SetPlacement { subtask, nodes, .. }
                if subtask.index() == FILTER_STAGE =>
            {
                Some(nodes.clone())
            }
            _ => None,
        });
        let nodes = filter_action.expect("filter must be replicated");
        assert!(nodes.len() >= 2, "{nodes:?}");
        assert_eq!(nodes[0], NodeId(FILTER_STAGE as u32), "original first");
        assert!(m.stats().replications >= 1);
        assert!(m.stats().deadline_reassignments >= 2, "reassigned after action");
    }

    #[test]
    fn nonpredictive_grabs_all_idle_processors() {
        let mut m = manager(ArmConfig::paper_nonpredictive());
        let utils = vec![10.0, 30.0, 15.0, 25.0, 5.0, 2.0];
        let c = ctx(utils, home_placements(), 14_000);
        m.on_period_boundary(&[], &c);
        let obs = obs_with_filter_latency(900.0, 14_000);
        let actions = m.on_period_boundary(&[obs], &c);
        let nodes = actions
            .iter()
            .find_map(|a| match a {
                ControlAction::SetPlacement { subtask, nodes, .. }
                    if subtask.index() == FILTER_STAGE =>
                {
                    Some(nodes.clone())
                }
                _ => None,
            })
            .expect("replication action");
        // Nodes under 20 %: 0 (10), 4 (5), 5 (2) join node 2 (original).
        assert_eq!(
            nodes,
            vec![NodeId(2), NodeId(0), NodeId(4), NodeId(5)],
            "every idle node is grabbed"
        );
    }

    #[test]
    fn high_slack_with_patience_shuts_down_a_replica() {
        let mut cfg = ArmConfig::paper_predictive();
        cfg.monitor.shutdown_patience = 2;
        let mut m = manager(cfg);
        let mut placements = home_placements();
        placements[FILTER_STAGE] = vec![NodeId(2), NodeId(5)];
        let c = ctx(vec![10.0; 6], placements, 1_000);
        m.on_period_boundary(&[], &c);
        // Tiny latency = huge slack.
        let obs = obs_with_filter_latency(1.0, 1_000);
        let a1 = m.on_period_boundary(std::slice::from_ref(&obs), &c);
        assert!(a1.is_empty(), "patience not yet met: {a1:?}");
        let a2 = m.on_period_boundary(&[obs], &c);
        let nodes = a2
            .iter()
            .find_map(|a| match a {
                ControlAction::SetPlacement { subtask, nodes, .. }
                    if subtask.index() == FILTER_STAGE =>
                {
                    Some(nodes.clone())
                }
                _ => None,
            })
            .expect("shutdown action on second high-slack period");
        assert_eq!(nodes, vec![NodeId(2)], "last-added replica removed");
        assert_eq!(m.stats().shutdowns, 1);
    }

    #[test]
    fn shed_periods_trigger_replication_as_fallback() {
        let mut m = manager(ArmConfig::paper_predictive());
        let c = ctx(vec![10.0; 6], home_placements(), 16_000);
        m.on_period_boundary(&[], &c);
        let shed = PeriodObservation {
            task: TaskId(0),
            instance: 3,
            released: SimTime::from_secs(3),
            tracks: 16_000,
            end_to_end: None,
            missed: true,
            stages: Vec::new(),
        };
        let actions = m.on_period_boundary(&[shed], &c);
        assert!(
            !actions.is_empty(),
            "overload sheds must still provoke replication"
        );
    }

    #[test]
    fn single_node_cluster_cannot_replicate_but_never_panics() {
        // Only one (busy) node: the predictive allocator runs out of
        // processors immediately and keeps the maximal (= current) set.
        let mut m = manager(ArmConfig::paper_predictive());
        let task = aaw_task();
        let c = ControlContext {
            now: SimTime::from_secs(5),
            alive: vec![true],
            cold: vec![false],
            node_util_pct: vec![60.0],
            replicable: vec![task.stages.iter().map(|s| s.replicable).collect()],
            placements: vec![std::sync::Arc::new((0..5).map(|_| vec![NodeId(0)]).collect())],
            periods: vec![task.period],
            deadlines: vec![task.deadline],
            last_tracks: vec![16_000],
        };
        m.on_period_boundary(&[], &c);
        let obs = obs_with_filter_latency(900.0, 16_000);
        let actions = m.on_period_boundary(&[obs], &c);
        // The only possible "new" placement equals the current one, so no
        // action is emitted and the failure counter ticks.
        assert!(actions.is_empty(), "{actions:?}");
        assert!(m.stats().allocation_failures >= 1);
    }

    #[test]
    fn decision_sink_explains_replication_with_candidates_and_threshold() {
        use rtds_sim::sink::BoundedSink;
        use std::sync::{Arc, Mutex};

        let shared = Arc::new(Mutex::new(BoundedSink::<DecisionRecord>::bounded(64)));
        let mut m = manager(ArmConfig::paper_predictive())
            .with_decision_sink(Box::new(Arc::clone(&shared)));
        let c = ctx(vec![15.0; 6], home_placements(), 14_000);
        m.on_period_boundary(&[], &c); // init deadlines
        let obs = obs_with_filter_latency(900.0, 14_000);
        let actions = m.on_period_boundary(&[obs], &c);
        assert!(!actions.is_empty());

        let sink = shared.lock().unwrap();
        let records: Vec<&DecisionRecord> = sink.events().iter().map(|(_, r)| r).collect();
        // Every replicable stage got a record on each of the two acting
        // cycles (the init cycle audits explicit no-ops).
        let replicable = aaw_task().stages.iter().filter(|s| s.replicable).count();
        assert_eq!(records.len(), 2 * replicable, "{records:?}");
        let filter = records
            .iter()
            .find(|r| r.stage as usize == FILTER_STAGE && r.arm == DecisionArm::Replicate)
            .expect("filter decision");
        assert_eq!(filter.arm, DecisionArm::Replicate);
        assert_eq!(filter.policy, "predictive");
        assert_eq!(filter.health, Some(StageHealth::Missed));
        assert!(!filter.candidates.is_empty(), "candidates must be named");
        assert!(filter.candidates.iter().all(|cf| cf.eex_ms.is_some()));
        assert!(filter.threshold_ms < filter.budget_ms);
        // Observed slack is negative: the stage blew its budget.
        assert!(filter.observed_slack_ms.unwrap() < 0.0);
        assert_eq!(filter.before, vec![NodeId(FILTER_STAGE as u32)]);
        assert!(filter.chosen.len() > filter.before.len());
        // Healthy stages got explicit no-ops.
        assert!(records
            .iter()
            .filter(|r| r.stage as usize != FILTER_STAGE)
            .all(|r| r.arm == DecisionArm::NoOp && r.before == r.chosen));
    }

    #[test]
    fn decision_sink_does_not_change_decisions() {
        use rtds_sim::sink::BoundedSink;
        use std::sync::{Arc, Mutex};

        let run = |audited: bool| {
            let mut m = manager(ArmConfig::paper_predictive());
            if audited {
                m.set_decision_sink(Box::new(Arc::new(Mutex::new(
                    BoundedSink::<DecisionRecord>::bounded(256),
                ))));
            }
            let c = ctx(vec![15.0; 6], home_placements(), 14_000);
            let mut all = m.on_period_boundary(&[], &c);
            for exec_ms in [900.0, 700.0, 1.0, 1.0, 1.0] {
                let obs = obs_with_filter_latency(exec_ms, 14_000);
                all.extend(m.on_period_boundary(&[obs], &c));
            }
            (all, m.stats())
        };
        assert_eq!(run(false), run(true), "audit must be a pure observer");
    }

    #[test]
    fn nonpredictive_decisions_name_candidates_without_forecasts() {
        use rtds_sim::sink::BoundedSink;
        use std::sync::{Arc, Mutex};

        let shared = Arc::new(Mutex::new(BoundedSink::<DecisionRecord>::bounded(64)));
        let mut m = manager(ArmConfig::paper_nonpredictive())
            .with_decision_sink(Box::new(Arc::clone(&shared)));
        let utils = vec![10.0, 30.0, 15.0, 25.0, 5.0, 2.0];
        let c = ctx(utils, home_placements(), 14_000);
        m.on_period_boundary(&[], &c);
        let obs = obs_with_filter_latency(900.0, 14_000);
        m.on_period_boundary(&[obs], &c);

        let sink = shared.lock().unwrap();
        let filter = sink
            .events()
            .iter()
            .map(|(_, r)| r)
            .find(|r| r.stage as usize == FILTER_STAGE && r.arm == DecisionArm::Replicate)
            .expect("filter replication record");
        // Five processors outside the current set were considered …
        assert_eq!(filter.candidates.len(), 5);
        // … none with a forecast (the heuristic never computes one) …
        assert!(filter.candidates.iter().all(|cf| cf.eex_ms.is_none()));
        // … and the accepted ones are exactly those under 20 % utilization.
        for cf in &filter.candidates {
            assert_eq!(cf.accepted, cf.util_pct < 20.0, "{cf:?}");
        }
    }

    #[test]
    fn shutdown_decision_is_recorded() {
        use rtds_sim::sink::BoundedSink;
        use std::sync::{Arc, Mutex};

        let mut cfg = ArmConfig::paper_predictive();
        cfg.monitor.shutdown_patience = 2;
        let shared = Arc::new(Mutex::new(BoundedSink::<DecisionRecord>::bounded(64)));
        let mut m = ResourceManager::new(cfg, predictor())
            .with_decision_sink(Box::new(Arc::clone(&shared)));
        let mut placements = home_placements();
        placements[FILTER_STAGE] = vec![NodeId(2), NodeId(5)];
        let c = ctx(vec![10.0; 6], placements, 1_000);
        m.on_period_boundary(&[], &c);
        let obs = obs_with_filter_latency(1.0, 1_000);
        m.on_period_boundary(std::slice::from_ref(&obs), &c);
        m.on_period_boundary(&[obs], &c);

        let sink = shared.lock().unwrap();
        let shutdown = sink
            .events()
            .iter()
            .map(|(_, r)| r)
            .find(|r| r.arm == DecisionArm::ShutDown)
            .expect("shutdown record");
        assert_eq!(shutdown.stage as usize, FILTER_STAGE);
        assert_eq!(shutdown.health, Some(StageHealth::HighSlack));
        assert_eq!(shutdown.before, vec![NodeId(2), NodeId(5)]);
        assert_eq!(shutdown.chosen, vec![NodeId(2)]);
        // High slack means a comfortably positive observed slack.
        assert!(shutdown.observed_slack_ms.unwrap() > 0.0);
    }

    #[test]
    fn predictive_manager_accumulates_forecast_residuals() {
        let mut m = manager(ArmConfig::paper_predictive());
        let c = ctx(vec![10.0; 6], home_placements(), 1_000);
        m.on_period_boundary(&[], &c);
        assert!(
            Controller::forecast_residuals(&m).is_empty(),
            "no observations yet"
        );
        let obs = obs_with_filter_latency(30.0, 1_000);
        m.on_period_boundary(&[obs], &c);
        let residuals = Controller::forecast_residuals(&m);
        // 5 exec streams + 4 comm streams (stage 0 has no inbound msg).
        assert_eq!(residuals.len(), 9, "{residuals:?}");
        assert!(residuals.iter().all(|r| r.count == 1));
        assert!(residuals.iter().all(|r| r.task == 0));
        let exec: Vec<_> = residuals
            .iter()
            .filter(|r| r.kind == ResidualKind::Exec)
            .collect();
        assert_eq!(exec.len(), 5);
        assert!(
            residuals
                .iter()
                .filter(|r| r.kind == ResidualKind::Comm)
                .all(|r| r.stage > 0),
            "stage 0 never has a comm residual"
        );
        assert!(residuals.iter().all(|r| r.mean_abs_err_ms().is_finite()));
    }

    #[test]
    fn nonpredictive_manager_reports_no_residuals() {
        let mut m = manager(ArmConfig::paper_nonpredictive());
        let c = ctx(vec![10.0; 6], home_placements(), 1_000);
        m.on_period_boundary(&[], &c);
        let obs = obs_with_filter_latency(30.0, 1_000);
        m.on_period_boundary(&[obs], &c);
        assert!(Controller::forecast_residuals(&m).is_empty());
    }

    #[test]
    fn manager_reports_policy_name() {
        assert_eq!(manager(ArmConfig::paper_predictive()).name(), "predictive");
        assert_eq!(
            manager(ArmConfig::paper_nonpredictive()).name(),
            "non-predictive"
        );
    }

    #[test]
    #[should_panic(expected = "invalid ARM configuration")]
    fn invalid_config_panics_at_construction() {
        let mut cfg = ArmConfig::paper_predictive();
        cfg.monitor.slack_fraction = 0.9; // above shutdown threshold
        let _ = manager(cfg);
    }
}
