//! Deadline assignment from end-to-end deadlines (paper §4.1, Eqs. 1–2).
//!
//! The monitor needs an individual deadline per subtask and per message so
//! it can measure slack locally; the paper derives them from the task's
//! end-to-end deadline with "a variant of the equal flexibility (EQF)
//! strategy proposed in \[KG97\]", fed by estimated execution times and
//! communication delays.
//!
//! Two variants are provided:
//!
//! * [`EqfVariant::Classic`] — canonical EQF: every component's budget is
//!   its estimate scaled by the common factor `D / (Σ eex + Σ ecd)`, so
//!   budgets **partition** the end-to-end deadline exactly. This is the
//!   resource manager's default, because the Fig. 5 admission check
//!   compares a *single stage's* predicted delay against *its own* budget
//!   and therefore needs budgets that sum to `D`.
//! * [`EqfVariant::PaperLiteral`] — Eqs. (1)–(2) exactly as printed, where
//!   subtask `i`'s deadline adds to its estimate a share of `D` minus only
//!   the *remaining* (stage `i` onward) work. Later stages receive
//!   progressively looser deadlines that do not partition `D`; shipped for
//!   fidelity and for the ablation bench.

use rtds_sim::time::SimDuration;

/// Which assignment rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum EqfVariant {
    /// Proportional scaling; budgets partition the deadline.
    Classic,
    /// Eqs. (1)–(2) verbatim.
    PaperLiteral,
    /// Kao & Garcia-Molina's *equal slack* (EQS) strategy, the sibling of
    /// EQF in \[KG97\]: total slack `D − (Σ eex + Σ ecd)` is divided
    /// **equally** among components rather than proportionally. Budgets
    /// partition `D` like Classic, but short components get relatively
    /// more headroom. Negative slack (overload) is likewise split
    /// equally, floored at zero per component.
    EqualSlack,
}

/// Per-component deadline budgets for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineAssignment {
    /// Budget of each subtask (`dl(st_j)`), in pipeline order.
    pub subtask: Vec<SimDuration>,
    /// Budget of each inter-subtask message (`dl(m_j)`): entry `j` is the
    /// message from subtask `j` to subtask `j+1` (one fewer than stages;
    /// empty for single-stage tasks).
    pub message: Vec<SimDuration>,
    /// The variant that produced this assignment.
    pub variant: EqfVariant,
}

impl DeadlineAssignment {
    /// Combined budget of stage `j`: its inbound message (if any) plus its
    /// execution — the bound the monitor and Fig. 5 compare against.
    pub fn stage_budget(&self, j: usize) -> SimDuration {
        let msg = if j == 0 {
            SimDuration::ZERO
        } else {
            self.message[j - 1]
        };
        msg + self.subtask[j]
    }
}

/// Assigns deadlines given estimated execution times (`eex`, ms, one per
/// subtask) and estimated communication delays (`ecd`, ms, one per message
/// — `exec.len() - 1` of them), and the end-to-end deadline.
///
/// ```
/// use rtds_arm::eqf::{assign_deadlines, EqfVariant};
/// use rtds_sim::time::SimDuration;
///
/// // Two 10 ms subtasks joined by a 10 ms message, 300 ms end to end:
/// // classic EQF gives each component a third of the deadline.
/// let a = assign_deadlines(&[10.0, 10.0], &[10.0],
///     SimDuration::from_millis(300), EqfVariant::Classic);
/// assert_eq!(a.subtask[0], SimDuration::from_millis(100));
/// assert_eq!(a.message[0], SimDuration::from_millis(100));
/// assert_eq!(a.stage_budget(1), SimDuration::from_millis(200));
/// ```
///
/// # Panics
/// Panics if `exec` is empty, `comm.len() + 1 != exec.len()`, any estimate
/// is negative/non-finite, or the deadline is zero. Callers that may be
/// handed degenerate estimates (e.g. after a node crash wipes a task's
/// observations) should use [`try_assign_deadlines`] and fall back instead.
pub fn assign_deadlines(
    exec_ms: &[f64],
    comm_ms: &[f64],
    deadline: SimDuration,
    variant: EqfVariant,
) -> DeadlineAssignment {
    try_assign_deadlines(exec_ms, comm_ms, deadline, variant).unwrap_or_else(|e| panic!("{e}"))
}

/// Why a deadline assignment could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EqfError {
    /// The execution-estimate slice was empty: zero components would make
    /// every per-component share a division by zero.
    NoSubtasks,
    /// `comm.len() + 1 != exec.len()` — the pipeline shape is inconsistent.
    MessageCountMismatch {
        /// Number of subtask estimates supplied.
        subtasks: usize,
        /// Number of message estimates supplied.
        messages: usize,
    },
    /// The end-to-end deadline was zero.
    ZeroDeadline,
    /// An estimate was negative, NaN, or infinite; budgets derived from it
    /// would be NaN.
    InvalidEstimate,
}

impl std::fmt::Display for EqfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EqfError::NoSubtasks => write!(f, "no subtasks"),
            EqfError::MessageCountMismatch { subtasks, messages } => write!(
                f,
                "need one message between each pair of subtasks \
                 (got {subtasks} subtasks, {messages} messages)"
            ),
            EqfError::ZeroDeadline => write!(f, "zero end-to-end deadline"),
            EqfError::InvalidEstimate => write!(f, "estimates must be finite and >= 0"),
        }
    }
}

impl std::error::Error for EqfError {}

/// Non-panicking form of [`assign_deadlines`]: returns a typed error for
/// degenerate inputs instead of crashing the control plane. The resource
/// managers use this on their recovery paths, where a crashed node can
/// leave a task with no usable estimates.
pub fn try_assign_deadlines(
    exec_ms: &[f64],
    comm_ms: &[f64],
    deadline: SimDuration,
    variant: EqfVariant,
) -> Result<DeadlineAssignment, EqfError> {
    if exec_ms.is_empty() {
        return Err(EqfError::NoSubtasks);
    }
    if comm_ms.len() + 1 != exec_ms.len() {
        return Err(EqfError::MessageCountMismatch {
            subtasks: exec_ms.len(),
            messages: comm_ms.len(),
        });
    }
    if deadline.is_zero() {
        return Err(EqfError::ZeroDeadline);
    }
    if exec_ms.iter().chain(comm_ms).any(|e| !e.is_finite() || *e < 0.0) {
        return Err(EqfError::InvalidEstimate);
    }
    Ok(match variant {
        EqfVariant::Classic => classic(exec_ms, comm_ms, deadline),
        EqfVariant::PaperLiteral => paper_literal(exec_ms, comm_ms, deadline),
        EqfVariant::EqualSlack => equal_slack(exec_ms, comm_ms, deadline),
    })
}

fn equal_slack(exec_ms: &[f64], comm_ms: &[f64], deadline: SimDuration) -> DeadlineAssignment {
    let total: f64 = exec_ms.iter().sum::<f64>() + comm_ms.iter().sum::<f64>();
    let d_ms = deadline.as_millis_f64();
    let n_components = (exec_ms.len() + comm_ms.len()) as f64;
    let share = (d_ms - total) / n_components;
    let budget = |e: f64| SimDuration::from_millis_f64((e + share).max(0.0));
    DeadlineAssignment {
        subtask: exec_ms.iter().map(|&e| budget(e)).collect(),
        message: comm_ms.iter().map(|&c| budget(c)).collect(),
        variant: EqfVariant::EqualSlack,
    }
}

fn classic(exec_ms: &[f64], comm_ms: &[f64], deadline: SimDuration) -> DeadlineAssignment {
    let total: f64 = exec_ms.iter().sum::<f64>() + comm_ms.iter().sum::<f64>();
    let d_ms = deadline.as_millis_f64();
    let n = exec_ms.len();
    if total <= 0.0 {
        // Degenerate: nothing is estimated to take time; split evenly over
        // all components so every budget is positive.
        let comps = (2 * n - 1) as f64;
        let each = SimDuration::from_millis_f64(d_ms / comps);
        return DeadlineAssignment {
            subtask: vec![each; n],
            message: vec![each; n - 1],
            variant: EqfVariant::Classic,
        };
    }
    let ratio = d_ms / total;
    DeadlineAssignment {
        subtask: exec_ms
            .iter()
            .map(|e| SimDuration::from_millis_f64(e * ratio))
            .collect(),
        message: comm_ms
            .iter()
            .map(|c| SimDuration::from_millis_f64(c * ratio))
            .collect(),
        variant: EqfVariant::Classic,
    }
}

/// Eqs. (1)–(2) as printed. For subtask `i` (0-based), with `E_i = Σ_{j≥i}
/// eex_j`, `C_i = Σ_{j>i} ecd_j` (messages *after* subtask i):
///
/// `dl(st_i) = eex_i + (D − E_i − C_i) · eex_i / (E_i + C_i)`
///
/// and symmetrically for messages with the roles of `eex`/`ecd` swapped
/// (message `i`'s remaining set is messages `j ≥ i` and subtasks `j > i`).
fn paper_literal(exec_ms: &[f64], comm_ms: &[f64], deadline: SimDuration) -> DeadlineAssignment {
    let d = deadline.as_millis_f64();
    let n = exec_ms.len();
    let mut subtask = Vec::with_capacity(n);
    for i in 0..n {
        let e_rem: f64 = exec_ms[i..].iter().sum();
        let c_rem: f64 = if i < comm_ms.len() {
            comm_ms[i..].iter().sum()
        } else {
            0.0
        };
        let denom = e_rem + c_rem;
        let dl = if denom <= 0.0 {
            d
        } else {
            exec_ms[i] + (d - denom) * exec_ms[i] / denom
        };
        subtask.push(SimDuration::from_millis_f64(dl.max(0.0)));
    }
    let mut message = Vec::with_capacity(comm_ms.len());
    for i in 0..comm_ms.len() {
        let c_rem: f64 = comm_ms[i..].iter().sum();
        let e_rem: f64 = exec_ms[i + 1..].iter().sum();
        let denom = c_rem + e_rem;
        let dl = if denom <= 0.0 {
            d
        } else {
            comm_ms[i] + (d - denom) * comm_ms[i] / denom
        };
        message.push(SimDuration::from_millis_f64(dl.max(0.0)));
    }
    DeadlineAssignment {
        subtask,
        message,
        variant: EqfVariant::PaperLiteral,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    #[test]
    fn classic_budgets_partition_the_deadline() {
        let a = assign_deadlines(
            &[10.0, 30.0, 20.0],
            &[5.0, 15.0],
            ms(990.0),
            EqfVariant::Classic,
        );
        let total: f64 = a
            .subtask
            .iter()
            .chain(a.message.iter())
            .map(|d| d.as_millis_f64())
            .sum();
        assert!((total - 990.0).abs() < 0.01, "sum {total}");
        // Proportionality: subtask 1 (30 ms of 80 total) gets 3/8 of D.
        assert!((a.subtask[1].as_millis_f64() - 990.0 * 30.0 / 80.0).abs() < 0.01);
    }

    #[test]
    fn classic_equal_estimates_get_equal_budgets() {
        let a = assign_deadlines(&[10.0, 10.0], &[10.0], ms(300.0), EqfVariant::Classic);
        assert_eq!(a.subtask[0], a.subtask[1]);
        assert_eq!(a.subtask[0], a.message[0]);
        assert_eq!(a.subtask[0], ms(100.0));
    }

    #[test]
    fn classic_overload_shrinks_budgets_below_estimates() {
        // Total work 2000 ms > deadline 990 ms: budgets scale down.
        let a = assign_deadlines(&[1000.0, 1000.0], &[0.0], ms(990.0), EqfVariant::Classic);
        assert!(a.subtask[0] < ms(1000.0));
        assert!((a.subtask[0].as_millis_f64() - 495.0).abs() < 0.01);
    }

    #[test]
    fn classic_degenerate_zero_estimates_split_evenly() {
        let a = assign_deadlines(&[0.0, 0.0], &[0.0], ms(900.0), EqfVariant::Classic);
        assert_eq!(a.subtask[0], ms(300.0));
        assert_eq!(a.message[0], ms(300.0));
    }

    #[test]
    fn single_stage_task_gets_whole_deadline() {
        let a = assign_deadlines(&[50.0], &[], ms(990.0), EqfVariant::Classic);
        assert_eq!(a.subtask.len(), 1);
        assert!(a.message.is_empty());
        assert_eq!(a.subtask[0], ms(990.0));
        assert_eq!(a.stage_budget(0), ms(990.0));
    }

    #[test]
    fn stage_budget_combines_message_and_execution() {
        let a = assign_deadlines(&[10.0, 10.0], &[20.0], ms(400.0), EqfVariant::Classic);
        assert_eq!(a.stage_budget(0), ms(100.0));
        assert_eq!(a.stage_budget(1), ms(300.0)); // 200 msg + 100 exec
    }

    #[test]
    fn paper_literal_matches_hand_computation() {
        // Worked example from the module docs: e = [1, 3], no messages
        // between? Eq needs one message; use c = [0].
        let a = assign_deadlines(&[1.0, 3.0], &[0.0], ms(8.0), EqfVariant::PaperLiteral);
        // i=0: E=4, C=0: dl = 1 + (8-4)*1/4 = 2.
        assert!((a.subtask[0].as_millis_f64() - 2.0).abs() < 1e-9);
        // i=1: E=3, C=0: dl = 3 + (8-3)*3/3 = 8.
        assert!((a.subtask[1].as_millis_f64() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn paper_literal_later_stages_get_looser_budgets_than_classic() {
        let e = [10.0, 10.0, 10.0];
        let c = [5.0, 5.0];
        let lit = assign_deadlines(&e, &c, ms(990.0), EqfVariant::PaperLiteral);
        let cls = assign_deadlines(&e, &c, ms(990.0), EqfVariant::Classic);
        assert!(lit.subtask[2] > cls.subtask[2]);
        let lit_total: f64 = lit
            .subtask
            .iter()
            .chain(lit.message.iter())
            .map(|d| d.as_millis_f64())
            .sum();
        assert!(lit_total > 990.0, "literal variant over-allocates: {lit_total}");
    }

    #[test]
    fn paper_literal_messages_assigned_symmetrically() {
        let a = assign_deadlines(&[10.0, 10.0], &[10.0], ms(300.0), EqfVariant::PaperLiteral);
        // Message 0: C_rem = 10, E_rem = 10 -> dl = 10 + (300-20)*10/20 = 150.
        assert!((a.message[0].as_millis_f64() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn equal_slack_divides_slack_evenly() {
        // e = [10, 30], c = [20]; D = 120: slack = 60, share = 20.
        let a = assign_deadlines(&[10.0, 30.0], &[20.0], ms(120.0), EqfVariant::EqualSlack);
        assert!((a.subtask[0].as_millis_f64() - 30.0).abs() < 1e-9);
        assert!((a.subtask[1].as_millis_f64() - 50.0).abs() < 1e-9);
        assert!((a.message[0].as_millis_f64() - 40.0).abs() < 1e-9);
        // Partitions D exactly.
        let sum: f64 = a.subtask.iter().chain(a.message.iter())
            .map(|d| d.as_millis_f64()).sum();
        assert!((sum - 120.0).abs() < 1e-6);
    }

    #[test]
    fn equal_slack_gives_short_components_relatively_more_headroom() {
        let eqs = assign_deadlines(&[5.0, 50.0], &[0.0], ms(165.0), EqfVariant::EqualSlack);
        let eqf = assign_deadlines(&[5.0, 50.0], &[0.0], ms(165.0), EqfVariant::Classic);
        // EQS: short stage gets 5 + ~36.7; EQF: 5 * 3 = 15.
        assert!(eqs.subtask[0] > eqf.subtask[0]);
        assert!(eqs.subtask[1] < eqf.subtask[1]);
    }

    #[test]
    fn equal_slack_overload_floors_at_zero() {
        // Work 300 > D 120: slack = -180, share = -60; the 10-ms stage
        // floors at zero rather than going negative.
        let a = assign_deadlines(&[10.0, 290.0], &[0.0], ms(120.0), EqfVariant::EqualSlack);
        assert_eq!(a.subtask[0], ms(0.0));
        assert!((a.subtask[1].as_millis_f64() - 230.0).abs() < 1e-9);
    }

    #[test]
    fn budgets_are_monotone_in_estimates() {
        let a = assign_deadlines(&[5.0, 50.0], &[1.0], ms(990.0), EqfVariant::Classic);
        assert!(a.subtask[1] > a.subtask[0]);
        assert!(a.subtask[0] > a.message[0]);
    }

    #[test]
    #[should_panic(expected = "one message between each pair")]
    fn mismatched_message_count_panics() {
        let _ = assign_deadlines(&[1.0, 1.0], &[], ms(100.0), EqfVariant::Classic);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_estimates_panic() {
        let _ = assign_deadlines(&[-1.0], &[], ms(100.0), EqfVariant::Classic);
    }

    #[test]
    fn try_assign_reports_each_degenerate_input() {
        let t = |e: &[f64], c: &[f64], d: f64| {
            try_assign_deadlines(e, c, ms(d), EqfVariant::Classic)
        };
        assert_eq!(t(&[], &[], 100.0), Err(EqfError::NoSubtasks));
        assert_eq!(
            t(&[1.0, 1.0], &[], 100.0),
            Err(EqfError::MessageCountMismatch { subtasks: 2, messages: 0 })
        );
        assert_eq!(t(&[1.0], &[], 0.0), Err(EqfError::ZeroDeadline));
        assert_eq!(t(&[f64::NAN], &[], 100.0), Err(EqfError::InvalidEstimate));
        assert_eq!(t(&[1.0], &[], 100.0).map(|a| a.subtask[0]), Ok(ms(100.0)));
    }

    #[test]
    fn try_assign_matches_panicking_form_on_valid_input() {
        for variant in [EqfVariant::Classic, EqfVariant::PaperLiteral, EqfVariant::EqualSlack] {
            let e = [10.0, 30.0, 20.0];
            let c = [5.0, 15.0];
            assert_eq!(
                try_assign_deadlines(&e, &c, ms(990.0), variant).unwrap(),
                assign_deadlines(&e, &c, ms(990.0), variant)
            );
        }
    }

    #[test]
    fn eqf_error_messages_name_the_problem() {
        assert_eq!(EqfError::NoSubtasks.to_string(), "no subtasks");
        assert!(EqfError::MessageCountMismatch { subtasks: 3, messages: 1 }
            .to_string()
            .contains("3 subtasks, 1 messages"));
        assert_eq!(EqfError::ZeroDeadline.to_string(), "zero end-to-end deadline");
        assert!(EqfError::InvalidEstimate.to_string().contains("finite"));
    }
}
