//! Run-time monitoring and candidate selection (paper §4.1).
//!
//! Both the predictive and the non-predictive algorithm share this step:
//! observe each subtask's latency against its EQF-assigned budget, and
//! classify it. Subtasks "that have slack values lower than the desired
//! value" or that "miss their individual deadlines" become **candidates
//! for replication**; subtasks that "exhibit very high slack values"
//! become candidates for replica **shutdown**.

use rtds_sim::control::StageObservation;
use rtds_sim::time::SimDuration;

use crate::eqf::DeadlineAssignment;

/// Monitoring thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// Minimum slack each subtask must keep, as a fraction of its budget.
    /// The paper sets `sl = 0.2 · dl(st)` — a desired 20 % slack.
    pub slack_fraction: f64,
    /// Slack fraction above which a subtask is considered to have "very
    /// high slack" and its last replica may be shut down.
    pub shutdown_slack_fraction: f64,
    /// Consecutive high-slack periods required before shutting a replica
    /// down (hysteresis against add/remove thrash; 1 = act immediately).
    pub shutdown_patience: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            slack_fraction: 0.2,
            shutdown_slack_fraction: 0.6,
            shutdown_patience: 2,
        }
    }
}

impl MonitorConfig {
    /// Validates the invariants the algorithms rely on.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.slack_fraction) {
            return Err(format!("slack_fraction {} not in [0,1)", self.slack_fraction));
        }
        if !(0.0..1.0).contains(&self.shutdown_slack_fraction) {
            return Err(format!(
                "shutdown_slack_fraction {} not in [0,1)",
                self.shutdown_slack_fraction
            ));
        }
        if self.shutdown_slack_fraction <= self.slack_fraction {
            return Err("shutdown threshold must exceed the replication threshold \
                 or the manager will thrash"
                .into());
        }
        if self.shutdown_patience == 0 {
            return Err("shutdown_patience must be >= 1".into());
        }
        Ok(())
    }
}

/// One stage's health, as judged against its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum StageHealth {
    /// Observed latency exceeded the budget: the individual deadline was
    /// missed.
    Missed,
    /// Met the deadline but with less than the required slack.
    LowSlack,
    /// Comfortably within budget.
    Nominal,
    /// So much slack that resources can be reclaimed.
    HighSlack,
}

impl StageHealth {
    /// True for states that make the stage a replication candidate.
    pub fn needs_replication(self) -> bool {
        matches!(self, StageHealth::Missed | StageHealth::LowSlack)
    }
}

/// Classifies one stage observation against its combined budget (inbound
/// message + execution), per [`DeadlineAssignment::stage_budget`].
pub fn assess_stage(
    obs: &StageObservation,
    deadlines: &DeadlineAssignment,
    cfg: &MonitorConfig,
) -> StageHealth {
    let budget = deadlines.stage_budget(obs.subtask.index());
    let observed = obs.exec_latency + obs.inbound_msg_delay;
    classify(observed, budget, cfg)
}

/// Core classification: slack = budget − observed, compared against the
/// configured fractions of the budget.
pub fn classify(
    observed: SimDuration,
    budget: SimDuration,
    cfg: &MonitorConfig,
) -> StageHealth {
    if observed > budget {
        return StageHealth::Missed;
    }
    let slack = budget - observed;
    let slack_f = if budget.is_zero() {
        0.0
    } else {
        slack.as_millis_f64() / budget.as_millis_f64()
    };
    if slack_f < cfg.slack_fraction {
        StageHealth::LowSlack
    } else if slack_f > cfg.shutdown_slack_fraction {
        StageHealth::HighSlack
    } else {
        StageHealth::Nominal
    }
}

/// Tracks consecutive high-slack observations per stage, implementing the
/// shutdown hysteresis.
#[derive(Debug, Clone, Default)]
pub struct SlackTracker {
    streaks: Vec<u32>,
}

impl SlackTracker {
    /// Creates a tracker for `n_stages` stages.
    pub fn new(n_stages: usize) -> Self {
        SlackTracker {
            streaks: vec![0; n_stages],
        }
    }

    /// Records one observation; returns true if the stage has now been
    /// high-slack for at least `patience` consecutive periods (and resets
    /// the streak so the next shutdown needs a fresh streak).
    pub fn observe(&mut self, stage: usize, health: StageHealth, patience: u32) -> bool {
        if health == StageHealth::HighSlack {
            self.streaks[stage] += 1;
            if self.streaks[stage] >= patience {
                self.streaks[stage] = 0;
                return true;
            }
        } else {
            self.streaks[stage] = 0;
        }
        false
    }

    /// Current streak length of a stage.
    pub fn streak(&self, stage: usize) -> u32 {
        self.streaks[stage]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqf::{assign_deadlines, EqfVariant};
    use rtds_sim::ids::SubtaskIdx;

    fn cfg() -> MonitorConfig {
        MonitorConfig::default()
    }

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    #[test]
    fn default_config_is_paper_faithful_and_valid() {
        let c = cfg();
        assert_eq!(c.slack_fraction, 0.2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_validation_catches_inversions() {
        let bad = MonitorConfig {
            slack_fraction: 0.7,
            shutdown_slack_fraction: 0.6,
            shutdown_patience: 1,
        };
        assert!(bad.validate().is_err());
        let bad2 = MonitorConfig {
            slack_fraction: -0.1,
            ..cfg()
        };
        assert!(bad2.validate().is_err());
        let bad3 = MonitorConfig {
            shutdown_patience: 0,
            ..cfg()
        };
        assert!(bad3.validate().is_err());
    }

    #[test]
    fn classify_covers_all_bands() {
        let b = ms(100.0);
        assert_eq!(classify(ms(120.0), b, &cfg()), StageHealth::Missed);
        assert_eq!(classify(ms(90.0), b, &cfg()), StageHealth::LowSlack);
        assert_eq!(classify(ms(50.0), b, &cfg()), StageHealth::Nominal);
        assert_eq!(classify(ms(10.0), b, &cfg()), StageHealth::HighSlack);
    }

    #[test]
    fn classify_band_edges() {
        let b = ms(100.0);
        // Exactly at budget: met, slack 0 -> low slack, not missed.
        assert_eq!(classify(ms(100.0), b, &cfg()), StageHealth::LowSlack);
        // Exactly 20 % slack is *not* below the threshold.
        assert_eq!(classify(ms(80.0), b, &cfg()), StageHealth::Nominal);
        // Exactly 60 % slack is not above the shutdown threshold.
        assert_eq!(classify(ms(40.0), b, &cfg()), StageHealth::Nominal);
    }

    #[test]
    fn zero_budget_is_always_low_slack_or_missed() {
        assert_eq!(classify(ms(0.0), ms(0.0), &cfg()), StageHealth::LowSlack);
        assert_eq!(classify(ms(1.0), ms(0.0), &cfg()), StageHealth::Missed);
    }

    #[test]
    fn needs_replication_covers_missed_and_low() {
        assert!(StageHealth::Missed.needs_replication());
        assert!(StageHealth::LowSlack.needs_replication());
        assert!(!StageHealth::Nominal.needs_replication());
        assert!(!StageHealth::HighSlack.needs_replication());
    }

    #[test]
    fn assess_uses_combined_message_and_exec_budget() {
        let deadlines = assign_deadlines(
            &[10.0, 10.0],
            &[10.0],
            ms(300.0),
            EqfVariant::Classic,
        );
        // Stage 1 budget = 100 (msg) + 100 (exec) = 200.
        let obs = StageObservation {
            subtask: SubtaskIdx(1),
            replicas: 1,
            tracks: 100,
            exec_latency: ms(120.0),
            inbound_msg_delay: ms(70.0),
            stage_latency: ms(190.0),
        };
        assert_eq!(assess_stage(&obs, &deadlines, &cfg()), StageHealth::LowSlack);
        let ok = StageObservation {
            exec_latency: ms(60.0),
            inbound_msg_delay: ms(40.0),
            ..obs
        };
        assert_eq!(assess_stage(&ok, &deadlines, &cfg()), StageHealth::Nominal);
    }

    #[test]
    fn tracker_requires_consecutive_high_slack() {
        let mut t = SlackTracker::new(2);
        assert!(!t.observe(0, StageHealth::HighSlack, 2));
        assert!(t.observe(0, StageHealth::HighSlack, 2), "second in a row fires");
        assert_eq!(t.streak(0), 0, "streak resets after firing");
        // A nominal period breaks the streak.
        assert!(!t.observe(1, StageHealth::HighSlack, 2));
        assert!(!t.observe(1, StageHealth::Nominal, 2));
        assert!(!t.observe(1, StageHealth::HighSlack, 2));
        assert_eq!(t.streak(1), 1);
    }

    #[test]
    fn patience_one_fires_immediately() {
        let mut t = SlackTracker::new(1);
        assert!(t.observe(0, StageHealth::HighSlack, 1));
    }
}
