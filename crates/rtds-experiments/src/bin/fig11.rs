//! Regenerates the paper's Fig11 (evaluation sweep).
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::eval::fig11(&cli.options)
    });
}
