//! Regenerates every table and figure of the paper's evaluation section
//! in one run; see EXPERIMENTS.md for the recorded outputs.
//!
//! With `--perf`, every simulation is instrumented and an aggregated
//! per-phase profile (plus the process-wide allocation count, measured by
//! the counting global allocator below) is printed at exit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator with an allocation counter so `--perf` can
/// report how many heap allocations the epoch hot path performs. The
/// library crates are `#![forbid(unsafe_code)]`; a global allocator needs
/// `unsafe impl`, so it lives here in the binary.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match rtds_experiments::cli::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cli.perf {
        rtds_experiments::perfmon::enable(Some(allocation_count));
    }
    // The perf aggregate is process-global; start this batch from zero.
    rtds_experiments::perfmon::reset();
    use rtds_experiments::figures::{eval, patterns, profile, tables};
    let o = &cli.options;
    let figs = vec![
        tables::table1(o),
        tables::table2(o),
        tables::table3(o),
        profile::fig2(o),
        profile::fig3(o),
        profile::fig4(o),
        patterns::fig8(o),
        eval::fig9(o),
        eval::fig10(o),
        eval::fig11(o),
        eval::fig12(o),
        eval::fig13a(o, cli.extended),
        eval::fig13b(o, cli.extended),
    ];
    let mut report = String::new();
    for fig in figs {
        println!("{}", fig.text);
        report.push_str(&fig.text);
        report.push('\n');
        if let Err(e) = fig.save_csvs(&o.out_dir) {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
    std::fs::create_dir_all(&o.out_dir).expect("create output dir");
    let report_path = o.out_dir.join("REPORT.txt");
    std::fs::write(&report_path, report).expect("write report");
    if let Some(s) = rtds_experiments::perfmon::summary() {
        println!("{s}");
    }
    match rtds_experiments::export::write_observed_probe(
        cli.trace_out.as_deref(),
        cli.decisions_out.as_deref(),
    ) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write observability exports: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("artifacts in {} (full text: {})", o.out_dir.display(), report_path.display());
}
