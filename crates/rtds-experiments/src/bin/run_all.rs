//! Regenerates every table and figure of the paper's evaluation section
//! in one run; see EXPERIMENTS.md for the recorded outputs.
//!
//! With `--perf`, every simulation is instrumented and an aggregated
//! per-phase profile (plus the process-wide allocation count, measured by
//! the counting global allocator below) is printed at exit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rtds_experiments::cli::RunOptions;

/// Wraps the system allocator with an allocation counter so `--perf` can
/// report how many heap allocations the epoch hot path performs. The
/// library crates are `#![forbid(unsafe_code)]`; a global allocator needs
/// `unsafe impl`, so it lives here in the binary.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let opts = RunOptions::from_env();
    opts.init_perfmon(Some(allocation_count));
    use rtds_experiments::figures::{eval, patterns, profile, tables};
    let o = &opts.options;
    let report = opts.emit_figures([
        tables::table1(o),
        tables::table2(o),
        tables::table3(o),
        profile::fig2(o),
        profile::fig3(o),
        profile::fig4(o),
        patterns::fig8(o),
        eval::fig9(o),
        eval::fig10(o),
        eval::fig11(o),
        eval::fig12(o),
        eval::fig13a(o, opts.extended),
        eval::fig13b(o, opts.extended),
    ]);
    std::fs::create_dir_all(&o.out_dir).expect("create output dir");
    let report_path = o.out_dir.join("REPORT.txt");
    std::fs::write(&report_path, report).expect("write report");
    opts.finish();
    eprintln!("artifacts in {} (full text: {})", o.out_dir.display(), report_path.display());
}
