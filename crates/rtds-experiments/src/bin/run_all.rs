//! Regenerates every table and figure of the paper's evaluation section
//! in one run; see EXPERIMENTS.md for the recorded outputs.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match rtds_experiments::cli::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    use rtds_experiments::figures::{eval, patterns, profile, tables};
    let o = &cli.options;
    let figs = vec![
        tables::table1(o),
        tables::table2(o),
        tables::table3(o),
        profile::fig2(o),
        profile::fig3(o),
        profile::fig4(o),
        patterns::fig8(o),
        eval::fig9(o),
        eval::fig10(o),
        eval::fig11(o),
        eval::fig12(o),
        eval::fig13a(o, cli.extended),
        eval::fig13b(o, cli.extended),
    ];
    let mut report = String::new();
    for fig in figs {
        println!("{}", fig.text);
        report.push_str(&fig.text);
        report.push('\n');
        if let Err(e) = fig.save_csvs(&o.out_dir) {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
    std::fs::create_dir_all(&o.out_dir).expect("create output dir");
    let report_path = o.out_dir.join("REPORT.txt");
    std::fs::write(&report_path, report).expect("write report");
    eprintln!("artifacts in {} (full text: {})", o.out_dir.display(), report_path.display());
}
