//! Reports the quality impact of each DESIGN.md design choice by re-running
//! the triangular evaluation scenario with one knob changed at a time.
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::ablations::ablations(&cli.options)
    });
}
