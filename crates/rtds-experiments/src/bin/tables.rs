//! Regenerates the paper's Tables 1-3 (baseline parameters and fitted
//! regression coefficients).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match rtds_experiments::cli::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    for fig in [
        rtds_experiments::figures::tables::table1(&cli.options),
        rtds_experiments::figures::tables::table2(&cli.options),
        rtds_experiments::figures::tables::table3(&cli.options),
    ] {
        println!("{}", fig.text);
        if let Err(e) = fig.save_csvs(&cli.options.out_dir) {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
}
