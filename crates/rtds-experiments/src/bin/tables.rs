//! Regenerates the paper's Tables 1-3 (baseline parameters and fitted
//! regression coefficients).

use rtds_experiments::cli::RunOptions;
use rtds_experiments::figures::tables;

fn main() {
    let opts = RunOptions::from_env();
    opts.init_perfmon(None);
    opts.emit_figures([
        tables::table1(&opts.options),
        tables::table2(&opts.options),
        tables::table3(&opts.options),
    ]);
    opts.finish();
}
