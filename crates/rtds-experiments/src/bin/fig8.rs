//! Regenerates the paper's Fig. 8 (workload patterns).
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::patterns::fig8(&cli.options)
    });
}
