//! Runs the full profiling campaign (the paper's §4.2.1 measurement step),
//! fits every Eq. (3)/(5) model, and persists the raw samples plus fitted
//! coefficients to `<out>/profile.json` for inspection and reuse.

use rtds_experiments::cli::RunOptions;

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("running the profiling campaign…");
    let data = rtds_experiments::models::run_campaign();
    for (stage, model) in &data.exec_models {
        println!(
            "stage {stage}: a = {:?}, b = {:?}, R2 = {:.4} over {} samples",
            model.a, model.b, model.stats.r2, model.stats.n
        );
    }
    if let Some(b) = data.buffer_model {
        println!(
            "buffer slope k = {:.4} ms/100 tracks (R2 = {:.4})",
            b.k * 100.0,
            b.stats.r2
        );
    }
    std::fs::create_dir_all(&opts.options.out_dir).expect("create output dir");
    let path = opts.options.out_dir.join("profile.json");
    data.save(&path).expect("write profile");
    eprintln!("wrote {}", path.display());
}
