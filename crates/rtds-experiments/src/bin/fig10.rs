//! Regenerates the paper's Fig10 (evaluation sweep).
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::eval::fig10(&cli.options)
    });
}
