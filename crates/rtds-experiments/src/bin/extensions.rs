//! Runs the extension experiments beyond the paper's evaluation:
//! survivability under node failures, multi-task management, online model
//! refinement, scheduler sensitivity, and harsher workload patterns.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match rtds_experiments::cli::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    use rtds_experiments::figures::extensions as ext;
    let o = &cli.options;
    for fig in [
        ext::ext_survivability(o),
        ext::ext_multitask(o),
        ext::ext_online_refinement(o),
        ext::ext_schedulers(o),
        ext::ext_patterns(o),
        ext::ext_control_latency(o),
        ext::ext_seed_sensitivity(o),
        ext::ext_asynchrony(o),
        ext::ext_stage_breakdown(o),
        ext::ext_metric_weights(o),
        ext::ext_forecast_value(o),
        ext::ext_decentralized(o),
    ] {
        println!("{}", fig.text);
        if let Err(e) = fig.save_csvs(&o.out_dir) {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
}
