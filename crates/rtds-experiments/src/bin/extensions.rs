//! Runs the extension experiments beyond the paper's evaluation:
//! survivability under node failures, multi-task management, online model
//! refinement, scheduler sensitivity, and harsher workload patterns.

use rtds_experiments::cli::RunOptions;
use rtds_experiments::figures::extensions as ext;

fn main() {
    let opts = RunOptions::from_env();
    opts.init_perfmon(None);
    let o = &opts.options;
    opts.emit_figures([
        ext::ext_survivability(o),
        ext::ext_multitask(o),
        ext::ext_online_refinement(o),
        ext::ext_schedulers(o),
        ext::ext_patterns(o),
        ext::ext_control_latency(o),
        ext::ext_seed_sensitivity(o),
        ext::ext_asynchrony(o),
        ext::ext_stage_breakdown(o),
        ext::ext_metric_weights(o),
        ext::ext_forecast_value(o),
        ext::ext_decentralized(o),
    ]);
    opts.finish();
}
