//! Regenerates the paper's Fig9 (evaluation sweep).
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::eval::fig9(&cli.options)
    });
}
