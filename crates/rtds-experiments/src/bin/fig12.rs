//! Regenerates the paper's Fig12 (evaluation sweep).
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::eval::fig12(&cli.options)
    });
}
