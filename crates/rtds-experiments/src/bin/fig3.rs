//! Regenerates the paper's Fig3 (profiled latencies and regression fits).
fn main() {
    rtds_experiments::cli::run_figure_main(|cli| {
        rtds_experiments::figures::profile::fig3(&cli.options)
    });
}
