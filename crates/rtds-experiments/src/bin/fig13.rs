//! Regenerates the paper's Fig. 13 (combined metric on both ramps).
//! Pass `--extended` to sweep past the paper's 35-unit axis and observe
//! the ranking fluctuation §5.2 describes.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match rtds_experiments::cli::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    for fig in [
        rtds_experiments::figures::eval::fig13a(&cli.options, cli.extended),
        rtds_experiments::figures::eval::fig13b(&cli.options, cli.extended),
    ] {
        println!("{}", fig.text);
        if let Err(e) = fig.save_csvs(&cli.options.out_dir) {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
}
