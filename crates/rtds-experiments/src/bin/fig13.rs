//! Regenerates the paper's Fig. 13 (combined metric on both ramps).
//! Pass `--extended` to sweep past the paper's 35-unit axis and observe
//! the ranking fluctuation §5.2 describes.

use rtds_experiments::cli::RunOptions;
use rtds_experiments::figures::eval;

fn main() {
    let opts = RunOptions::from_env();
    opts.init_perfmon(None);
    opts.emit_figures([
        eval::fig13a(&opts.options, opts.extended),
        eval::fig13b(&opts.options, opts.extended),
    ]);
    opts.finish();
}
