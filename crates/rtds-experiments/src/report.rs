//! Textual reporting: aligned tables, CSV files, and ASCII charts.
//!
//! Every figure binary renders its data three ways: an aligned console
//! table (the paper's rows), a CSV file under the output directory (for
//! external plotting), and a rough ASCII chart for at-a-glance shape
//! checks.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let joined: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.header);
        for row in &self.rows {
            line(row);
        }
        out
    }

    /// Writes the CSV form to `dir/name.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders as a JSON array of objects keyed by the header row.
    pub fn to_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let obj: serde_json::Map<String, serde_json::Value> = self
                    .header
                    .iter()
                    .zip(row)
                    .map(|(h, c)| {
                        // Numbers stay numbers where they parse.
                        let v = c
                            .parse::<f64>()
                            .map(|n| serde_json::json!(n))
                            .unwrap_or_else(|_| serde_json::json!(c));
                        (h.clone(), v)
                    })
                    .collect();
                serde_json::Value::Object(obj)
            })
            .collect();
        serde_json::to_string_pretty(&rows).expect("tables are always serializable")
    }

    /// Writes the JSON form to `dir/name.json`.
    pub fn write_json(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One named series for an ASCII chart.
pub struct Series<'a> {
    /// Legend label; its first character is the plot glyph.
    pub label: &'a str,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series as a crude ASCII scatter chart, `width`×`height` cells.
/// Overlapping points show the later series' glyph; `*` marks exact
/// collisions of two series.
pub fn ascii_chart(series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart too small");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('?');
        for &(x, y) in &s.points {
            let cx = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = if grid[row][col] == ' ' || grid[row][col] == glyph {
                glyph
            } else {
                '*'
            };
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "y: [{ymin:.2}, {ymax:.2}]  x: [{xmin:.2}, {xmax:.2}]");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for s in series {
        let _ = writeln!(
            out,
            "  {} = {}",
            s.label.chars().next().unwrap_or('?'),
            s.label
        );
    }
    out
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["x", "value"]);
        t.row(vec!["1", "10.5"]);
        t.row(vec!["200", "3"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("x") && lines[0].contains("value"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers line up on the last char.
        assert!(lines[2].ends_with("10.5"));
        assert!(lines[3].ends_with("3"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,note\n"));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("rtds-report-test");
        let mut t = Table::new(vec!["u"]);
        t.row(vec!["1"]);
        let path = t.write_csv(&dir, "probe").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "u\n1\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_keys_rows_by_header_and_parses_numbers() {
        let mut t = Table::new(vec!["policy", "value"]);
        t.row(vec!["predictive", "42.5"]);
        let parsed: Vec<serde_json::Value> = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(parsed[0]["policy"], "predictive");
        assert_eq!(parsed[0]["value"], 42.5);
    }

    #[test]
    fn chart_places_extremes_at_edges() {
        let s = Series {
            label: "p",
            points: vec![(0.0, 0.0), (10.0, 100.0)],
        };
        let c = ascii_chart(&[s], 20, 10);
        let lines: Vec<&str> = c.lines().collect();
        // First grid line (top) holds the max-y point at the right edge.
        assert!(lines[1].trim_end().ends_with('p'));
        // Last grid line holds the min at the left edge.
        assert_eq!(&lines[10][1..2], "p");
    }

    #[test]
    fn chart_marks_collisions() {
        let a = Series {
            label: "alpha",
            points: vec![(1.0, 1.0), (0.0, 0.0), (2.0, 2.0)],
        };
        let b = Series {
            label: "beta",
            points: vec![(1.0, 1.0)],
        };
        let c = ascii_chart(&[a, b], 21, 11);
        assert!(c.contains('*'), "collision glyph:\n{c}");
        assert!(c.contains("a = alpha"));
        assert!(c.contains("b = beta"));
    }

    #[test]
    fn chart_handles_degenerate_ranges() {
        let s = Series {
            label: "x",
            points: vec![(5.0, 7.0)],
        };
        let c = ascii_chart(&[s], 10, 5);
        assert!(c.contains('x'));
        assert!(ascii_chart(&[Series { label: "e", points: vec![] }], 10, 5).contains("no data"));
    }

    #[test]
    fn fmt_f_scales_digits() {
        assert_eq!(fmt_f(123.456), "123.5");
        assert_eq!(fmt_f(12.345), "12.35");
        assert_eq!(fmt_f(0.12345), "0.1235");
    }
}
