//! Minimal argument parsing and run plumbing shared by the figure binaries.
//!
//! Flags: `--quick` (small grids), `--out <dir>` (CSV directory),
//! `--threads <n>`, `--analytic` (skip profile fitting), `--extended`
//! (fig13's longer workload axis). Kept hand-rolled: the dependency
//! policy (DESIGN.md §5) admits no CLI crate and the needs are trivial.
//!
//! Every binary follows the same life cycle, provided here so none of
//! them hand-roll it:
//!
//! 1. [`RunOptions::from_env`] — parse the command line (exit 2 + usage
//!    on a bad flag);
//! 2. [`RunOptions::init_perfmon`] — honor `--perf` and zero the
//!    process-global perf aggregate;
//! 3. [`RunOptions::emit_figures`] — print each figure and write its
//!    CSVs (exit 1 on I/O error);
//! 4. [`RunOptions::finish`] — print the perf summary and write the
//!    `--trace-out` / `--decisions-out` exports.
//!
//! Single-figure binaries collapse all four into [`run_figure_main`].

use std::path::PathBuf;

use crate::figures::{FigureOptions, FigureOutput};

/// Parsed command line plus the shared run plumbing built on it.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Figure options derived from flags.
    pub options: FigureOptions,
    /// `--extended` was passed.
    pub extended: bool,
    /// `--perf` was passed: instrument every simulation and print an
    /// aggregated performance report at exit.
    pub perf: bool,
    /// `--trace-out FILE`: write a Chrome trace-event JSON export of an
    /// observed probe run (see [`crate::export::write_observed_probe`]).
    pub trace_out: Option<PathBuf>,
    /// `--decisions-out FILE`: write the probe run's decision-audit
    /// stream as JSON Lines.
    pub decisions_out: Option<PathBuf>,
}

/// Parses `args` (excluding argv\[0\]).
///
/// # Errors
/// Returns a usage string on unknown or malformed flags.
pub fn parse(args: &[String]) -> Result<RunOptions, String> {
    let mut options = FigureOptions::default();
    let mut extended = false;
    let mut perf = false;
    let mut trace_out = None;
    let mut decisions_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => options.quick = true,
            "--analytic" => options.fitted_models = false,
            "--extended" => extended = true,
            "--perf" => perf = true,
            "--no-bg-ff" => options.bg_fast_path = false,
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                options.out_dir = PathBuf::from(dir);
            }
            "--trace-out" => {
                let f = it.next().ok_or("--trace-out needs a file path")?;
                trace_out = Some(PathBuf::from(f));
            }
            "--decisions-out" => {
                let f = it.next().ok_or("--decisions-out needs a file path")?;
                decisions_out = Some(PathBuf::from(f));
            }
            "--threads" => {
                let n = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                options.threads = n;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(RunOptions { options, extended, perf, trace_out, decisions_out })
}

impl RunOptions {
    /// Parses the process command line, printing the usage string and
    /// exiting with status 2 on a bad flag (the conventional
    /// usage-error exit code).
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match parse(&args) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Honors `--perf` and zeroes the perf aggregate. `alloc_probe`
    /// feeds the report a process-wide allocation count; only `run_all`
    /// has one (a counting global allocator needs `unsafe impl`, which
    /// the library crates forbid).
    ///
    /// The aggregate is process-global, so it is reset unconditionally:
    /// this batch starts from zero rather than folding into whatever a
    /// previous batch left behind.
    pub fn init_perfmon(&self, alloc_probe: Option<fn() -> u64>) {
        if self.perf {
            crate::perfmon::enable(alloc_probe);
        }
        crate::perfmon::reset();
    }

    /// Prints each figure's text to stdout and writes its CSVs under
    /// `--out` (`wrote …` confirmations go to stderr; exit 1 on I/O
    /// error). Returns the concatenated figure text, which `run_all`
    /// persists as `REPORT.txt`.
    pub fn emit_figures(&self, figs: impl IntoIterator<Item = FigureOutput>) -> String {
        let mut report = String::new();
        for fig in figs {
            println!("{}", fig.text);
            report.push_str(&fig.text);
            report.push('\n');
            match fig.save_csvs(&self.options.out_dir) {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("wrote {}", p.display());
                    }
                }
                Err(e) => {
                    eprintln!("failed to write CSVs: {e}");
                    std::process::exit(1);
                }
            }
        }
        report
    }

    /// End-of-run plumbing: prints the aggregated perf summary (if
    /// `--perf` instrumented this run) and writes the `--trace-out` /
    /// `--decisions-out` exports (exit 1 on I/O error; a no-op when
    /// neither flag was passed).
    pub fn finish(&self) {
        if let Some(s) = crate::perfmon::summary() {
            println!("{s}");
        }
        match crate::export::write_observed_probe(
            self.trace_out.as_deref(),
            self.decisions_out.as_deref(),
        ) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write observability exports: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The usage string.
pub fn usage() -> String {
    "usage: <figure-bin> [--quick] [--analytic] [--extended] [--perf] [--no-bg-ff]\n\
     \x20                [--out DIR] [--threads N] [--trace-out FILE] [--decisions-out FILE]\n\
     --quick     small grids / short runs\n\
     --analytic  use closed-form latency models (skip the profiling campaign)\n\
     --extended  extend the workload axis beyond the paper's range (fig13)\n\
     --perf      instrument simulations; print aggregated perf counters at exit\n\
     --no-bg-ff  disable the background-load fast path (byte-identical, slower;\n\
     \x20           A/B verification escape hatch)\n\
     --out DIR   CSV output directory (default: results)\n\
     --threads N sweep parallelism\n\
     --trace-out FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n\
     \x20                    from a fully-observed probe run\n\
     --decisions-out FILE write the probe run's decision audit as JSON Lines"
        .into()
}

/// Standard main-body for a single-figure binary: the full
/// [`RunOptions`] life cycle around one figure function.
pub fn run_figure_main<F>(f: F)
where
    F: FnOnce(&RunOptions) -> FigureOutput,
{
    let opts = RunOptions::from_env();
    opts.init_perfmon(None);
    let fig = f(&opts);
    opts.emit_figures([fig]);
    opts.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn default_parse_is_full_run() {
        let c = parse(&[]).unwrap();
        assert!(!c.options.quick);
        assert!(c.options.fitted_models);
        assert!(!c.extended);
    }

    #[test]
    fn flags_are_recognized() {
        let c = parse(&s(&["--quick", "--analytic", "--extended", "--out", "/tmp/x", "--threads", "3"]))
            .unwrap();
        assert!(c.options.quick);
        assert!(!c.options.fitted_models);
        assert!(c.extended);
        assert_eq!(c.options.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(c.options.threads, 3);
    }

    #[test]
    fn bad_flags_error_with_usage() {
        assert!(parse(&s(&["--bogus"])).unwrap_err().contains("usage"));
        assert!(parse(&s(&["--out"])).is_err());
        assert!(parse(&s(&["--threads", "zero"])).is_err());
        assert!(parse(&s(&["--threads", "0"])).is_err());
        assert!(parse(&s(&["--help"])).is_err());
    }

    #[test]
    fn bg_fast_path_defaults_on_and_no_bg_ff_disables_it() {
        let c = parse(&[]).unwrap();
        assert!(c.options.bg_fast_path);
        let c = parse(&s(&["--no-bg-ff"])).unwrap();
        assert!(!c.options.bg_fast_path);
        assert!(usage().contains("--no-bg-ff"));
    }

    #[test]
    fn observability_flags_parse_and_default_off() {
        let c = parse(&[]).unwrap();
        assert!(c.trace_out.is_none());
        assert!(c.decisions_out.is_none());
        let c = parse(&s(&["--trace-out", "/tmp/t.json", "--decisions-out", "/tmp/d.jsonl"]))
            .unwrap();
        assert_eq!(c.trace_out, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(c.decisions_out, Some(PathBuf::from("/tmp/d.jsonl")));
        assert!(parse(&s(&["--trace-out"])).is_err());
        assert!(parse(&s(&["--decisions-out"])).is_err());
        assert!(usage().contains("--trace-out"));
    }

    #[test]
    fn emit_figures_concatenates_the_report() {
        let opts = parse(&s(&["--out", "/tmp/rtds-cli-test"])).unwrap();
        let fig = FigureOutput {
            id: "figtest",
            title: "test",
            text: "line".into(),
            tables: Vec::new(),
        };
        assert_eq!(opts.emit_figures([fig]), "line\n");
    }
}
