//! Minimal argument parsing shared by the figure binaries.
//!
//! Flags: `--quick` (small grids), `--out <dir>` (CSV directory),
//! `--threads <n>`, `--analytic` (skip profile fitting), `--extended`
//! (fig13's longer workload axis). Kept hand-rolled: the dependency
//! policy (DESIGN.md §5) admits no CLI crate and the needs are trivial.

use std::path::PathBuf;

use crate::figures::FigureOptions;

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Figure options derived from flags.
    pub options: FigureOptions,
    /// `--extended` was passed.
    pub extended: bool,
    /// `--perf` was passed: instrument every simulation and print an
    /// aggregated performance report at exit.
    pub perf: bool,
    /// `--trace-out FILE`: write a Chrome trace-event JSON export of an
    /// observed probe run (see [`crate::export::write_observed_probe`]).
    pub trace_out: Option<PathBuf>,
    /// `--decisions-out FILE`: write the probe run's decision-audit
    /// stream as JSON Lines.
    pub decisions_out: Option<PathBuf>,
}

/// Parses `args` (excluding argv\[0\]).
///
/// # Errors
/// Returns a usage string on unknown or malformed flags.
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut options = FigureOptions::default();
    let mut extended = false;
    let mut perf = false;
    let mut trace_out = None;
    let mut decisions_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => options.quick = true,
            "--analytic" => options.fitted_models = false,
            "--extended" => extended = true,
            "--perf" => perf = true,
            "--no-bg-ff" => options.bg_fast_path = false,
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                options.out_dir = PathBuf::from(dir);
            }
            "--trace-out" => {
                let f = it.next().ok_or("--trace-out needs a file path")?;
                trace_out = Some(PathBuf::from(f));
            }
            "--decisions-out" => {
                let f = it.next().ok_or("--decisions-out needs a file path")?;
                decisions_out = Some(PathBuf::from(f));
            }
            "--threads" => {
                let n = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                options.threads = n;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Cli { options, extended, perf, trace_out, decisions_out })
}

/// The usage string.
pub fn usage() -> String {
    "usage: <figure-bin> [--quick] [--analytic] [--extended] [--perf] [--no-bg-ff]\n\
     \x20                [--out DIR] [--threads N] [--trace-out FILE] [--decisions-out FILE]\n\
     --quick     small grids / short runs\n\
     --analytic  use closed-form latency models (skip the profiling campaign)\n\
     --extended  extend the workload axis beyond the paper's range (fig13)\n\
     --perf      instrument simulations; print aggregated perf counters at exit\n\
     --no-bg-ff  disable the background-load fast path (byte-identical, slower;\n\
     \x20           A/B verification escape hatch)\n\
     --out DIR   CSV output directory (default: results)\n\
     --threads N sweep parallelism\n\
     --trace-out FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n\
     \x20                    from a fully-observed probe run\n\
     --decisions-out FILE write the probe run's decision audit as JSON Lines"
        .into()
}

/// Standard main-body for a figure binary: parse args, run, print, save.
pub fn run_figure_main<F>(f: F)
where
    F: FnOnce(&Cli) -> crate::figures::FigureOutput,
{
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cli.perf {
        crate::perfmon::enable(None);
    }
    // The perf aggregate is process-global; start this batch from zero
    // rather than folding into whatever a previous batch left behind.
    crate::perfmon::reset();
    let fig = f(&cli);
    println!("{}", fig.text);
    if let Some(s) = crate::perfmon::summary() {
        println!("{s}");
    }
    match fig.save_csvs(&cli.options.out_dir) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
    match crate::export::write_observed_probe(
        cli.trace_out.as_deref(),
        cli.decisions_out.as_deref(),
    ) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write observability exports: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn default_parse_is_full_run() {
        let c = parse(&[]).unwrap();
        assert!(!c.options.quick);
        assert!(c.options.fitted_models);
        assert!(!c.extended);
    }

    #[test]
    fn flags_are_recognized() {
        let c = parse(&s(&["--quick", "--analytic", "--extended", "--out", "/tmp/x", "--threads", "3"]))
            .unwrap();
        assert!(c.options.quick);
        assert!(!c.options.fitted_models);
        assert!(c.extended);
        assert_eq!(c.options.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(c.options.threads, 3);
    }

    #[test]
    fn bad_flags_error_with_usage() {
        assert!(parse(&s(&["--bogus"])).unwrap_err().contains("usage"));
        assert!(parse(&s(&["--out"])).is_err());
        assert!(parse(&s(&["--threads", "zero"])).is_err());
        assert!(parse(&s(&["--threads", "0"])).is_err());
        assert!(parse(&s(&["--help"])).is_err());
    }

    #[test]
    fn bg_fast_path_defaults_on_and_no_bg_ff_disables_it() {
        let c = parse(&[]).unwrap();
        assert!(c.options.bg_fast_path);
        let c = parse(&s(&["--no-bg-ff"])).unwrap();
        assert!(!c.options.bg_fast_path);
        assert!(usage().contains("--no-bg-ff"));
    }

    #[test]
    fn observability_flags_parse_and_default_off() {
        let c = parse(&[]).unwrap();
        assert!(c.trace_out.is_none());
        assert!(c.decisions_out.is_none());
        let c = parse(&s(&["--trace-out", "/tmp/t.json", "--decisions-out", "/tmp/d.jsonl"]))
            .unwrap();
        assert_eq!(c.trace_out, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(c.decisions_out, Some(PathBuf::from("/tmp/d.jsonl")));
        assert!(parse(&s(&["--trace-out"])).is_err());
        assert!(parse(&s(&["--decisions-out"])).is_err());
        assert!(usage().contains("--trace-out"));
    }
}
