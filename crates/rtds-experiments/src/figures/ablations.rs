//! Ablations of the design choices DESIGN.md §6 calls out.
//!
//! Each ablation re-runs the triangular evaluation scenario with one knob
//! changed and reports the quality metrics, so the contribution of each
//! choice is visible:
//!
//! * EQF variant — classic (budgets partition the deadline) vs the
//!   paper-literal Eqs. (1)–(2);
//! * required slack `sl` — the paper's 0.2 vs tighter/looser;
//! * shutdown hysteresis (patience) — act-immediately vs patient;
//! * Fig. 5 host choice — least-utilized (paper) vs utilization-blind.

use rtds_arm::config::ArmConfig;
use rtds_arm::eqf::EqfVariant;
use rtds_arm::manager::ResourceManager;
use rtds_arm::metrics::combined_breakdown;
use rtds_arm::predictive::ProcessorChoice;
use rtds_dynbench::app::aaw_task;
use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
use rtds_sim::ids::{LoadGenId, NodeId};
use rtds_sim::load::PoissonLoad;
use rtds_sim::time::SimDuration;
use rtds_workloads::{Pattern, Triangular, WorkloadRange};

use super::{FigureOptions, FigureOutput};
use crate::report::{fmt_f, Table};

fn run_variant(cfg: ArmConfig, opts: &FigureOptions) -> rtds_sim::metrics::RunSummary {
    let n_periods = if opts.quick { 40 } else { 160 };
    let mut cluster = Cluster::new(ClusterConfig::paper_baseline(
        0xAB1A7E,
        SimDuration::from_secs(n_periods),
    ));
    let mut pattern = Triangular::new(WorkloadRange::new(500, 13_000), n_periods / 8);
    cluster.add_task(aaw_task(), Box::new(move |i| pattern.tracks_at(i)));
    for n in 0..6 {
        cluster.add_load(Box::new(PoissonLoad::with_utilization(
            LoadGenId(n),
            NodeId(n),
            0.10,
            SimDuration::from_millis(2),
        )));
    }
    cluster.set_controller(Box::new(ResourceManager::new(cfg, opts.predictor())));
    cluster.run().metrics.summarize(&[2, 4])
}

/// Runs every ablation variant and renders the comparison table.
pub fn ablations(opts: &FigureOptions) -> FigureOutput {
    let mut variants: Vec<(String, ArmConfig)> = Vec::new();
    let base = ArmConfig::paper_predictive();
    variants.push(("baseline (paper predictive)".into(), base));

    let mut v = base;
    v.eqf = EqfVariant::PaperLiteral;
    variants.push(("eqf = paper-literal Eqs.(1)-(2)".into(), v));

    let mut v = base;
    v.eqf = EqfVariant::EqualSlack;
    variants.push(("eqf = equal-slack (KG97 EQS)".into(), v));

    for slack in [0.1f64, 0.4] {
        let mut v = base;
        v.monitor.slack_fraction = slack;
        v.monitor.shutdown_slack_fraction = (slack + 0.4).min(0.9);
        variants.push((format!("slack fraction = {slack}"), v));
    }

    for patience in [1u32, 4] {
        let mut v = base;
        v.monitor.shutdown_patience = patience;
        variants.push((format!("shutdown patience = {patience}"), v));
    }

    for (name, choice) in [
        ("first-available", ProcessorChoice::FirstAvailable),
        ("pseudorandom", ProcessorChoice::Pseudorandom),
    ] {
        let mut v = base;
        v.processor_choice = choice;
        variants.push((format!("host choice = {name}"), v));
    }

    let mut table = Table::new(vec![
        "variant",
        "missed_pct",
        "avg_cpu_pct",
        "avg_net_pct",
        "avg_replicas",
        "placements",
        "combined",
    ]);
    for (name, cfg) in variants {
        let s = run_variant(cfg, opts);
        let b = combined_breakdown(&s, 6);
        table.row(vec![
            name,
            fmt_f(s.missed_deadline_pct),
            fmt_f(s.avg_cpu_util_pct),
            fmt_f(s.avg_net_util_pct),
            fmt_f(s.avg_replicas),
            s.placement_changes.to_string(),
            fmt_f(b.combined),
        ]);
    }
    let text = format!(
        "Ablations of the DESIGN.md design choices (triangular pattern, max 13k tracks)\n\n{}\n",
        table.render()
    );
    FigureOutput {
        id: "ablations",
        title: "Design-choice ablations",
        text,
        tables: vec![("ablations".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_cover_every_design_choice() {
        let f = ablations(&FigureOptions::quick_for_tests("abl"));
        assert_eq!(f.tables[0].1.len(), 9, "baseline + 8 variants");
        assert!(f.text.contains("paper-literal"));
        assert!(f.text.contains("slack fraction"));
        assert!(f.text.contains("host choice"));
    }
}
