//! Per-figure experiment runners.
//!
//! One public function per table/figure in the paper's evaluation section.
//! Each returns a [`FigureOutput`] carrying the rendered console text and
//! the tables that back it, and can persist CSVs for external plotting.
//! The binaries in `src/bin/` are thin wrappers over these functions.

pub mod ablations;
pub mod eval;
pub mod extensions;
pub mod patterns;
pub mod profile;
pub mod tables;

use std::path::{Path, PathBuf};

/// Options shared by every figure runner.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Reduced grids and shorter runs (CI-friendly).
    pub quick: bool,
    /// Where CSV artifacts go.
    pub out_dir: PathBuf,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Use the profile-fitted predictor (slow first call) instead of the
    /// analytic one.
    pub fitted_models: bool,
    /// Background-load fast path (`--no-bg-ff` turns it off). Outputs
    /// are byte-identical either way; off is an A/B escape hatch.
    pub bg_fast_path: bool,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            quick: false,
            out_dir: PathBuf::from("results"),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            fitted_models: true,
            bg_fast_path: true,
        }
    }
}

impl FigureOptions {
    /// Quick options writing into a temp directory (tests).
    pub fn quick_for_tests(tag: &str) -> Self {
        FigureOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("rtds-experiments").join(tag),
            threads: 2,
            fitted_models: false,
            bg_fast_path: true,
        }
    }

    /// The predictor implied by `fitted_models`.
    pub fn predictor(&self) -> rtds_arm::predictor::Predictor {
        if self.fitted_models {
            crate::models::fitted_predictor().clone()
        } else {
            crate::models::quick_predictor()
        }
    }
}

/// A rendered figure: console text plus the named tables that produced it.
pub struct FigureOutput {
    /// Figure id, e.g. `"fig9"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered console text (tables + charts + notes).
    pub text: String,
    /// Named tables for CSV export.
    pub tables: Vec<(String, crate::report::Table)>,
}

impl FigureOutput {
    /// Writes every table as `<id>_<name>.csv` and `.json` under `dir`.
    pub fn save_csvs(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::with_capacity(self.tables.len() * 2);
        for (name, t) in &self.tables {
            let stem = format!("{}_{}", self.id, name);
            out.push(t.write_csv(dir, &stem)?);
            out.push(t.write_json(dir, &stem)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;

    #[test]
    fn figure_output_saves_all_tables() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        let fig = FigureOutput {
            id: "figX",
            title: "test",
            text: String::new(),
            tables: vec![("one".into(), t)],
        };
        let dir = std::env::temp_dir().join("rtds-figout-test");
        let paths = fig.save_csvs(&dir).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with("figX_one.csv"));
        assert!(paths[1].ends_with("figX_one.json"));
        for p in &paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn default_options_use_results_dir() {
        let o = FigureOptions::default();
        assert_eq!(o.out_dir, PathBuf::from("results"));
        assert!(!o.quick);
    }

    #[test]
    fn quick_test_options_use_analytic_models() {
        let o = FigureOptions::quick_for_tests("t");
        assert!(!o.fitted_models);
        let p = o.predictor();
        assert_eq!(p.n_stages(), 5);
    }
}
