//! Tables 1–3: baseline parameters and regression coefficients.

use rtds_dynbench::app::{aaw_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
use rtds_dynbench::paper;
use rtds_regression::model::ExecLatencyModel;

use super::{FigureOptions, FigureOutput};
use crate::report::Table;

/// Table 1: the baseline parameters of the experimental study — ours,
/// which reproduce the paper's.
pub fn table1(_opts: &FigureOptions) -> FigureOutput {
    let task = aaw_task();
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["Number of nodes", "6"]);
    t.row(vec![
        "CPU scheduler at each node",
        "Round-Robin (time slice = 1 ms)",
    ]);
    t.row(vec![
        "Network",
        "Shared Ethernet segment (100 Mbps)",
    ]);
    t.row(vec!["Data item (track) size", "80 bytes"]);
    t.row(vec!["Data arrival period", "1 s"]);
    t.row(vec![
        "Relative end-to-end deadline",
        &format!("{} ms", task.deadline.as_millis_f64()),
    ]);
    t.row(vec!["Number of periodic tasks", "1"]);
    t.row(vec![
        "Number of subtasks per task",
        &task.n_stages().to_string(),
    ]);
    t.row(vec![
        "Number of replicable subtasks per task",
        &task.replicable_stages().len().to_string(),
    ]);
    t.row(vec![
        "CPU utilization threshold (non-predictive)",
        "20 %",
    ]);
    let text = format!("Table 1: Baseline parameters\n\n{}\n", t.render());
    FigureOutput {
        id: "table1",
        title: "Table 1: baseline parameters",
        text,
        tables: vec![("baseline".into(), t)],
    }
}

fn coefficient_rows(t: &mut Table, label: &str, m: &ExecLatencyModel) {
    t.row(vec![
        label.to_string(),
        format!("{:.6e}", m.a[0]),
        format!("{:.6e}", m.a[1]),
        format!("{:.6e}", m.a[2]),
        format!("{:.6e}", m.b[0]),
        format!("{:.6e}", m.b[1]),
        format!("{:.6e}", m.b[2]),
    ]);
}

/// Table 2: Eq. (3) coefficients — the paper's published values (rescaled
/// to percent utilization; see `rtds_dynbench::paper`) next to the values
/// re-fitted from our own profiling campaign.
pub fn table2(opts: &FigureOptions) -> FigureOutput {
    let mut t = Table::new(vec!["subtask / source", "a1", "a2", "a3", "b1", "b2", "b3"]);
    coefficient_rows(&mut t, "3 (Filter), paper", &paper::filter_model());
    coefficient_rows(&mut t, "5 (EvalDecide), paper", &paper::eval_decide_model());

    let mut note = String::new();
    if opts.fitted_models {
        let data = crate::models::run_campaign();
        if let Some(m) = data.exec_models.get(&FILTER_STAGE) {
            coefficient_rows(&mut t, "3 (Filter), re-fitted", m);
            note.push_str(&format!(
                "re-fitted Filter model: R2 = {:.4} over {} samples\n",
                m.stats.r2, m.stats.n
            ));
        }
        if let Some(m) = data.exec_models.get(&EVAL_DECIDE_STAGE) {
            coefficient_rows(&mut t, "5 (EvalDecide), re-fitted", m);
            note.push_str(&format!(
                "re-fitted EvalDecide model: R2 = {:.4} over {} samples\n",
                m.stats.r2, m.stats.n
            ));
        }
    } else {
        note.push_str("(re-fit skipped: analytic models selected)\n");
    }
    let text = format!(
        "Table 2: Coefficients of the execution-latency regression equation\n\n{}\n{note}",
        t.render()
    );
    FigureOutput {
        id: "table2",
        title: "Table 2: execution-latency coefficients",
        text,
        tables: vec![("coefficients".into(), t)],
    }
}

/// Table 3: buffer-delay slope — the paper's `k = 0.7` next to the slope
/// re-fitted from our network profiling.
pub fn table3(opts: &FigureOptions) -> FigureOutput {
    let mut t = Table::new(vec!["source", "k (ms per 100 tracks)", "fit R2"]);
    t.row(vec![
        "paper (Table 3)".to_string(),
        format!("{:.4}", paper::BUFFER_SLOPE_K),
        "-".to_string(),
    ]);
    if opts.fitted_models {
        let data = crate::models::run_campaign();
        if let Some(b) = data.buffer_model {
            t.row(vec![
                "re-fitted".to_string(),
                format!("{:.4}", b.k * 100.0),
                format!("{:.4}", b.stats.r2),
            ]);
        }
    }
    let text = format!(
        "Table 3: Coefficients of the buffer-delay regression equation\n\n{}\n",
        t.render()
    );
    FigureOutput {
        id: "table3",
        title: "Table 3: buffer-delay coefficients",
        text,
        tables: vec![("buffer".into(), t)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let f = table1(&FigureOptions::quick_for_tests("t1"));
        assert_eq!(f.tables[0].1.len(), 10, "ten baseline parameters");
        assert!(f.text.contains("990 ms"));
        assert!(f.text.contains("Round-Robin"));
        assert!(f.text.contains("20 %"));
    }

    #[test]
    fn table2_always_includes_paper_coefficients() {
        let f = table2(&FigureOptions::quick_for_tests("t2"));
        assert!(f.tables[0].1.len() >= 2);
        assert!(f.text.contains("Filter"));
        assert!(f.text.contains("EvalDecide"));
    }

    #[test]
    fn table3_reports_paper_slope() {
        let f = table3(&FigureOptions::quick_for_tests("t3"));
        assert!(f.text.contains("0.7"));
    }
}
