//! Extension experiments beyond the paper's evaluation.
//!
//! The paper's introduction motivates adaptive resource management with
//! properties its evaluation never stresses: survivability under node
//! loss, multiple concurrent missions, a-posteriori refinement of the
//! a-priori models (\[RSYJ97\], its closest related work), and sensitivity
//! to the node OS scheduler. Each experiment here exercises one of those
//! axes with the same metrics as the paper's figures:
//!
//! * [`ext_survivability`] — node failures under each policy;
//! * [`ext_multitask`] — two periodic tasks sharing the cluster, managed
//!   by a [`CompositeManager`];
//! * [`ext_online_refinement`] — a deliberately mis-calibrated predictor,
//!   with and without RLS refinement;
//! * [`ext_schedulers`] — round-robin (paper) vs FIFO vs a coarser slice;
//! * [`ext_patterns`] — the harsher fluctuating patterns (step, burst,
//!   sinusoid, random walk).

use rtds_arm::config::ArmConfig;
use rtds_arm::manager::{CompositeManager, ResourceManager};
use rtds_arm::predictor::Predictor;
use rtds_dynbench::app::{aaw_task, surveillance_task};
use rtds_regression::buffer::{BufferDelayModel, CommDelayModel};
use rtds_regression::model::ExecLatencyModel;
use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
use rtds_sim::ids::{LoadGenId, NodeId, TaskId};
use rtds_sim::load::PoissonLoad;
use rtds_sim::sched::SchedulerKind;
use rtds_sim::time::SimDuration;
use rtds_workloads::{Pattern, Triangular, WorkloadRange};

use super::{FigureOptions, FigureOutput};
use crate::models::LINK_BPS;
use crate::report::{fmt_f, Table};
use crate::scenario::{run_scenario, FaultPlan, PatternSpec, PolicySpec, ScenarioConfig};

fn base_scenario(opts: &FigureOptions, policy: PolicySpec, max: u64) -> ScenarioConfig {
    let n = if opts.quick { 40 } else { 160 };
    ScenarioConfig {
        pattern: PatternSpec::Triangular { half_period: n / 8 },
        policy,
        workload: WorkloadRange::new(500, max),
        n_periods: n,
        ambient_util: 0.10,
        seed: 0xE87,
        scheduler: SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: crate::scenario::ObserveConfig::default(),
        bg_fast_path: opts.bg_fast_path,
    }
}

/// Survivability: a replica-relevant node (p5, the spare) and a home node
/// (p4, EvalDecide) die mid-run; compare policies and the no-management
/// counterfactual.
pub fn ext_survivability(opts: &FigureOptions) -> FigureOutput {
    let predictor = opts.predictor();
    let n = if opts.quick { 40 } else { 160 };
    let mut table = Table::new(vec![
        "policy",
        "failures",
        "missed_pct",
        "avg_replicas",
        "placements",
    ]);
    for policy in [PolicySpec::None, PolicySpec::Predictive, PolicySpec::NonPredictive] {
        for (label, failures) in [
            ("none", vec![]),
            ("p5@1/3, p4@2/3", vec![(5u32, n / 3), (4u32, 2 * n / 3)]),
        ] {
            let mut cfg = base_scenario(opts, policy, 12_000);
            cfg.failures = failures;
            let r = run_scenario(&cfg, &predictor);
            table.row(vec![
                policy.name().to_string(),
                label.to_string(),
                fmt_f(r.summary.missed_deadline_pct),
                fmt_f(r.summary.avg_replicas),
                r.summary.placement_changes.to_string(),
            ]);
        }
    }
    let text = format!(
        "Extension: survivability under node failures (triangular, max 12k tracks)\n\n{}\n\
         Managed policies repair placements and keep the mission alive; the\n\
         unmanaged run cannot outlive the EvalDecide home node.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_survivability",
        title: "Extension: survivability",
        text,
        tables: vec![("survivability".into(), table)],
    }
}

/// Two periodic tasks sharing the cluster, each with its own manager.
pub fn ext_multitask(opts: &FigureOptions) -> FigureOutput {
    let n_periods = if opts.quick { 40 } else { 160 };
    let comm = CommDelayModel::new(BufferDelayModel::from_slope(0.0005), LINK_BPS);
    let mut table = Table::new(vec![
        "configuration",
        "aaw_missed_pct",
        "surv_missed_pct",
        "avg_cpu_pct",
        "avg_net_pct",
    ]);
    for (label, managed) in [("unmanaged", false), ("predictive x2", true)] {
        let mut cluster = Cluster::new(ClusterConfig::paper_baseline(
            0x2A5C,
            SimDuration::from_secs(n_periods),
        ));
        let aaw = aaw_task();
        let surv = surveillance_task(TaskId(1));
        let mut p1 = Triangular::new(WorkloadRange::new(500, 11_000), n_periods / 8);
        // Offset phase: the surveillance load peaks when AAW is quiet.
        let mut p2 = Triangular::new(WorkloadRange::new(500, 9_000), n_periods / 8);
        let half = n_periods / 8;
        cluster.add_task(aaw.clone(), Box::new(move |i| p1.tracks_at(i)));
        cluster.add_task(surv.clone(), Box::new(move |i| p2.tracks_at(i + half)));
        for nd in 0..6 {
            cluster.add_load(Box::new(PoissonLoad::with_utilization(
                LoadGenId(nd),
                NodeId(nd),
                0.08,
                SimDuration::from_millis(2),
            )));
        }
        if managed {
            let m0 = ResourceManager::new(
                ArmConfig::paper_predictive(),
                rtds_arm::predictor::analytic_predictor(&aaw, comm),
            );
            let m1 = ResourceManager::new(
                ArmConfig::paper_predictive(),
                rtds_arm::predictor::analytic_predictor(&surv, comm),
            )
            .for_task(TaskId(1));
            cluster.set_controller(Box::new(CompositeManager::new(vec![m0, m1])));
        }
        let out = cluster.run();
        let split = |task: u64| {
            let recs: Vec<_> = out
                .metrics
                .periods
                .iter()
                .enumerate()
                // Period records interleave tasks in release order; AAW is
                // even slots, surveillance odd (both release each second).
                .filter(|(i, _)| (*i as u64) % 2 == task)
                .map(|(_, p)| p)
                .collect();
            let decided = recs.iter().filter(|p| p.missed.is_some()).count();
            let missed = recs.iter().filter(|p| p.missed == Some(true)).count();
            if decided == 0 {
                0.0
            } else {
                100.0 * missed as f64 / decided as f64
            }
        };
        let cpu = 100.0 * out.metrics.cpu_lifetime_util.iter().sum::<f64>()
            / out.metrics.cpu_lifetime_util.len() as f64;
        table.row(vec![
            label.to_string(),
            fmt_f(split(0)),
            fmt_f(split(1)),
            fmt_f(cpu),
            fmt_f(100.0 * out.metrics.net_lifetime_util),
        ]);
    }
    let text = format!(
        "Extension: two periodic tasks sharing the cluster (phase-offset triangulars)\n\n{}\n",
        table.render()
    );
    FigureOutput {
        id: "ext_multitask",
        title: "Extension: multi-task management",
        text,
        tables: vec![("multitask".into(), table)],
    }
}

/// Scales a predictor's Eq. (3) models by a factor (mis-calibration).
fn miscalibrated(p: &Predictor, factor: f64) -> Predictor {
    let mut out = p.clone();
    for j in 0..p.n_stages() {
        let m = p.exec_model(j);
        out.set_exec_model(
            j,
            ExecLatencyModel::from_coefficients(
                [m.a[0] * factor, m.a[1] * factor, m.a[2] * factor],
                [m.b[0] * factor, m.b[1] * factor, m.b[2] * factor],
            ),
        );
    }
    out
}

/// Online refinement: the predictive manager starts from a 3x
/// under-estimating model; with RLS refinement it recovers, without it
/// it chronically under-replicates.
pub fn ext_online_refinement(opts: &FigureOptions) -> FigureOutput {
    let good = opts.predictor();
    let over = miscalibrated(&good, 3.0);
    let under = miscalibrated(&good, 1.0 / 3.0);
    let mut table = Table::new(vec![
        "predictor",
        "refinement",
        "missed_pct",
        "avg_replicas",
        "combined",
    ]);
    for (plabel, predictor) in [
        ("calibrated", &good),
        ("3x overestimating", &over),
        ("3x underestimating", &under),
    ] {
        for refine in [false, true] {
            let mut cfg = base_scenario(opts, PolicySpec::Predictive, 14_000);
            cfg.online_refinement = refine;
            let r = run_scenario(&cfg, predictor);
            table.row(vec![
                plabel.to_string(),
                if refine { "RLS" } else { "off" }.to_string(),
                fmt_f(r.summary.missed_deadline_pct),
                fmt_f(r.summary.avg_replicas),
                fmt_f(r.breakdown.combined),
            ]);
        }
    }
    let text = format!(
        "Extension: online Eq.(3) refinement (recursive least squares)\n\n{}\n\
         An over-forecasting prior makes Fig. 5 deterministically\n\
         over-replicate; an under-forecasting one stops too early and then\n\
         oscillates on the monitor's feedback. RLS refinement absorbs live\n\
         observations and pulls both back toward calibrated behaviour.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_online",
        title: "Extension: online model refinement",
        text,
        tables: vec![("online".into(), table)],
    }
}

/// Scheduler sensitivity: the paper's 1 ms round-robin vs a coarse 10 ms
/// slice vs FIFO run-to-completion.
pub fn ext_schedulers(opts: &FigureOptions) -> FigureOutput {
    let predictor = opts.predictor();
    let mut table = Table::new(vec![
        "scheduler",
        "missed_pct",
        "avg_replicas",
        "combined",
    ]);
    for (label, sched) in [
        ("round-robin 1ms (paper)", SchedulerKind::RoundRobin { quantum_us: 1_000 }),
        ("round-robin 10ms", SchedulerKind::RoundRobin { quantum_us: 10_000 }),
        ("fifo", SchedulerKind::Fifo),
    ] {
        let mut cfg = base_scenario(opts, PolicySpec::Predictive, 12_000);
        cfg.scheduler = sched;
        let r = run_scenario(&cfg, &predictor);
        table.row(vec![
            label.to_string(),
            fmt_f(r.summary.missed_deadline_pct),
            fmt_f(r.summary.avg_replicas),
            fmt_f(r.breakdown.combined),
        ]);
    }
    let text = format!(
        "Extension: CPU-scheduler sensitivity (predictive policy)\n\n{}\n\
         The Eq.(3) models were profiled under round-robin; other policies\n\
         change the latency-vs-utilization law and stress the forecast.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_schedulers",
        title: "Extension: scheduler sensitivity",
        text,
        tables: vec![("schedulers".into(), table)],
    }
}

/// Harsher fluctuating patterns than the paper's triangle.
pub fn ext_patterns(opts: &FigureOptions) -> FigureOutput {
    let predictor = opts.predictor();
    let n = if opts.quick { 40 } else { 160 };
    let patterns: Vec<(&str, PatternSpec)> = vec![
        ("step", PatternSpec::Step { low: n / 16, high: n / 16 }),
        ("burst", PatternSpec::Burst { every: n / 8, width: n / 32 + 1 }),
        ("sinusoid", PatternSpec::Sinusoid { wavelength: n / 4 }),
        ("random-walk", PatternSpec::RandomWalk { max_step: 900, seed: 7 }),
    ];
    let mut table = Table::new(vec![
        "pattern",
        "policy",
        "missed_pct",
        "avg_replicas",
        "combined",
    ]);
    for (name, pattern) in &patterns {
        for policy in [PolicySpec::Predictive, PolicySpec::NonPredictive] {
            let mut cfg = base_scenario(opts, policy, 13_000);
            cfg.pattern = *pattern;
            let r = run_scenario(&cfg, &predictor);
            table.row(vec![
                name.to_string(),
                policy.name().to_string(),
                fmt_f(r.summary.missed_deadline_pct),
                fmt_f(r.summary.avg_replicas),
                fmt_f(r.breakdown.combined),
            ]);
        }
    }
    let text = format!(
        "Extension: harsher fluctuating workload patterns\n\n{}\n\
         The paper's conclusion (predictive wins under fluctuation) under\n\
         square-wave, burst, sinusoid, and random-walk loads.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_patterns",
        title: "Extension: harsher workload patterns",
        text,
        tables: vec![("patterns".into(), table)],
    }
}

/// Control-latency sensitivity: how missed deadlines grow as the
/// manager's reaction latency increases (EXPERIMENTS.md deviation 1: the
/// paper's middleware reacted more slowly than our idealized per-period
/// loop, which is why its Figs. 9a/11a/12a show nonzero miss rates).
pub fn ext_control_latency(opts: &FigureOptions) -> FigureOutput {
    use rtds_arm::manager::ResourceManager as RM;
    let n = if opts.quick { 40 } else { 160 };
    let mut table = Table::new(vec![
        "act_every (periods)",
        "policy",
        "missed_pct",
        "avg_replicas",
    ]);
    for act_every in [1u32, 2, 3, 5] {
        for (policy, base) in [
            (PolicySpec::Predictive, ArmConfig::paper_predictive()),
            (PolicySpec::NonPredictive, ArmConfig::paper_nonpredictive()),
        ] {
            let mut arm = base;
            arm.act_every = act_every;
            let mut cluster = Cluster::new(ClusterConfig::paper_baseline(
                0xC7A ^ u64::from(act_every),
                SimDuration::from_secs(n),
            ));
            // A square wave: instantaneous min->max jumps punish slow
            // control far harder than the paper's ramps (whose per-period
            // deltas a per-period loop absorbs without misses).
            let phase = (n / 16).max(2);
            let mut pattern = rtds_workloads::Step::new(
                WorkloadRange::new(500, 15_000),
                phase,
                phase,
            );
            cluster.add_task(aaw_task(), Box::new(move |i| pattern.tracks_at(i)));
            for nd in 0..6 {
                cluster.add_load(Box::new(PoissonLoad::with_utilization(
                    LoadGenId(nd),
                    NodeId(nd),
                    0.10,
                    SimDuration::from_millis(2),
                )));
            }
            cluster.set_controller(Box::new(RM::new(arm, opts.predictor())));
            let s = cluster.run().metrics.summarize(&[2, 4]);
            table.row(vec![
                act_every.to_string(),
                policy.name().to_string(),
                fmt_f(s.missed_deadline_pct),
                fmt_f(s.avg_replicas),
            ]);
        }
    }
    let text = format!(
        "Extension: control-latency sensitivity (square wave, max 15k tracks)\n\n{}\n\
         With multi-period reaction latency the paper's Fig. 9a shape\n\
         (nonzero, workload-driven miss rates) emerges.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_control_latency",
        title: "Extension: control latency",
        text,
        tables: vec![("control_latency".into(), table)],
    }
}

/// Seed sensitivity: the paper draws each data point from "a single
/// experiment"; this re-runs representative sweep points under several
/// seeds and reports the spread, quantifying how much of any observed gap
/// is noise.
pub fn ext_seed_sensitivity(opts: &FigureOptions) -> FigureOutput {
    let predictor = opts.predictor();
    let seeds: &[u64] = if opts.quick {
        &[1, 2, 3]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let units: &[u64] = &[20, 30];
    let mut table = Table::new(vec![
        "max_units",
        "policy",
        "combined_mean",
        "combined_sd",
        "min",
        "max",
    ]);
    for &u in units {
        for policy in [PolicySpec::Predictive, PolicySpec::NonPredictive] {
            let vals: Vec<f64> = seeds
                .iter()
                .map(|&s| {
                    let mut cfg = base_scenario(opts, policy, u * 500);
                    cfg.seed = s;
                    run_scenario(&cfg, &predictor).breakdown.combined
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            table.row(vec![
                u.to_string(),
                policy.name().to_string(),
                fmt_f(mean),
                fmt_f(var.sqrt()),
                fmt_f(min),
                fmt_f(max),
            ]);
        }
    }
    let text = format!(
        "Extension: seed sensitivity of the combined metric ({} seeds per point)\n\n{}\n\
         If the predictive-vs-non-predictive gap exceeds a few standard\n\
         deviations, the paper's single-experiment points are trustworthy.\n",
        seeds.len(),
        table.render()
    );
    FigureOutput {
        id: "ext_seeds",
        title: "Extension: seed sensitivity",
        text,
        tables: vec![("seeds".into(), table)],
    }
}

/// Asynchrony stressors: release jitter and clock skew, on vs off.
pub fn ext_asynchrony(opts: &FigureOptions) -> FigureOutput {
    use rtds_sim::clock::ClockConfig;
    let n = if opts.quick { 40 } else { 160 };
    let mut table = Table::new(vec![
        "arrivals",
        "clocks",
        "missed_pct",
        "p95_latency_ms",
        "avg_replicas",
    ]);
    for (alabel, jitter_us) in [("periodic", 0u64), ("jittered <=150ms", 150_000)] {
        for (clabel, clock) in [("perfect", ClockConfig::perfect()), ("LAN skew", ClockConfig::lan_default())] {
            let mut ccfg = ClusterConfig::paper_baseline(0xA57, SimDuration::from_secs(n));
            ccfg.release_jitter_us = jitter_us;
            ccfg.clock = clock;
            let mut cluster = Cluster::new(ccfg);
            let mut pattern = Triangular::new(WorkloadRange::new(500, 13_000), n / 8);
            cluster.add_task(aaw_task(), Box::new(move |i| pattern.tracks_at(i)));
            for nd in 0..6 {
                cluster.add_load(Box::new(PoissonLoad::with_utilization(
                    LoadGenId(nd),
                    NodeId(nd),
                    0.10,
                    SimDuration::from_millis(2),
                )));
            }
            cluster.set_controller(Box::new(ResourceManager::new(
                ArmConfig::paper_predictive(),
                opts.predictor(),
            )));
            let out = cluster.run();
            let s = out.metrics.summarize(&[2, 4]);
            let p95 = out
                .metrics
                .latency_distribution()
                .map(|d| d.p95_ms)
                .unwrap_or(0.0);
            table.row(vec![
                alabel.to_string(),
                clabel.to_string(),
                fmt_f(s.missed_deadline_pct),
                fmt_f(p95),
                fmt_f(s.avg_replicas),
            ]);
        }
    }
    let text = format!(
        "Extension: asynchrony stressors (release jitter, clock skew)\n\n{}\n\
         The algorithms assume only bounded skew and tolerate aperiodic\n\
         arrivals; deadlines are measured from actual arrival.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_asynchrony",
        title: "Extension: asynchrony stressors",
        text,
        tables: vec![("asynchrony".into(), table)],
    }
}

/// Budget breakdown: where the 990 ms end-to-end deadline goes, per
/// stage, at three workload levels (predictive policy).
pub fn ext_stage_breakdown(opts: &FigureOptions) -> FigureOutput {
    let predictor = opts.predictor();
    let task = aaw_task();
    let mut table = Table::new(vec![
        "max_tracks",
        "stage",
        "mean_exec_ms",
        "mean_msg_ms",
    ]);
    for max in [2_000u64, 9_000, 16_000] {
        let cfg = base_scenario(opts, PolicySpec::Predictive, max);
        let r = run_scenario(&cfg, &predictor);
        for (j, (exec, msg)) in r.metrics.mean_stage_breakdown(0).iter().enumerate() {
            table.row(vec![
                max.to_string(),
                format!("{} ({})", j + 1, task.stages[j].name),
                fmt_f(*exec),
                fmt_f(*msg),
            ]);
        }
    }
    let text = format!(
        "Extension: per-stage latency breakdown (triangular, predictive)\n\n{}\n\
         The quadratic subtasks (Filter, EvalDecide) dominate at high load\n\
         until replication flattens them; message delays grow linearly with\n\
         the stream and become the floor replication cannot remove.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_breakdown",
        title: "Extension: stage latency breakdown",
        text,
        tables: vec![("breakdown".into(), table)],
    }
}

/// Metric-weight robustness: does the paper's conclusion (predictive wins
/// under fluctuating load) survive non-equal component weights?
pub fn ext_metric_weights(opts: &FigureOptions) -> FigureOutput {
    use rtds_arm::metrics::{combined_metric_weighted, MetricWeights};
    let predictor = opts.predictor();
    let mut table = Table::new(vec![
        "weighting",
        "predictive",
        "non-predictive",
        "winner",
    ]);
    let mut p_cfg = base_scenario(opts, PolicySpec::Predictive, 14_000);
    let mut n_cfg = base_scenario(opts, PolicySpec::NonPredictive, 14_000);
    p_cfg.n_periods = if opts.quick { 40 } else { 200 };
    n_cfg.n_periods = p_cfg.n_periods;
    let p = run_scenario(&p_cfg, &predictor);
    let n = run_scenario(&n_cfg, &predictor);
    for (label, w) in [
        ("equal (paper)", MetricWeights::paper()),
        ("timeliness-dominant (10x misses)", MetricWeights::timeliness_dominant()),
        ("resource-dominant (5x replicas)", MetricWeights::resource_dominant()),
    ] {
        let pv = combined_metric_weighted(&p.summary, 6, &w);
        let nv = combined_metric_weighted(&n.summary, 6, &w);
        table.row(vec![
            label.to_string(),
            fmt_f(pv),
            fmt_f(nv),
            if pv <= nv { "predictive" } else { "non-predictive" }.to_string(),
        ]);
    }
    let text = format!(
        "Extension: combined-metric weight robustness (triangular, max 14k)\n\n{}\n",
        table.render()
    );
    FigureOutput {
        id: "ext_weights",
        title: "Extension: metric-weight robustness",
        text,
        tables: vec![("weights".into(), table)],
    }
}

/// Forecast value: predictive vs the no-forecast *incremental* baseline
/// (one least-utilized replica per round) vs Fig. 7's all-at-once
/// baseline. If incremental matched predictive, the paper's win would be
/// incrementality, not prediction; the replica-count comparison answers
/// that directly.
pub fn ext_forecast_value(opts: &FigureOptions) -> FigureOutput {
    let predictor = opts.predictor();
    let mut table = Table::new(vec![
        "policy",
        "max_units",
        "missed_pct",
        "avg_replicas",
        "placements",
        "combined",
    ]);
    let n = if opts.quick { 40 } else { 160 };
    for (pat_label, pattern, units_list) in [
        (
            "triangular",
            PatternSpec::Triangular { half_period: n / 8 },
            [22u64, 30],
        ),
        (
            "square-wave",
            PatternSpec::Step { low: n / 16, high: n / 16 },
            [22u64, 30],
        ),
    ] {
        for units in units_list {
            for policy in [
                PolicySpec::Predictive,
                PolicySpec::Incremental,
                PolicySpec::NonPredictive,
            ] {
                let mut cfg = base_scenario(opts, policy, units * 500);
                cfg.pattern = pattern;
                let r = run_scenario(&cfg, &predictor);
                table.row(vec![
                    format!("{pat_label}/{}", policy.name()),
                    units.to_string(),
                    fmt_f(r.summary.missed_deadline_pct),
                    fmt_f(r.summary.avg_replicas),
                    r.summary.placement_changes.to_string(),
                    fmt_f(r.breakdown.combined),
                ]);
            }
        }
    }
    let text = format!(
        "Extension: the value of forecasting (predictive vs no-forecast incremental)\n\n{}\n\
         The incremental baseline shares the predictive algorithm's\n\
         least-utilized, one-at-a-time allocation but not its Eq.(3)/(4)\n\
         forecast; the difference between the two is the forecast's worth.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_forecast_value",
        title: "Extension: forecast value",
        text,
        tables: vec![("forecast_value".into(), table)],
    }
}

/// Decentralization cost: the centralized manager vs independent
/// per-stage agents with increasingly stale utilization state.
pub fn ext_decentralized(opts: &FigureOptions) -> FigureOutput {
    use rtds_arm::decentralized::DecentralizedManager;
    let n = if opts.quick { 40 } else { 160 };
    let mut table = Table::new(vec![
        "manager",
        "missed_pct",
        "avg_replicas",
        "placements",
        "combined",
    ]);
    let run = |controller: Box<dyn rtds_sim::control::Controller>, square: bool| {
        let mut cluster = Cluster::new(ClusterConfig::paper_baseline(
            0xDEC0u64,
            SimDuration::from_secs(n),
        ));
        let workload: Box<dyn FnMut(u64) -> u64 + Send> = if square {
            let mut p = rtds_workloads::Step::new(
                WorkloadRange::new(500, 15_500),
                (n / 16).max(2),
                (n / 16).max(2),
            );
            Box::new(move |i| p.tracks_at(i))
        } else {
            let mut p = Triangular::new(WorkloadRange::new(500, 13_000), n / 8);
            Box::new(move |i| p.tracks_at(i))
        };
        cluster.add_task(aaw_task(), workload);
        for nd in 0..6 {
            cluster.add_load(Box::new(PoissonLoad::with_utilization(
                LoadGenId(nd),
                NodeId(nd),
                0.10,
                SimDuration::from_millis(2),
            )));
        }
        cluster.set_controller(controller);
        let s = cluster.run().metrics.summarize(&[2, 4]);
        (s, rtds_arm::metrics::combined_breakdown(&s, 6).combined)
    };
    for square in [false, true] {
        let pat = if square { "square" } else { "triangular" };
        let (s, c) = run(
            Box::new(ResourceManager::new(
                ArmConfig::paper_predictive(),
                opts.predictor(),
            )),
            square,
        );
        table.row(vec![
            format!("{pat}/centralized (paper)"),
            fmt_f(s.missed_deadline_pct),
            fmt_f(s.avg_replicas),
            s.placement_changes.to_string(),
            fmt_f(c),
        ]);
        for staleness in [0usize, 2, 5] {
            let (s, c) = run(
                Box::new(DecentralizedManager::new(
                    ArmConfig::paper_predictive(),
                    opts.predictor(),
                    staleness,
                )),
                square,
            );
            table.row(vec![
                format!("{pat}/decentralized, staleness {staleness}"),
                fmt_f(s.missed_deadline_pct),
                fmt_f(s.avg_replicas),
                s.placement_changes.to_string(),
                fmt_f(c),
            ]);
        }
    }
    let text = format!(
        "Extension: decentralization (per-stage agents, fixed budgets, stale state)\n\n{}\n\
         Independent agents lose the coordinated per-action EQF\n\
         re-assignment; what that coordination buys — conservatism vs\n\
         resource frugality — is read off the miss/replica columns.\n",
        table.render()
    );
    FigureOutput {
        id: "ext_decentralized",
        title: "Extension: decentralization cost",
        text,
        tables: vec![("decentralized".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(tag: &str) -> FigureOptions {
        FigureOptions::quick_for_tests(tag)
    }

    #[test]
    fn survivability_covers_policy_failure_matrix() {
        let f = ext_survivability(&opts("surv"));
        assert_eq!(f.tables[0].1.len(), 6, "3 policies x 2 failure plans");
    }

    #[test]
    fn multitask_reports_both_tasks() {
        let f = ext_multitask(&opts("multi"));
        assert_eq!(f.tables[0].1.len(), 2);
        assert!(f.text.contains("aaw_missed_pct"));
    }

    #[test]
    fn online_refinement_matrix_is_complete() {
        let f = ext_online_refinement(&opts("online"));
        assert_eq!(f.tables[0].1.len(), 6);
        assert!(f.text.contains("RLS"));
    }

    #[test]
    fn scheduler_comparison_includes_paper_baseline() {
        let f = ext_schedulers(&opts("sched"));
        assert_eq!(f.tables[0].1.len(), 3);
        assert!(f.text.contains("round-robin 1ms (paper)"));
    }

    #[test]
    fn pattern_suite_compares_policies() {
        let f = ext_patterns(&opts("pat"));
        assert_eq!(f.tables[0].1.len(), 8, "4 patterns x 2 policies");
    }

    #[test]
    fn control_latency_sweep_covers_grid() {
        let f = ext_control_latency(&opts("lat"));
        assert_eq!(f.tables[0].1.len(), 8, "4 latencies x 2 policies");
    }

    #[test]
    fn seed_sensitivity_reports_spread() {
        let f = ext_seed_sensitivity(&opts("seeds"));
        assert_eq!(f.tables[0].1.len(), 4, "2 units x 2 policies");
        assert!(f.text.contains("combined_sd"));
    }

    #[test]
    fn asynchrony_matrix_is_complete() {
        let f = ext_asynchrony(&opts("async"));
        assert_eq!(f.tables[0].1.len(), 4, "2 arrival modes x 2 clock modes");
        assert!(f.text.contains("p95_latency_ms"));
    }

    #[test]
    fn stage_breakdown_covers_all_stages_and_loads() {
        let f = ext_stage_breakdown(&opts("breakdown"));
        assert_eq!(f.tables[0].1.len(), 15, "3 loads x 5 stages");
        assert!(f.text.contains("Filter"));
    }

    #[test]
    fn decentralized_comparison_has_four_rows() {
        let f = ext_decentralized(&opts("dec"));
        assert_eq!(f.tables[0].1.len(), 8, "2 patterns x 4 managers");
        assert!(f.text.contains("centralized (paper)"));
    }

    #[test]
    fn forecast_value_compares_three_policies() {
        let f = ext_forecast_value(&opts("fv"));
        assert_eq!(f.tables[0].1.len(), 12, "2 patterns x 2 units x 3 policies");
        assert!(f.text.contains("incremental"));
    }

    #[test]
    fn metric_weights_table_names_a_winner_per_row() {
        let f = ext_metric_weights(&opts("weights"));
        assert_eq!(f.tables[0].1.len(), 3);
        assert!(f.text.contains("timeliness-dominant"));
    }
}
