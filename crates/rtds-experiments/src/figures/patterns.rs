//! Figure 8: the evaluation workload patterns.

use rtds_workloads::{DecreasingRamp, IncreasingRamp, Pattern, Triangular, WorkloadRange};

use super::{FigureOptions, FigureOutput};
use crate::report::{ascii_chart, Series, Table};

/// Fig. 8: renders one cycle of each paper pattern over a shared range.
pub fn fig8(opts: &FigureOptions) -> FigureOutput {
    let n: u64 = if opts.quick { 60 } else { 240 };
    let range = WorkloadRange::new(500, 10_000);
    let half = n / 8;
    let mut patterns: Vec<Box<dyn Pattern>> = vec![
        Box::new(IncreasingRamp::new(range, n - 1)),
        Box::new(DecreasingRamp::new(range, n - 1)),
        Box::new(Triangular::new(range, half)),
    ];

    let mut table = Table::new(vec![
        "period",
        "increasing_ramp",
        "decreasing_ramp",
        "triangular",
    ]);
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    for i in 0..n {
        let vals: Vec<u64> = patterns.iter_mut().map(|p| p.tracks_at(i)).collect();
        table.row(vec![
            i.to_string(),
            vals[0].to_string(),
            vals[1].to_string(),
            vals[2].to_string(),
        ]);
        for (k, &v) in vals.iter().enumerate() {
            series[k].push((i as f64, v as f64));
        }
    }
    let chart = ascii_chart(
        &[
            Series {
                label: "inc-ramp",
                points: series[0].clone(),
            },
            Series {
                label: "dec-ramp",
                points: series[1].clone(),
            },
            Series {
                label: "triangular",
                points: series[2].clone(),
            },
        ],
        72,
        14,
    );
    let text = format!(
        "Figure 8: Workload patterns (min = {}, max = {} tracks, {} periods)\n\n{}\n",
        range.min, range.max, n, chart
    );
    FigureOutput {
        id: "fig8",
        title: "Figure 8: workload patterns",
        text,
        tables: vec![("patterns".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_emits_one_row_per_period() {
        let f = fig8(&FigureOptions::quick_for_tests("fig8"));
        assert_eq!(f.tables[0].1.len(), 60);
        assert!(f.text.contains("Workload patterns"));
        assert!(f.text.contains("triangular"));
    }
}
