//! Figures 2–4: profiled execution latencies and their regression fits.
//!
//! * Fig. 2 — Filter latency vs data size at 80 % CPU utilization, showing
//!   the measured series `y`, the per-utilization quadratic fit `Y`, and
//!   the combined Eq. (3) surface `Y−` evaluated at that utilization.
//! * Fig. 3 — the same for EvalDecide at 60 %.
//! * Fig. 4 — the full Filter latency surface over (utilization × data
//!   size).

use rtds_dynbench::app::{aaw_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
use rtds_dynbench::profile::{profile_execution, ProfileConfig};
use rtds_regression::model::ExecLatencyModel;
use rtds_regression::polyfit::Polynomial;

use super::{FigureOptions, FigureOutput};
use crate::report::{ascii_chart, fmt_f, Series, Table};

fn profile_grid(opts: &FigureOptions, target_u: f64) -> ProfileConfig {
    let mut utils = if opts.quick {
        vec![10.0, 40.0, 70.0]
    } else {
        vec![10.0, 25.0, 40.0, 60.0, 80.0]
    };
    if !utils.iter().any(|&u| (u - target_u).abs() < 1e-9) {
        utils.push(target_u);
        utils.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    }
    ProfileConfig {
        utilizations_pct: utils,
        data_sizes: if opts.quick {
            vec![1_000, 3_000, 6_000, 9_000]
        } else {
            vec![500, 1_500, 3_000, 4_500, 6_000, 7_500, 9_000, 11_000, 13_500, 17_500]
        },
        periods_per_point: if opts.quick { 3 } else { 5 },
        warmup_periods: 2,
        seed: 0xF16,
    }
}

/// Shared implementation of Figs. 2 and 3.
fn latency_figure(
    id: &'static str,
    title: &'static str,
    stage: usize,
    target_u: f64,
    opts: &FigureOptions,
) -> FigureOutput {
    let task = aaw_task();
    let cfg = profile_grid(opts, target_u);
    let samples = profile_execution(task.stages[stage].cost, &cfg);

    // The measured series at the target utilization (blue "y" in the paper).
    let at_u: Vec<_> = samples
        .iter()
        .filter(|s| (s.u - target_u).abs() < 1e-9)
        .collect();
    // Per-utilization second-order fit (red "Y").
    let xs: Vec<f64> = at_u.iter().map(|s| s.d).collect();
    let ys: Vec<f64> = at_u.iter().map(|s| s.latency_ms).collect();
    let per_u = Polynomial::fit_quadratic_origin(&xs, &ys).expect("per-utilization fit");
    // Combined Eq. (3) fit over all utilizations (green "Y−").
    let combined = ExecLatencyModel::fit_two_stage(&samples).expect("combined fit");

    let mut table = Table::new(vec![
        "data_size_tracks",
        "measured_ms",
        "per_util_fit_ms",
        "combined_fit_ms",
    ]);
    let mut measured_series = Vec::new();
    let mut fit_series = Vec::new();
    for s in &at_u {
        let y_fit = per_u.eval(s.d);
        let y_comb = combined.predict(s.d, target_u);
        table.row(vec![
            format!("{}", (s.d * 100.0).round() as u64),
            fmt_f(s.latency_ms),
            fmt_f(y_fit),
            fmt_f(y_comb),
        ]);
        measured_series.push((s.d, s.latency_ms));
        fit_series.push((s.d, y_comb));
    }

    let chart = ascii_chart(
        &[
            Series {
                label: "measured",
                points: measured_series,
            },
            Series {
                label: "combined-fit",
                points: fit_series,
            },
        ],
        64,
        16,
    );
    let text = format!(
        "{title}\n\n{}\n{}\nper-utilization fit R2 = {:.4}   combined Eq.(3) fit R2 = {:.4}\n",
        table.render(),
        chart,
        per_u.stats.r2,
        combined.stats.r2,
    );
    FigureOutput {
        id,
        title,
        text,
        tables: vec![("latency".into(), table)],
    }
}

/// Fig. 2: Filter at 80 % CPU utilization.
pub fn fig2(opts: &FigureOptions) -> FigureOutput {
    latency_figure(
        "fig2",
        "Figure 2: Execution latencies of Filter at 80% CPU utilization",
        FILTER_STAGE,
        80.0,
        opts,
    )
}

/// Fig. 3: EvalDecide at 60 % CPU utilization.
pub fn fig3(opts: &FigureOptions) -> FigureOutput {
    latency_figure(
        "fig3",
        "Figure 3: Execution latencies of EvalDecide at 60% CPU utilization",
        EVAL_DECIDE_STAGE,
        60.0,
        opts,
    )
}

/// Fig. 4: the full Filter latency surface over (utilization, data size).
pub fn fig4(opts: &FigureOptions) -> FigureOutput {
    let task = aaw_task();
    let cfg = profile_grid(opts, 80.0);
    let samples = profile_execution(task.stages[FILTER_STAGE].cost, &cfg);
    let model = ExecLatencyModel::fit_two_stage(&samples).expect("surface fit");

    let mut table = Table::new(vec![
        "cpu_util_pct",
        "data_size_tracks",
        "measured_ms",
        "model_ms",
    ]);
    for s in &samples {
        table.row(vec![
            fmt_f(s.u),
            format!("{}", (s.d * 100.0).round() as u64),
            fmt_f(s.latency_ms),
            fmt_f(model.predict(s.d, s.u)),
        ]);
    }
    let text = format!(
        "Figure 4: Filter execution-latency surface over CPU utilization x data size\n\n{}\nEq.(3) surface fit: R2 = {:.4}, RMSE = {:.2} ms over {} samples\ncoefficients a = {:?}\n             b = {:?}\n",
        table.render(),
        model.stats.r2,
        model.stats.rmse,
        model.stats.n,
        model.a,
        model.b,
    );
    FigureOutput {
        id: "fig4",
        title: "Figure 4: Filter latency surface",
        text,
        tables: vec![("surface".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_produces_monotone_measured_series_and_good_fit() {
        let opts = FigureOptions::quick_for_tests("fig2");
        let f = fig2(&opts);
        assert_eq!(f.id, "fig2");
        assert_eq!(f.tables.len(), 1);
        let t = &f.tables[0].1;
        assert!(t.len() >= 4, "one row per data size");
        assert!(f.text.contains("combined Eq.(3) fit R2"));
        // R2 values embedded in the text should be high.
        let r2: f64 = f
            .text
            .split("combined Eq.(3) fit R2 = ")
            .nth(1)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(r2 > 0.9, "combined fit r2 {r2}");
    }

    #[test]
    fn fig3_targets_eval_decide_at_60() {
        let opts = FigureOptions::quick_for_tests("fig3");
        let f = fig3(&opts);
        assert!(f.title.contains("EvalDecide"));
        assert!(f.title.contains("60%"));
        assert!(!f.tables[0].1.is_empty());
    }

    #[test]
    fn fig4_covers_the_full_grid() {
        let opts = FigureOptions::quick_for_tests("fig4");
        let f = fig4(&opts);
        // Quick grid: 3 utils (+80 target) x 4 sizes = 16 rows.
        assert_eq!(f.tables[0].1.len(), 16);
        assert!(f.text.contains("coefficients a"));
    }
}
