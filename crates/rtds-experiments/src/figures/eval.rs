//! Figures 9–13: the evaluation sweeps.
//!
//! Every figure sweeps the maximum workload (scale unit = 500 tracks) and
//! compares the predictive and non-predictive algorithms:
//!
//! * Fig. 9 (a–d) — triangular pattern: missed-deadline %, average CPU
//!   utilization, average network utilization, average subtask replicas;
//! * Fig. 10 — triangular pattern: combined metric;
//! * Fig. 11 / 12 (a–d) — increasing / decreasing ramps, same four
//!   metrics;
//! * Fig. 13 (a, b) — combined metric for both ramps, including the
//!   extended-workload run behind the paper's §5.2 claim that the ranking
//!   fluctuates beyond the threshold workload.

use std::collections::HashMap;
use std::sync::Mutex;

use super::{FigureOptions, FigureOutput};
use crate::report::{ascii_chart, fmt_f, Series, Table};
use crate::scenario::{PatternSpec, PolicySpec};
use crate::sweep::{points_for, run_sweep, SweepConfig, SweepPoint};

/// Sweep settings for one paper pattern under the given options.
fn sweep_config(pattern: PatternSpec, opts: &FigureOptions, extended: bool) -> SweepConfig {
    let mut cfg = if opts.quick {
        SweepConfig::quick(pattern)
    } else {
        SweepConfig::paper(pattern)
    };
    cfg.threads = opts.threads;
    cfg.bg_fast_path = opts.bg_fast_path;
    if extended {
        let top = if opts.quick { 40 } else { 50 };
        let step = if opts.quick { 6 } else { 1 };
        cfg.units = (1..=top).step_by(step).collect();
    }
    cfg
}

/// The pattern parameterizations the figures use, scaled to run length.
fn paper_pattern(kind: &str, opts: &FigureOptions) -> PatternSpec {
    let n = if opts.quick { 40 } else { 240 };
    match kind {
        "triangular" => PatternSpec::Triangular { half_period: n / 8 },
        "increasing" => PatternSpec::Increasing { ramp_periods: n },
        "decreasing" => PatternSpec::Decreasing { ramp_periods: n },
        other => panic!("unknown paper pattern {other}"),
    }
}

/// Process-wide sweep cache so figure pairs (9+10, 11/12+13) that share a
/// sweep do not run it twice within one binary (notably `run_all`).
fn sweep_cached(kind: &str, opts: &FigureOptions, extended: bool) -> Vec<SweepPoint> {
    static CACHE: Mutex<Option<HashMap<String, Vec<SweepPoint>>>> = Mutex::new(None);
    let key = format!("{kind}/{}/{}/{}", opts.quick, extended, opts.fitted_models);
    if let Some(hit) = CACHE
        .lock()
        .expect("sweep cache")
        .get_or_insert_with(HashMap::new)
        .get(&key)
    {
        return hit.clone();
    }
    let cfg = sweep_config(paper_pattern(kind, opts), opts, extended);
    let predictor = opts.predictor();
    let points = run_sweep(&cfg, &predictor);
    CACHE
        .lock()
        .expect("sweep cache")
        .get_or_insert_with(HashMap::new)
        .insert(key, points.clone());
    points
}

/// Builds the four-metric table + charts from sweep points.
fn metric_tables(points: &[SweepPoint]) -> (Table, String) {
    let mut table = Table::new(vec![
        "max_workload_units",
        "policy",
        "missed_pct",
        "avg_cpu_pct",
        "avg_net_pct",
        "avg_replicas",
        "placement_changes",
    ]);
    for p in points {
        table.row(vec![
            p.units.to_string(),
            p.policy.name().to_string(),
            fmt_f(p.missed_pct),
            fmt_f(p.cpu_pct),
            fmt_f(p.net_pct),
            fmt_f(p.avg_replicas),
            p.placement_changes.to_string(),
        ]);
    }
    let chart = |f: fn(&SweepPoint) -> f64, title: &str| {
        let pred = points_for(points, PolicySpec::Predictive)
            .iter()
            .map(|p| (p.units as f64, f(p)))
            .collect();
        let nonp = points_for(points, PolicySpec::NonPredictive)
            .iter()
            .map(|p| (p.units as f64, f(p)))
            .collect();
        format!(
            "({title})\n{}",
            ascii_chart(
                &[
                    Series {
                        label: "P=predictive",
                        points: pred,
                    },
                    Series {
                        label: "N=non-predictive",
                        points: nonp,
                    },
                ],
                64,
                12,
            )
        )
    };
    let charts = format!(
        "{}\n{}\n{}\n{}",
        chart(|p| p.missed_pct, "a: missed deadlines, %"),
        chart(|p| p.cpu_pct, "b: average CPU utilization, %"),
        chart(|p| p.net_pct, "c: average network utilization, %"),
        chart(|p| p.avg_replicas, "d: average subtask replicas"),
    );
    (table, charts)
}

/// Shared implementation of Figs. 9, 11, 12.
fn four_metric_figure(
    id: &'static str,
    title: &'static str,
    kind: &str,
    opts: &FigureOptions,
) -> FigureOutput {
    let points = sweep_cached(kind, opts, false);
    let (table, charts) = metric_tables(&points);
    let text = format!("{title}\n\n{}\n{charts}\n", table.render());
    FigureOutput {
        id,
        title,
        text,
        tables: vec![("metrics".into(), table)],
    }
}

/// Shared implementation of Figs. 10 and 13(a)/(b).
fn combined_figure(
    id: &'static str,
    title: &'static str,
    kind: &str,
    opts: &FigureOptions,
    extended: bool,
) -> FigureOutput {
    let points = sweep_cached(kind, opts, extended);
    let mut table = Table::new(vec!["max_workload_units", "policy", "combined_metric"]);
    for p in &points {
        table.row(vec![
            p.units.to_string(),
            p.policy.name().to_string(),
            fmt_f(p.combined),
        ]);
    }
    let pred: Vec<(f64, f64)> = points_for(&points, PolicySpec::Predictive)
        .iter()
        .map(|p| (p.units as f64, p.combined))
        .collect();
    let nonp: Vec<(f64, f64)> = points_for(&points, PolicySpec::NonPredictive)
        .iter()
        .map(|p| (p.units as f64, p.combined))
        .collect();
    let chart = ascii_chart(
        &[
            Series {
                label: "P=predictive",
                points: pred.clone(),
            },
            Series {
                label: "N=non-predictive",
                points: nonp.clone(),
            },
        ],
        64,
        14,
    );
    // Who wins where (the §5.2 narrative).
    let mut verdicts = String::new();
    let mut pred_wins = 0usize;
    let mut flips = Vec::new();
    let mut last: Option<bool> = None;
    for (p, n) in pred.iter().zip(&nonp) {
        let pw = p.1 <= n.1;
        if pw {
            pred_wins += 1;
        }
        if let Some(prev) = last {
            if prev != pw {
                flips.push(p.0 as u64);
            }
        }
        last = Some(pw);
    }
    use std::fmt::Write as _;
    let _ = writeln!(
        verdicts,
        "predictive wins {pred_wins}/{} points; ranking flips at units {flips:?}",
        pred.len()
    );
    let text = format!("{title}\n\n{}\n{chart}\n{verdicts}", table.render());
    FigureOutput {
        id,
        title,
        text,
        tables: vec![("combined".into(), table)],
    }
}

/// Fig. 9 (a–d): triangular pattern, four metrics.
pub fn fig9(opts: &FigureOptions) -> FigureOutput {
    four_metric_figure(
        "fig9",
        "Figure 9: Performance for the triangular workload pattern",
        "triangular",
        opts,
    )
}

/// Fig. 10: triangular pattern, combined metric.
pub fn fig10(opts: &FigureOptions) -> FigureOutput {
    combined_figure(
        "fig10",
        "Figure 10: Combined performance, triangular pattern",
        "triangular",
        opts,
        false,
    )
}

/// Fig. 11 (a–d): increasing-ramp pattern, four metrics.
pub fn fig11(opts: &FigureOptions) -> FigureOutput {
    four_metric_figure(
        "fig11",
        "Figure 11: Performance for the increasing-ramp workload pattern",
        "increasing",
        opts,
    )
}

/// Fig. 12 (a–d): decreasing-ramp pattern, four metrics.
pub fn fig12(opts: &FigureOptions) -> FigureOutput {
    four_metric_figure(
        "fig12",
        "Figure 12: Performance for the decreasing-ramp workload pattern",
        "decreasing",
        opts,
    )
}

/// Fig. 13 (a): increasing ramp, combined metric (optionally extended
/// beyond the paper's 35-unit axis for the fluctuation study).
pub fn fig13a(opts: &FigureOptions, extended: bool) -> FigureOutput {
    combined_figure(
        "fig13a",
        "Figure 13(a): Combined performance, increasing-ramp pattern",
        "increasing",
        opts,
        extended,
    )
}

/// Fig. 13 (b): decreasing ramp, combined metric.
pub fn fig13b(opts: &FigureOptions, extended: bool) -> FigureOutput {
    combined_figure(
        "fig13b",
        "Figure 13(b): Combined performance, decreasing-ramp pattern",
        "decreasing",
        opts,
        extended,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_compares_both_policies_at_every_unit() {
        let opts = FigureOptions::quick_for_tests("fig9");
        let f = fig9(&opts);
        // quick sweep: 3 units x 2 policies.
        assert_eq!(f.tables[0].1.len(), 6);
        assert!(f.text.contains("non-predictive"));
        assert!(f.text.contains("average subtask replicas"));
    }

    #[test]
    fn fig10_reports_winner_summary() {
        let opts = FigureOptions::quick_for_tests("fig10");
        let f = fig10(&opts);
        assert!(f.text.contains("predictive wins"));
        assert_eq!(f.tables[0].1.len(), 6);
    }

    #[test]
    fn fig13_extended_covers_more_units() {
        let opts = FigureOptions::quick_for_tests("fig13");
        let normal = fig13a(&opts, false);
        let extended = fig13a(&opts, true);
        assert!(extended.tables[0].1.len() > normal.tables[0].1.len());
    }

    #[test]
    fn sweep_cache_reuses_results_across_figures() {
        // fig9 and fig10 share the triangular sweep: running both with the
        // same options must agree on the (unit, policy) grid.
        let opts = FigureOptions::quick_for_tests("cache");
        let a = fig9(&opts);
        let b = fig10(&opts);
        assert_eq!(a.tables[0].1.len(), b.tables[0].1.len());
    }
}
