//! Observability exporters: Chrome trace-event JSON and decision JSONL.
//!
//! Turns the opt-in artifacts of an observed run — the [`TraceSink`]
//! event log, the [`DecisionRecord`] audit stream, and (optionally) the
//! aggregated [`PerfReport`] — into files a human can open:
//!
//! * [`chrome_trace`] renders the Chrome *trace-event format*
//!   (<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>),
//!   loadable in Perfetto or `chrome://tracing`. Stage executions become
//!   duration (`"X"`) slices; sheds, failures, placements, and every
//!   manager decision become instant (`"i"`) markers carrying the full
//!   record in `args`.
//! * [`decisions_jsonl`] renders one JSON object per line, for `jq`-style
//!   offline analysis.
//! * [`validate_chrome_trace`] re-parses an exported document and checks
//!   the schema invariants the viewers rely on — used by tests and the CI
//!   smoke step so a malformed export fails loudly, not when a human
//!   finally loads it weeks later.
//!
//! The exporters are pure functions over already-collected data: they run
//! after the simulation and cannot perturb it.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use rtds_arm::audit::DecisionRecord;
use rtds_sim::perf::{PerfReport, PHASE_NAMES};
use rtds_sim::time::SimTime;
use rtds_sim::trace::{TraceEvent, TraceSink};

/// Synthetic process id for simulation-time rows in the exported trace.
const PID_SIM: u32 = 1;
/// Synthetic process id for manager-decision rows.
const PID_DECISIONS: u32 = 2;
/// Synthetic process id for wall-clock perf phases (not simulation time).
const PID_PERF: u32 = 3;

fn event_name(e: &TraceEvent) -> &'static str {
    match e {
        TraceEvent::Release { .. } => "Release",
        TraceEvent::Shed { .. } => "Shed",
        TraceEvent::ReplicaDone { .. } => "ReplicaDone",
        TraceEvent::StageDone { .. } => "StageDone",
        TraceEvent::InstanceDone { .. } => "InstanceDone",
        TraceEvent::Placement { .. } => "Placement",
        TraceEvent::NodeFailed { .. } => "NodeFailed",
        TraceEvent::NodeRestarted { .. } => "NodeRestarted",
        TraceEvent::MessageLost { .. } => "MessageLost",
        TraceEvent::MessageDropped { .. } => "MessageDropped",
        TraceEvent::MessageDuplicated { .. } => "MessageDuplicated",
        TraceEvent::Retransmit { .. } => "Retransmit",
    }
}

/// One pre-rendered trace-event line plus its sort key.
struct Line {
    ts: u64,
    json: String,
}

fn push_instant(out: &mut Vec<Line>, ts: u64, name: &str, pid: u32, tid: u32, args: &str) {
    out.push(Line {
        ts,
        json: format!(
            "{{\"name\":\"{name}\",\"cat\":\"rtds\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}"
        ),
    });
}

fn push_span(out: &mut Vec<Line>, ts: u64, dur: u64, name: &str, pid: u32, tid: u32, args: &str) {
    out.push(Line {
        ts,
        json: format!(
            "{{\"name\":\"{name}\",\"cat\":\"rtds\",\"ph\":\"X\",\
             \"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}"
        ),
    });
}

/// Renders a Chrome trace-event JSON document from an observed run.
///
/// Timestamps are simulation microseconds (`ts`/`dur` are µs in the
/// trace-event format, so no scaling is needed). `ReplicaDone` and
/// `InstanceDone` carry observed latencies and are rendered as duration
/// slices ending at their completion instant; everything else is an
/// instant marker. `perf`, if given, adds the aggregated per-phase
/// wall-clock breakdown as slices under a separate synthetic process —
/// wall time, not simulation time, which the `args` spell out.
pub fn chrome_trace(
    trace: Option<&TraceSink>,
    decisions: &[(SimTime, DecisionRecord)],
    perf: Option<&PerfReport>,
) -> String {
    let mut lines: Vec<Line> = Vec::new();

    if let Some(sink) = trace {
        for (now, e) in sink.events() {
            let ts = now.as_micros();
            let args = serde_json::to_string(e).unwrap_or_else(|_| "null".into());
            match e {
                TraceEvent::ReplicaDone { stage, latency, .. } => {
                    let dur = latency.as_micros();
                    push_span(
                        &mut lines,
                        ts.saturating_sub(dur),
                        dur,
                        event_name(e),
                        PID_SIM,
                        stage.subtask.0 + 1,
                        &args,
                    );
                }
                TraceEvent::InstanceDone { latency, .. } => {
                    let dur = latency.as_micros();
                    push_span(
                        &mut lines,
                        ts.saturating_sub(dur),
                        dur,
                        event_name(e),
                        PID_SIM,
                        0,
                        &args,
                    );
                }
                TraceEvent::StageDone { stage, .. } | TraceEvent::Placement { stage, .. } => {
                    push_instant(&mut lines, ts, event_name(e), PID_SIM, stage.subtask.0 + 1, &args);
                }
                _ => push_instant(&mut lines, ts, event_name(e), PID_SIM, 0, &args),
            }
        }
    }

    for (now, d) in decisions {
        let name = match d.arm {
            rtds_arm::audit::DecisionArm::Replicate => "ReplicateSubtask",
            rtds_arm::audit::DecisionArm::ShutDown => "ShutDownAReplica",
            rtds_arm::audit::DecisionArm::NoOp => "NoOp",
            rtds_arm::audit::DecisionArm::Repair => "RepairPlacement",
        };
        let args = serde_json::to_string(d).unwrap_or_else(|_| "null".into());
        push_instant(&mut lines, now.as_micros(), name, PID_DECISIONS, d.stage, &args);
    }

    if let Some(p) = perf {
        // Wall-clock phase totals have no simulation-time placement; lay
        // them end to end from t=0 so relative widths read as shares.
        let mut cursor = 0u64;
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            if p.events[i] == 0 {
                continue;
            }
            let dur = (p.ns[i] / 1_000).max(1);
            let args = format!(
                "{{\"events\":{},\"wall_ns\":{},\"note\":\"aggregated wall time, not sim time\"}}",
                p.events[i], p.ns[i]
            );
            push_span(&mut lines, cursor, dur, name, PID_PERF, 0, &args);
            cursor += dur;
        }
    }

    lines.sort_by_key(|l| l.ts);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, l) in lines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&l.json);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the decision stream as JSON Lines: one
/// `{"at_us": <t>, "decision": {...}}` object per line, in emission order.
pub fn decisions_jsonl(decisions: &[(SimTime, DecisionRecord)]) -> String {
    let mut out = String::new();
    for (now, d) in decisions {
        let body = serde_json::to_string(d).unwrap_or_else(|_| "null".into());
        out.push_str(&format!(
            "{{\"at_us\":{},\"decision\":{}}}\n",
            now.as_micros(),
            body
        ));
    }
    out
}

/// Re-parses an exported Chrome trace and checks the invariants the
/// viewers rely on: a `traceEvents` array whose entries all carry string
/// `name`/`ph`, numeric `ts`/`pid`/`tid`, a `dur` on every `"X"` slice,
/// and non-decreasing `ts`. Returns the event count.
///
/// # Errors
/// Describes the first violated invariant.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("missing traceEvents array")?;
    let mut last_ts = 0.0f64;
    for (i, e) in events.iter().enumerate() {
        let ph = e["ph"]
            .as_str()
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if e["name"].as_str().is_none() {
            return Err(format!("event {i}: missing name"));
        }
        let ts = e["ts"]
            .as_f64()
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if e["pid"].as_u64().is_none() || e["tid"].as_u64().is_none() {
            return Err(format!("event {i}: missing pid/tid"));
        }
        if ph == "X" && e["dur"].as_f64().is_none() {
            return Err(format!("event {i}: X slice without dur"));
        }
        if ts < last_ts {
            return Err(format!("event {i}: ts went backwards ({ts} < {last_ts})"));
        }
        last_ts = ts;
    }
    Ok(events.len())
}

/// Runs one fully-observed probe scenario (quick predictive triangular
/// run at near-saturating workload — enough load that replication,
/// shutdown, and misses all occur) and writes the requested export files.
/// Returns the paths written.
///
/// This backs the `--trace-out` / `--decisions-out` flags: the figure
/// runners themselves keep observability off so their outputs stay
/// byte-identical to the goldens, and the probe run supplies the
/// artifacts instead.
///
/// # Errors
/// Propagates file-creation and write failures.
pub fn write_observed_probe(
    trace_out: Option<&Path>,
    decisions_out: Option<&Path>,
) -> std::io::Result<Vec<PathBuf>> {
    if trace_out.is_none() && decisions_out.is_none() {
        return Ok(Vec::new());
    }
    let mut cfg = crate::scenario::ScenarioConfig::paper(
        crate::scenario::PatternSpec::Triangular { half_period: 10 },
        crate::scenario::PolicySpec::Predictive,
        14_000,
    );
    cfg.n_periods = 40;
    cfg.observe = crate::scenario::ObserveConfig::full();
    let result = crate::scenario::run_scenario(&cfg, &crate::models::quick_predictor());

    let mut written = Vec::new();
    if let Some(path) = trace_out {
        let perf = crate::perfmon::snapshot().map(|a| a.report);
        let doc = chrome_trace(result.trace.as_ref(), &result.decisions, perf.as_ref());
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(doc.as_bytes())?;
        written.push(path.to_path_buf());
    }
    if let Some(path) = decisions_out {
        let doc = decisions_jsonl(&result.decisions);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(doc.as_bytes())?;
        written.push(path.to_path_buf());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::quick_predictor;
    use crate::scenario::{run_scenario, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig};

    fn observed_result() -> crate::scenario::ScenarioResult {
        let mut cfg = ScenarioConfig::paper(
            PatternSpec::Triangular { half_period: 10 },
            PolicySpec::Predictive,
            14_000,
        );
        cfg.n_periods = 30;
        cfg.observe = ObserveConfig::full();
        run_scenario(&cfg, &quick_predictor())
    }

    #[test]
    fn chrome_trace_is_valid_and_carries_spans_and_decisions() {
        let r = observed_result();
        assert!(r.trace.is_some());
        assert!(!r.decisions.is_empty());
        let doc = chrome_trace(r.trace.as_ref(), &r.decisions, None);
        let n = validate_chrome_trace(&doc).expect("schema holds");
        assert!(n > 0, "trace should not be empty");
        assert!(doc.contains("\"ph\":\"X\""), "stage executions become slices");
        assert!(doc.contains("ReplicateSubtask"), "decisions become markers");
        assert!(doc.contains("\"eex_ms\""), "decision args keep the forecasts");
    }

    #[test]
    fn chrome_trace_includes_perf_phases_when_given() {
        let mut p = rtds_sim::perf::PerfReport::default();
        p.events[1] = 10;
        p.ns[1] = 5_000_000;
        let doc = chrome_trace(None, &[], Some(&p));
        validate_chrome_trace(&doc).expect("schema holds");
        assert!(doc.contains("\"dispatch\""));
        assert!(doc.contains("not sim time"));
    }

    #[test]
    fn decisions_jsonl_is_one_valid_object_per_line() {
        let r = observed_result();
        let doc = decisions_jsonl(&r.decisions);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), r.decisions.len());
        for l in &lines {
            let v: serde_json::Value = serde_json::from_str(l).expect("valid JSON line");
            assert!(v["at_us"].as_u64().is_some());
            assert!(v["decision"]["arm"].as_str().is_some());
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"ts\":1,\"pid\":1,\"tid\":0}]}")
                .unwrap_err()
                .contains("without dur")
        );
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn probe_writer_produces_loadable_files() {
        let dir = std::env::temp_dir().join("rtds-export-test");
        let trace = dir.join("trace.json");
        let decisions = dir.join("decisions.jsonl");
        let written = write_observed_probe(Some(&trace), Some(&decisions)).expect("writes ok");
        assert_eq!(written.len(), 2);
        let doc = std::fs::read_to_string(&trace).expect("trace file");
        validate_chrome_trace(&doc).expect("exported file validates");
        let jsonl = std::fs::read_to_string(&decisions).expect("decisions file");
        assert!(jsonl.lines().count() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
