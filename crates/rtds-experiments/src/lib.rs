//! # rtds-experiments — the paper's evaluation, regenerated
//!
//! Harness that reproduces every table and figure of the evaluation
//! section of Ravindran & Hegazy (IPPS 2001):
//!
//! * [`models`] — the profiling campaign that fits Eq. (3)/(5) models
//!   against the simulator (plus a fast analytic fallback);
//! * [`scenario`] — assembly of the Table 1 system + workload pattern +
//!   policy into one simulation run;
//! * [`sweep`] — parallel max-workload sweeps (the x-axis of Figs. 9–13);
//! * [`figures`] — one runner per table/figure;
//! * [`export`] — Chrome trace-event and decision-JSONL exporters for
//!   observed runs;
//! * [`report`] — aligned tables, CSV artifacts, ASCII charts;
//! * [`cli`] — shared flag parsing for the figure binaries.
//!
//! Binaries: `fig2 fig3 fig4 fig8 fig9 fig10 fig11 fig12 fig13 tables
//! run_all`, each accepting `--quick`, `--analytic`, `--out DIR`,
//! `--threads N` (and `--extended` where applicable).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod export;
pub mod figures;
pub mod models;
pub mod perfmon;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use figures::{FigureOptions, FigureOutput};
pub use export::{chrome_trace, decisions_jsonl, validate_chrome_trace};
pub use serde_json;
pub use scenario::{
    run_scenario, CrashFault, FaultPlan, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig,
    ScenarioResult,
};
pub use sweep::{run_sweep, SweepConfig, SweepPoint, TRACKS_PER_UNIT};
