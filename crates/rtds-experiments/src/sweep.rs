//! Max-workload sweeps (the x-axis of Figs. 9–13).
//!
//! Each figure plots a metric against the experiment's **maximum
//! workload** in scale units of 500 tracks, one independent simulation per
//! point per policy. Points are embarrassingly parallel; the sweep fans
//! them out over `std::thread::scope` workers pulling from an atomic
//! work index, collects into a mutex-guarded vector, then restores
//! deterministic order. Thread count never affects results — only
//! `wall_ms` (measured wall-clock, excluded from golden comparisons)
//! varies between runs.

use std::sync::Mutex;

use rtds_arm::predictor::Predictor;
use crate::scenario::{
    run_scenario, FaultPlan, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig,
};
use rtds_workloads::WorkloadRange;

/// Tracks per scale unit on every figure's x-axis ("1 scale unit = 500
/// Track").
pub const TRACKS_PER_UNIT: u64 = 500;

/// One sweep measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Maximum workload in scale units.
    pub units: u64,
    /// Policy that ran.
    pub policy: PolicySpec,
    /// Missed-deadline percentage.
    pub missed_pct: f64,
    /// Average CPU utilization, percent.
    pub cpu_pct: f64,
    /// Average network utilization, percent.
    pub net_pct: f64,
    /// Average replicas per replicable subtask.
    pub avg_replicas: f64,
    /// Combined metric.
    pub combined: f64,
    /// Placement changes over the run.
    pub placement_changes: u64,
    /// Wall-clock time this point's simulation took, in milliseconds.
    /// Non-deterministic by nature: report it, but never fold it into
    /// golden or cross-thread-count comparisons.
    pub wall_ms: f64,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Pattern family (its period parameters fixed by the caller).
    pub pattern: PatternSpec,
    /// Max-workload grid, scale units.
    pub units: Vec<u64>,
    /// Policies to compare.
    pub policies: Vec<PolicySpec>,
    /// Periods per run.
    pub n_periods: u64,
    /// Ambient background utilization.
    pub ambient_util: f64,
    /// Seed (same for every point: the paper runs "a single experiment"
    /// per point; determinism comes from the seed, comparability from
    /// sharing it across policies).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Failure-realism plan applied identically to every point (default:
    /// everything off — the clean-network headline sweeps).
    pub faults: FaultPlan,
    /// Observability sinks applied to every point (default: off). Sweep
    /// points only keep the aggregate numbers, so this is useful purely
    /// to prove the observer effect is zero — the per-run payloads are
    /// dropped.
    pub observe: ObserveConfig,
    /// Background-load fast path (see `ScenarioConfig::bg_fast_path`).
    /// Byte-identical on or off; default on.
    pub bg_fast_path: bool,
}

impl SweepConfig {
    /// The paper's sweep for one pattern: units 1..=35, both policies.
    pub fn paper(pattern: PatternSpec) -> Self {
        SweepConfig {
            pattern,
            units: (1..=35).collect(),
            policies: vec![PolicySpec::Predictive, PolicySpec::NonPredictive],
            n_periods: 240,
            ambient_util: 0.10,
            seed: 0x5EED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            faults: FaultPlan::default(),
            observe: ObserveConfig::default(),
            bg_fast_path: true,
        }
    }

    /// A coarse, short sweep for tests and `--quick` runs.
    pub fn quick(pattern: PatternSpec) -> Self {
        SweepConfig {
            units: vec![4, 16, 28],
            n_periods: 40,
            threads: 2,
            ..Self::paper(pattern)
        }
    }
}

/// Runs the sweep. Results are ordered by (unit, policy order as given).
///
/// If any point panics, the sweep stops handing out new work and re-raises
/// the **first** panic's original payload from the calling thread. (The
/// naive `.expect("poisoned")` alternative would replace the real failure
/// message with a generic "a scoped thread panicked" — `std::thread::scope`
/// swallows spawned-thread payloads — and then panic a second time on the
/// poisoned results lock, burying the root cause.)
pub fn run_sweep(cfg: &SweepConfig, predictor: &Predictor) -> Vec<SweepPoint> {
    run_sweep_with(cfg, |units, policy| run_point(cfg, units, policy, predictor))
}

/// Sweep engine, parameterized over the per-point runner so tests can
/// inject failures.
fn run_sweep_with<F>(cfg: &SweepConfig, run: F) -> Vec<SweepPoint>
where
    F: Fn(u64, PolicySpec) -> SweepPoint + Sync,
{
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    assert!(!cfg.units.is_empty() && !cfg.policies.is_empty(), "empty sweep");
    let mut jobs: Vec<(usize, u64, PolicySpec)> = Vec::new();
    for &u in &cfg.units {
        for &p in &cfg.policies {
            jobs.push((jobs.len(), u, p));
        }
    }
    let results: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (order, units, policy) = jobs[i];
                // Catch the panic here rather than letting it unwind
                // through the scope: we keep the original payload, and no
                // lock is ever poisoned by an unwinding worker.
                match std::panic::catch_unwind(AssertUnwindSafe(|| run(units, policy))) {
                    Ok(point) => {
                        results
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((order, point));
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(payload) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        std::panic::resume_unwind(payload);
    }

    let mut out = results.into_inner().unwrap_or_else(|e| e.into_inner());
    out.sort_by_key(|(order, _)| *order);
    out.into_iter().map(|(_, p)| p).collect()
}

fn run_point(
    cfg: &SweepConfig,
    units: u64,
    policy: PolicySpec,
    predictor: &Predictor,
) -> SweepPoint {
    let max_tracks = units * TRACKS_PER_UNIT;
    let scenario = ScenarioConfig {
        pattern: cfg.pattern,
        policy,
        workload: WorkloadRange::new(500.min(max_tracks), max_tracks),
        n_periods: cfg.n_periods,
        ambient_util: cfg.ambient_util,
        seed: cfg.seed,
        scheduler: rtds_sim::sched::SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: cfg.faults.clone(),
        observe: cfg.observe,
        bg_fast_path: cfg.bg_fast_path,
    };
    let started = std::time::Instant::now();
    let r = run_scenario(&scenario, predictor);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    SweepPoint {
        units,
        policy,
        missed_pct: r.summary.missed_deadline_pct,
        cpu_pct: r.summary.avg_cpu_util_pct,
        net_pct: r.summary.avg_net_util_pct,
        avg_replicas: r.summary.avg_replicas,
        combined: r.breakdown.combined,
        placement_changes: r.summary.placement_changes,
        wall_ms,
    }
}

/// Renders the *deterministic* fields of sweep points as CSV text — every
/// field except `wall_ms`. Two runs of the same sweep must produce
/// byte-identical output from this function regardless of thread count.
pub fn deterministic_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "units,policy,missed_pct,cpu_pct,net_pct,avg_replicas,combined,placement_changes\n",
    );
    for p in points {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{:?},{:?},{:?},{:?},{:?},{}",
            p.units,
            p.policy.name(),
            p.missed_pct,
            p.cpu_pct,
            p.net_pct,
            p.avg_replicas,
            p.combined,
            p.placement_changes,
        );
    }
    out
}

/// Selects the points of one policy, ordered by unit.
pub fn points_for(points: &[SweepPoint], policy: PolicySpec) -> Vec<&SweepPoint> {
    points.iter().filter(|p| p.policy == policy).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::quick_predictor;

    #[test]
    fn sweep_produces_every_grid_point_in_order() {
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
        cfg.units = vec![2, 20];
        cfg.n_periods = 20;
        let pts = run_sweep(&cfg, &quick_predictor());
        assert_eq!(pts.len(), 4);
        assert_eq!(
            pts.iter().map(|p| p.units).collect::<Vec<_>>(),
            vec![2, 2, 20, 20]
        );
        assert_eq!(pts[0].policy, PolicySpec::Predictive);
        assert_eq!(pts[1].policy, PolicySpec::NonPredictive);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
        cfg.units = vec![4, 24];
        cfg.n_periods = 20;
        let p = quick_predictor();
        cfg.threads = 1;
        let seq = run_sweep(&cfg, &p);
        cfg.threads = 4;
        let par = run_sweep(&cfg, &p);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.units, b.units);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.missed_pct, b.missed_pct);
            assert_eq!(a.combined, b.combined);
        }
        // The full deterministic serialization must agree byte for byte.
        assert_eq!(deterministic_csv(&seq), deterministic_csv(&par));
    }

    #[test]
    fn failure_realism_sweeps_are_deterministic_across_threads_and_seeds() {
        // The PR-1 determinism property, extended to the failure-realism
        // layer: lossy + duplicating bus, retransmission, and a
        // crash–restart fault must still yield byte-identical CSVs
        // regardless of thread count, for every seed.
        use crate::scenario::CrashFault;
        let p = quick_predictor();
        for seed in [0x5EED_u64, 7] {
            let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
            cfg.units = vec![4, 24];
            cfg.n_periods = 20;
            cfg.seed = seed;
            cfg.faults = FaultPlan {
                drop_prob: 0.15,
                dup_prob: 0.05,
                retx_timeout_us: 20_000,
                jam: None,
                crashes: vec![CrashFault { node: 2, at_s: 6, restart_after_s: Some(5) }],
            };
            cfg.threads = 1;
            let seq = run_sweep(&cfg, &p);
            cfg.threads = 4;
            let par = run_sweep(&cfg, &p);
            assert_eq!(
                deterministic_csv(&seq),
                deterministic_csv(&par),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sweep_points_record_positive_wall_clock() {
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
        cfg.units = vec![4];
        cfg.n_periods = 10;
        cfg.threads = 1;
        let pts = run_sweep(&cfg, &quick_predictor());
        for p in &pts {
            assert!(p.wall_ms > 0.0, "wall clock should be measured: {}", p.wall_ms);
        }
        // And the deterministic CSV deliberately excludes it.
        assert!(!deterministic_csv(&pts).contains("wall"));
    }

    #[test]
    fn points_for_filters_by_policy() {
        let mut cfg = SweepConfig::quick(PatternSpec::Increasing { ramp_periods: 15 });
        cfg.units = vec![8];
        cfg.n_periods = 20;
        let pts = run_sweep(&cfg, &quick_predictor());
        assert_eq!(points_for(&pts, PolicySpec::Predictive).len(), 1);
        assert_eq!(points_for(&pts, PolicySpec::NonPredictive).len(), 1);
    }

    #[test]
    fn sweep_panic_propagates_original_payload_once() {
        // Regression: a panicking point used to surface as the generic
        // "a scoped thread panicked" (scope swallows worker payloads),
        // immediately followed by a second panic from the poisoned
        // results lock. The sweep must instead re-raise the original
        // payload, exactly once.
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
        cfg.units = vec![2, 4, 6, 8];
        cfg.threads = 4;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sweep_with(&cfg, |units, policy| {
                if units == 4 {
                    panic!("injected point failure at unit 4");
                }
                SweepPoint {
                    units,
                    policy,
                    missed_pct: 0.0,
                    cpu_pct: 0.0,
                    net_pct: 0.0,
                    avg_replicas: 1.0,
                    combined: 0.0,
                    placement_changes: 0,
                    wall_ms: 1.0,
                }
            })
        }))
        .expect_err("sweep should re-raise the injected panic");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .expect("payload should be the original &str, not a poison/scope wrapper");
        assert_eq!(msg, "injected point failure at unit 4");
    }

    #[test]
    fn observability_sinks_do_not_change_sweep_results() {
        // The observer-effect guarantee at sweep granularity: enabling
        // both sinks must leave every deterministic field byte-identical.
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
        cfg.units = vec![4, 24];
        cfg.n_periods = 20;
        let p = quick_predictor();
        let plain = run_sweep(&cfg, &p);
        cfg.observe = ObserveConfig::full();
        let observed = run_sweep(&cfg, &p);
        assert_eq!(deterministic_csv(&plain), deterministic_csv(&observed));
    }

    #[test]
    #[should_panic(expected = "empty sweep")]
    fn empty_sweep_panics() {
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 5 });
        cfg.units.clear();
        let _ = run_sweep(&cfg, &quick_predictor());
    }
}
