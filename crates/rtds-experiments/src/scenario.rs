//! Evaluation-scenario assembly.
//!
//! One scenario = the paper's Table 1 system (6 nodes, round-robin 1 ms,
//! 100 Mbps Ethernet, the 5-subtask AAW task, 990 ms deadline) + a
//! workload pattern + a resource-management policy + ambient background
//! load. [`run_scenario`] builds the cluster, runs it, and reduces the
//! result to the four paper metrics plus the combined metric.

use std::sync::{Arc, Mutex};

use rtds_arm::audit::DecisionRecord;
use rtds_arm::config::ArmConfig;
use rtds_arm::manager::ResourceManager;
use rtds_arm::metrics::{combined_breakdown, CombinedBreakdown};
use rtds_arm::predictor::Predictor;
use rtds_dynbench::app::{aaw_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
use rtds_sim::clock::ClockConfig;
use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
use rtds_sim::ids::{LoadGenId, NodeId};
use rtds_sim::load::PoissonLoad;
use rtds_sim::metrics::{RunMetrics, RunSummary};
use rtds_sim::net::JamWindow;
use rtds_sim::sched::SchedulerKind;
use rtds_sim::sink::BoundedSink;
use rtds_sim::time::{SimDuration, SimTime};
use rtds_sim::trace::TraceSink;
use rtds_workloads::{
    Burst, DecreasingRamp, IncreasingRamp, Pattern, RandomWalk, Sinusoid, Step,
    Triangular, WorkloadRange,
};

/// Which workload pattern drives the scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum PatternSpec {
    /// Paper Fig. 8, increasing ramp over `ramp_periods`.
    Increasing {
        /// Periods to go min → max.
        ramp_periods: u64,
    },
    /// Paper Fig. 8, decreasing ramp.
    Decreasing {
        /// Periods to go max → min.
        ramp_periods: u64,
    },
    /// Paper Fig. 8, triangular.
    Triangular {
        /// Periods per leg.
        half_period: u64,
    },
    /// Extension: square wave.
    Step {
        /// Periods at the minimum.
        low: u64,
        /// Periods at the maximum.
        high: u64,
    },
    /// Extension: bursts to the maximum.
    Burst {
        /// Cycle length.
        every: u64,
        /// Burst width.
        width: u64,
    },
    /// Extension: sinusoid.
    Sinusoid {
        /// Wavelength in periods.
        wavelength: u64,
    },
    /// Extension: bounded random walk.
    RandomWalk {
        /// Maximum per-period step, tracks.
        max_step: u64,
        /// Walk seed.
        seed: u64,
    },
}

impl PatternSpec {
    /// Instantiates the pattern over a workload range.
    pub fn build(self, range: WorkloadRange) -> Box<dyn Pattern> {
        match self {
            PatternSpec::Increasing { ramp_periods } => {
                Box::new(IncreasingRamp::new(range, ramp_periods))
            }
            PatternSpec::Decreasing { ramp_periods } => {
                Box::new(DecreasingRamp::new(range, ramp_periods))
            }
            PatternSpec::Triangular { half_period } => {
                Box::new(Triangular::new(range, half_period))
            }
            PatternSpec::Step { low, high } => Box::new(Step::new(range, low, high)),
            PatternSpec::Burst { every, width } => Box::new(Burst::new(range, every, width)),
            PatternSpec::Sinusoid { wavelength } => Box::new(Sinusoid::new(range, wavelength)),
            PatternSpec::RandomWalk { max_step, seed } => {
                Box::new(RandomWalk::new(range, max_step, seed))
            }
        }
    }

    /// Pattern family name.
    pub fn name(self) -> &'static str {
        match self {
            PatternSpec::Increasing { .. } => "increasing-ramp",
            PatternSpec::Decreasing { .. } => "decreasing-ramp",
            PatternSpec::Triangular { .. } => "triangular",
            PatternSpec::Step { .. } => "step",
            PatternSpec::Burst { .. } => "burst",
            PatternSpec::Sinusoid { .. } => "sinusoid",
            PatternSpec::RandomWalk { .. } => "random-walk",
        }
    }
}

/// Which resource-management policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum PolicySpec {
    /// The paper's predictive algorithm.
    Predictive,
    /// The paper's non-predictive baseline.
    NonPredictive,
    /// Extension baseline: one least-utilized replica per round, no
    /// forecast.
    Incremental,
    /// No adaptation at all (static single placement).
    None,
}

impl PolicySpec {
    /// Policy name.
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::Predictive => "predictive",
            PolicySpec::NonPredictive => "non-predictive",
            PolicySpec::Incremental => "incremental",
            PolicySpec::None => "static",
        }
    }
}

/// Full scenario description.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Workload pattern.
    pub pattern: PatternSpec,
    /// Policy under test.
    pub policy: PolicySpec,
    /// Workload interval (min/max tracks per period).
    pub workload: WorkloadRange,
    /// Number of 1 s periods to simulate.
    pub n_periods: u64,
    /// Ambient Poisson background utilization per node, `[0, 1)`.
    pub ambient_util: f64,
    /// Master seed.
    pub seed: u64,
    /// CPU scheduling policy on every node (Table 1: round-robin 1 ms).
    pub scheduler: SchedulerKind,
    /// Enable online Eq. (3) model refinement in the manager (extension).
    pub online_refinement: bool,
    /// Fault plan: `(node index, failure time in whole seconds)` pairs.
    /// These are legacy *permanent* fail-stop faults; for crash–restart
    /// and degraded-network faults see [`ScenarioConfig::faults`].
    pub failures: Vec<(u32, u64)>,
    /// Failure-realism plan: lossy/duplicating bus, retransmission,
    /// jamming, and crash–restart faults. Defaults to everything off, in
    /// which case the run is byte-identical to a scenario without the
    /// field.
    pub faults: FaultPlan,
    /// Observability sinks: event trace and decision audit. Defaults to
    /// everything off; enabling them never changes simulation outcomes
    /// (zero observer effect), it only fills [`ScenarioResult::trace`]
    /// and [`ScenarioResult::decisions`].
    pub observe: ObserveConfig,
    /// Background-load fast path (see `ClusterConfig::bg_fast_path`).
    /// Byte-identical on or off; off (`--no-bg-ff`) exists for A/B
    /// verification and debugging. Default: on.
    pub bg_fast_path: bool,
}

/// Opt-in observability for one scenario run. Everything defaults to off;
/// each knob only *collects* data — decisions, placements, metrics, and
/// figures are identical with or without it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ObserveConfig {
    /// Capacity of the in-memory [`TraceSink`] (ordinary events beyond it
    /// are dropped; failure-class events are always kept). `None`
    /// disables tracing entirely.
    pub trace_capacity: Option<usize>,
    /// Collect a [`DecisionRecord`] stream from the resource manager
    /// explaining every replicate / shut-down / no-op choice.
    pub decisions: bool,
}

impl ObserveConfig {
    /// Trace capacity used by [`ObserveConfig::full`] — generous enough
    /// for any paper-scale run without risking unbounded growth.
    pub const FULL_TRACE_CAPACITY: usize = 1 << 16;

    /// Everything on: bounded trace plus decision audit.
    pub fn full() -> Self {
        ObserveConfig {
            trace_capacity: Some(Self::FULL_TRACE_CAPACITY),
            decisions: true,
        }
    }
}

/// Declarative failure-realism configuration for a scenario: the knobs of
/// the degraded-mode experiments. `FaultPlan::default()` disables every
/// feature and leaves runs byte-identical to the clean baseline.
#[derive(Debug, Clone, Default, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Per-message corruption probability on the shared bus, `[0, 1]`.
    pub drop_prob: f64,
    /// Per-message spurious-duplication probability, `[0, 1]`.
    pub dup_prob: f64,
    /// Sender-side retransmit timeout in microseconds; 0 disables
    /// retransmission (losses are then final).
    pub retx_timeout_us: u64,
    /// Optional transient bandwidth-degradation window.
    pub jam: Option<JamWindow>,
    /// Crash–restart faults, in schedule order.
    pub crashes: Vec<CrashFault>,
}

/// One crash–restart fault in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CrashFault {
    /// Node index to crash.
    pub node: u32,
    /// Crash time, whole seconds from the start of the run.
    pub at_s: u64,
    /// Restart delay in whole seconds; `None` means the node never comes
    /// back (but unlike `ScenarioConfig::failures`, the crash still tears
    /// down its in-flight traffic).
    pub restart_after_s: Option<u64>,
}

impl FaultPlan {
    /// True when any failure-realism feature is enabled.
    pub fn is_active(&self) -> bool {
        *self != FaultPlan::default()
    }
}

impl ScenarioConfig {
    /// The paper's evaluation defaults for a given pattern, policy and
    /// maximum workload (in tracks): minimum workload 500 tracks, 240
    /// periods, 10 % ambient load.
    pub fn paper(pattern: PatternSpec, policy: PolicySpec, max_tracks: u64) -> Self {
        ScenarioConfig {
            pattern,
            policy,
            workload: WorkloadRange::new(500.min(max_tracks), max_tracks),
            n_periods: 240,
            ambient_util: 0.10,
            seed: 0x5EED,
            scheduler: SchedulerKind::paper_baseline(),
            online_refinement: false,
            failures: Vec::new(),
            faults: FaultPlan::default(),
            observe: ObserveConfig::default(),
            bg_fast_path: true,
        }
    }
}

/// Everything produced by one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The four paper metrics.
    pub summary: RunSummary,
    /// Combined-metric breakdown.
    pub breakdown: CombinedBreakdown,
    /// Raw run metrics, for detailed analysis.
    pub metrics: RunMetrics,
    /// Policy that ran.
    pub policy: &'static str,
    /// Event trace, when [`ObserveConfig::trace_capacity`] was set.
    pub trace: Option<TraceSink>,
    /// Decision-audit records in emission order, when
    /// [`ObserveConfig::decisions`] was set (always empty for
    /// [`PolicySpec::None`], which makes no decisions).
    pub decisions: Vec<(SimTime, DecisionRecord)>,
}

/// Indices of the replicable stages, for summarization.
pub fn replicable_stage_indices() -> [usize; 2] {
    [FILTER_STAGE, EVAL_DECIDE_STAGE]
}

/// Builds and runs one scenario with the given predictor (shared by both
/// policies — the non-predictive algorithm uses it only for EQF deadline
/// estimation, exactly as §4.1 prescribes).
pub fn run_scenario(cfg: &ScenarioConfig, predictor: &Predictor) -> ScenarioResult {
    assert!(cfg.n_periods > 0, "empty scenario");
    assert!((0.0..1.0).contains(&cfg.ambient_util), "ambient must be in [0,1)");
    let horizon = SimDuration::from_secs(cfg.n_periods);
    let mut cluster_cfg = ClusterConfig::paper_baseline(cfg.seed, horizon);
    cluster_cfg.clock = ClockConfig::lan_default();
    cluster_cfg.scheduler = cfg.scheduler;
    cluster_cfg.bus.drop_prob = cfg.faults.drop_prob;
    cluster_cfg.bus.dup_prob = cfg.faults.dup_prob;
    cluster_cfg.bus.retx_timeout_us = cfg.faults.retx_timeout_us;
    cluster_cfg.bus.jam = cfg.faults.jam;
    cluster_cfg.bg_fast_path = cfg.bg_fast_path;
    let mut cluster = Cluster::new(cluster_cfg);

    let task = aaw_task();
    let pattern = cfg.pattern.build(cfg.workload);
    cluster.add_task(task, adapt(pattern));

    if cfg.ambient_util > 0.0 {
        for n in 0..6 {
            cluster.add_load(Box::new(PoissonLoad::with_utilization(
                LoadGenId(n),
                NodeId(n),
                cfg.ambient_util,
                SimDuration::from_millis(2),
            )));
        }
    }

    if let Some(capacity) = cfg.observe.trace_capacity {
        cluster.enable_trace(capacity);
    }
    // The decision sink is shared: the manager (consumed by the cluster)
    // records through one handle; this function drains the other after
    // the run has dropped the manager.
    let decision_sink = (cfg.observe.decisions && cfg.policy != PolicySpec::None).then(|| {
        Arc::new(Mutex::new(BoundedSink::<DecisionRecord>::bounded(
            ObserveConfig::FULL_TRACE_CAPACITY,
        )))
    });

    let arm_config = |mut c: ArmConfig| {
        c.online_refinement = cfg.online_refinement;
        c
    };
    let manager_for = |c: ArmConfig| {
        let mut m = ResourceManager::new(arm_config(c), predictor.clone());
        if let Some(sink) = &decision_sink {
            m.set_decision_sink(Box::new(Arc::clone(sink)));
        }
        m
    };
    match cfg.policy {
        PolicySpec::Predictive => {
            cluster.set_controller(Box::new(manager_for(ArmConfig::paper_predictive())));
        }
        PolicySpec::NonPredictive => {
            cluster.set_controller(Box::new(manager_for(ArmConfig::paper_nonpredictive())));
        }
        PolicySpec::Incremental => {
            cluster.set_controller(Box::new(manager_for(ArmConfig::incremental())));
        }
        PolicySpec::None => {}
    }

    for &(node, at_s) in &cfg.failures {
        cluster.fail_node_at(rtds_sim::ids::NodeId(node), SimTime::from_secs(at_s));
    }
    for &CrashFault { node, at_s, restart_after_s } in &cfg.faults.crashes {
        cluster.crash_node_at(
            rtds_sim::ids::NodeId(node),
            SimTime::from_secs(at_s),
            restart_after_s.map(SimDuration::from_secs),
        );
    }

    if crate::perfmon::enabled() {
        cluster.enable_perf(crate::perfmon::probe());
    }
    let outcome = cluster.run();
    if let Some(p) = &outcome.perf {
        crate::perfmon::record(p);
    }
    let summary = outcome
        .metrics
        .summarize(&replicable_stage_indices());
    let breakdown = combined_breakdown(&summary, 6);
    // `run` consumed the cluster and with it the manager, so this is the
    // last handle to the decision sink.
    let decisions = decision_sink
        .map(|sink| {
            Arc::try_unwrap(sink)
                .map(|m| {
                    m.into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .into_events()
                })
                .unwrap_or_default()
        })
        .unwrap_or_default();
    ScenarioResult {
        summary,
        breakdown,
        metrics: outcome.metrics,
        policy: cfg.policy.name(),
        trace: outcome.trace,
        decisions,
    }
}

fn adapt(mut p: Box<dyn Pattern>) -> Box<dyn FnMut(u64) -> u64 + Send> {
    Box::new(move |period| p.tracks_at(period))
}

/// Convenience: run the same scenario under both paper policies.
pub fn run_both_policies(
    base: &ScenarioConfig,
    predictor: &Predictor,
) -> (ScenarioResult, ScenarioResult) {
    let mut p = base.clone();
    p.policy = PolicySpec::Predictive;
    let mut n = base.clone();
    n.policy = PolicySpec::NonPredictive;
    (run_scenario(&p, predictor), run_scenario(&n, predictor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::quick_predictor;

    fn quick_cfg(policy: PolicySpec, max: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper(
            PatternSpec::Triangular { half_period: 10 },
            policy,
            max,
        );
        c.n_periods = 40;
        c
    }

    #[test]
    fn light_load_meets_all_deadlines_without_adaptation() {
        let r = run_scenario(&quick_cfg(PolicySpec::None, 2_000), &quick_predictor());
        assert_eq!(r.summary.missed_deadline_pct, 0.0, "{:?}", r.summary);
        assert!(r.summary.avg_replicas >= 1.0 && r.summary.avg_replicas < 1.01);
        assert_eq!(r.policy, "static");
    }

    #[test]
    fn heavy_load_without_adaptation_misses_deadlines() {
        let r = run_scenario(&quick_cfg(PolicySpec::None, 17_500), &quick_predictor());
        assert!(
            r.summary.missed_deadline_pct > 10.0,
            "static placement must collapse at max workload: {:?}",
            r.summary
        );
    }

    #[test]
    fn predictive_policy_rescues_heavy_load() {
        let p = quick_predictor();
        let none = run_scenario(&quick_cfg(PolicySpec::None, 14_000), &p);
        let pred = run_scenario(&quick_cfg(PolicySpec::Predictive, 14_000), &p);
        assert!(
            pred.summary.missed_deadline_pct < none.summary.missed_deadline_pct,
            "predictive {:?} vs static {:?}",
            pred.summary,
            none.summary
        );
        assert!(pred.summary.avg_replicas > 1.0, "replication happened");
        assert!(pred.summary.placement_changes > 0);
    }

    #[test]
    fn nonpredictive_uses_more_replicas_than_predictive() {
        let p = quick_predictor();
        let pred = run_scenario(&quick_cfg(PolicySpec::Predictive, 14_000), &p);
        let nonp = run_scenario(&quick_cfg(PolicySpec::NonPredictive, 14_000), &p);
        assert!(
            nonp.summary.avg_replicas > pred.summary.avg_replicas,
            "paper's headline resource contrast: non-predictive {} vs predictive {}",
            nonp.summary.avg_replicas,
            pred.summary.avg_replicas
        );
    }

    #[test]
    fn results_are_deterministic() {
        let p = quick_predictor();
        let a = run_scenario(&quick_cfg(PolicySpec::Predictive, 10_000), &p);
        let b = run_scenario(&quick_cfg(PolicySpec::Predictive, 10_000), &p);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn pattern_spec_builds_all_variants() {
        let range = WorkloadRange::new(100, 1_000);
        for (spec, name) in [
            (PatternSpec::Increasing { ramp_periods: 10 }, "increasing-ramp"),
            (PatternSpec::Decreasing { ramp_periods: 10 }, "decreasing-ramp"),
            (PatternSpec::Triangular { half_period: 5 }, "triangular"),
            (PatternSpec::Step { low: 2, high: 2 }, "step"),
            (PatternSpec::Burst { every: 5, width: 1 }, "burst"),
            (PatternSpec::Sinusoid { wavelength: 10 }, "sinusoid"),
            (PatternSpec::RandomWalk { max_step: 50, seed: 1 }, "random-walk"),
        ] {
            let mut p = spec.build(range);
            assert_eq!(spec.name(), name);
            assert_eq!(p.name(), name);
            for i in 0..20 {
                let v = p.tracks_at(i);
                assert!((100..=1_000).contains(&v), "{name} out of range: {v}");
            }
        }
    }

    #[test]
    fn run_both_policies_returns_matching_pair() {
        let p = quick_predictor();
        let base = quick_cfg(PolicySpec::Predictive, 5_000);
        let (pred, nonp) = run_both_policies(&base, &p);
        assert_eq!(pred.policy, "predictive");
        assert_eq!(nonp.policy, "non-predictive");
    }
}
