//! Process-global performance monitoring for `--perf` runs.
//!
//! The figure binaries run many simulations through [`crate::scenario`];
//! threading a perf flag through every call site would ripple the
//! scenario API for a purely diagnostic concern. Instead this module
//! holds one process-global switch plus an aggregate: when enabled,
//! every [`crate::scenario::run_scenario`] call instruments its cluster
//! and folds the resulting [`PerfReport`] into the aggregate, which the
//! binary prints at exit.
//!
//! The optional allocation probe is a monotone allocation counter. The
//! library crates forbid `unsafe`, so a binary that wants allocation
//! numbers (`run_all --perf`) installs its own counting global allocator
//! and registers the reader here.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use rtds_sim::perf::{PerfReport, PHASE_NAMES};

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROBE: OnceLock<fn() -> u64> = OnceLock::new();
static AGG: Mutex<Option<Aggregate>> = Mutex::new(None);

/// Sum of all instrumented runs so far.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Instrumented simulation runs recorded.
    pub runs: u64,
    /// Runs whose report carried an allocation count (probe installed).
    pub alloc_runs: u64,
    /// Control epochs contributed by those probed runs only.
    pub alloc_epochs: u64,
    /// Element-wise sum of every run's report.
    pub report: PerfReport,
}

/// Turns instrumentation on for all subsequent scenario runs in this
/// process. `alloc_probe`, if given, must be a monotone allocation
/// counter (typically backed by a counting global allocator).
pub fn enable(alloc_probe: Option<fn() -> u64>) {
    if let Some(p) = alloc_probe {
        let _ = PROBE.set(p);
    }
    ENABLED.store(true, Ordering::Release);
}

/// Whether `--perf` instrumentation is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The registered allocation probe, if any.
pub fn probe() -> Option<fn() -> u64> {
    PROBE.get().copied()
}

/// Clears the aggregate so a new batch of runs starts from zero.
///
/// The aggregate is process-global; without this, consecutive batches in
/// one process (`run_all` invoking several figures, or a binary reused
/// for a second sweep) silently fold into each other and the printed
/// "aggregated over N runs" counts work from the previous batch. The
/// enable switch and the allocation probe are *not* cleared — the probe
/// is a process-lifetime reader and `OnceLock` can't be unset.
pub fn reset() {
    *AGG.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Folds one run's report into the process aggregate.
pub fn record(r: &PerfReport) {
    let mut guard = AGG.lock().unwrap_or_else(|e| e.into_inner());
    let agg = guard.get_or_insert_with(Aggregate::default);
    agg.runs += 1;
    for i in 0..PHASE_NAMES.len() {
        agg.report.events[i] += r.events[i];
        agg.report.ns[i] += r.ns[i];
    }
    agg.report.queue.scheduled += r.queue.scheduled;
    agg.report.queue.popped += r.queue.popped;
    agg.report.queue.cancelled += r.queue.cancelled;
    agg.report.queue.compactions += r.queue.compactions;
    agg.report.queue.heap_high_water =
        agg.report.queue.heap_high_water.max(r.queue.heap_high_water);
    agg.report.elided_dispatches += r.elided_dispatches;
    agg.report.elided_bg_polls += r.elided_bg_polls;
    agg.report.elided_bg_dispatches += r.elided_bg_dispatches;
    agg.report.control_epochs += r.control_epochs;
    agg.report.controller_ns += r.controller_ns;
    if let Some(a) = r.epoch_allocs {
        *agg.report.epoch_allocs.get_or_insert(0) += a;
        agg.alloc_runs += 1;
        agg.alloc_epochs += r.control_epochs;
    }
    agg.report.wall_ns += r.wall_ns;
}

/// A snapshot of the aggregate, if any runs were recorded.
pub fn snapshot() -> Option<Aggregate> {
    AGG.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Renders the aggregate for end-of-run printing; `None` when
/// instrumentation was off or nothing ran.
pub fn summary() -> Option<String> {
    let agg = snapshot()?;
    let mut report = agg.report;
    let mut alloc_note = String::new();
    if agg.alloc_runs > 0 && agg.alloc_runs < agg.runs {
        // Partial probe coverage: `render()` would divide the probed
        // allocation count by *every* run's epochs, understating the
        // per-epoch rate. Suppress its line and print the honest ratio
        // over the probed epochs only.
        let allocs = report.epoch_allocs.take().unwrap_or(0);
        let per = if agg.alloc_epochs == 0 {
            0.0
        } else {
            allocs as f64 / agg.alloc_epochs as f64
        };
        alloc_note = format!(
            "  allocs: {} over {} probed epochs in {}/{} runs (allocs/epoch={:.1})\n",
            allocs, agg.alloc_epochs, agg.alloc_runs, agg.runs, per
        );
    }
    Some(format!(
        "== perf (aggregated over {} simulation runs) ==\n{}{}",
        agg.runs,
        report.render(),
        alloc_note
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The switch and aggregate are process-global, so the whole
    // lifecycle lives in ONE test: parallel sibling tests calling
    // reset()/record() would race each other on the shared AGG. The
    // test never calls enable() (which would leak instrumentation into
    // every other test sharing the process).

    #[test]
    fn aggregate_lifecycle_accumulates_resets_and_reports_partial_probes() {
        reset();
        assert!(snapshot().is_none(), "reset leaves no aggregate");
        assert!(summary().is_none());

        // Two identical probe-less runs accumulate.
        let mut r = PerfReport::default();
        r.events[1] = 5;
        r.ns[1] = 500;
        r.queue.popped = 5;
        r.queue.heap_high_water = 7;
        r.control_epochs = 2;
        r.wall_ns = 1_000;
        record(&r);
        record(&r);
        let agg = snapshot().expect("aggregate exists");
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.alloc_runs, 0);
        assert_eq!(agg.report.events[1], 10);
        assert_eq!(agg.report.queue.popped, 10);
        assert_eq!(agg.report.queue.heap_high_water, 7);
        assert!(summary().expect("non-empty").contains("dispatch"));

        // A third, probed run: allocation coverage is now partial, so
        // the summary must report the rate over probed epochs only
        // (120 allocs / 3 probed epochs = 40), not the diluted
        // 120 / 7 ≈ 17 that folding into one report would suggest.
        let mut probed = r.clone();
        probed.control_epochs = 3;
        probed.epoch_allocs = Some(120);
        record(&probed);
        let agg = snapshot().expect("aggregate exists");
        assert_eq!(agg.runs, 3);
        assert_eq!(agg.alloc_runs, 1);
        assert_eq!(agg.alloc_epochs, 3);
        assert_eq!(agg.report.epoch_allocs, Some(120));
        let s = summary().expect("non-empty");
        assert!(
            s.contains("allocs: 120 over 3 probed epochs in 1/3 runs (allocs/epoch=40.0)"),
            "partial-probe line missing or dishonest:\n{s}"
        );
        assert!(
            !s.contains("allocs/epoch=17"),
            "diluted ratio leaked into the summary:\n{s}"
        );

        // Full coverage: render()'s own ratio is already honest, so no
        // extra note appears.
        reset();
        record(&probed);
        let s = summary().expect("non-empty");
        assert!(s.contains("allocs/epoch=40.0"), "{s}");
        assert!(!s.contains("probed epochs in"), "{s}");

        // And a batch restart starts the count from zero again.
        reset();
        assert!(snapshot().is_none());
    }
}
