//! Process-global performance monitoring for `--perf` runs.
//!
//! The figure binaries run many simulations through [`crate::scenario`];
//! threading a perf flag through every call site would ripple the
//! scenario API for a purely diagnostic concern. Instead this module
//! holds one process-global switch plus an aggregate: when enabled,
//! every [`crate::scenario::run_scenario`] call instruments its cluster
//! and folds the resulting [`PerfReport`] into the aggregate, which the
//! binary prints at exit.
//!
//! The optional allocation probe is a monotone allocation counter. The
//! library crates forbid `unsafe`, so a binary that wants allocation
//! numbers (`run_all --perf`) installs its own counting global allocator
//! and registers the reader here.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use rtds_sim::perf::{PerfReport, PHASE_NAMES};

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROBE: OnceLock<fn() -> u64> = OnceLock::new();
static AGG: Mutex<Option<Aggregate>> = Mutex::new(None);

/// Sum of all instrumented runs so far.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Instrumented simulation runs recorded.
    pub runs: u64,
    /// Element-wise sum of every run's report.
    pub report: PerfReport,
}

/// Turns instrumentation on for all subsequent scenario runs in this
/// process. `alloc_probe`, if given, must be a monotone allocation
/// counter (typically backed by a counting global allocator).
pub fn enable(alloc_probe: Option<fn() -> u64>) {
    if let Some(p) = alloc_probe {
        let _ = PROBE.set(p);
    }
    ENABLED.store(true, Ordering::Release);
}

/// Whether `--perf` instrumentation is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The registered allocation probe, if any.
pub fn probe() -> Option<fn() -> u64> {
    PROBE.get().copied()
}

/// Folds one run's report into the process aggregate.
pub fn record(r: &PerfReport) {
    let mut guard = AGG.lock().expect("perf aggregate poisoned");
    let agg = guard.get_or_insert_with(Aggregate::default);
    agg.runs += 1;
    for i in 0..PHASE_NAMES.len() {
        agg.report.events[i] += r.events[i];
        agg.report.ns[i] += r.ns[i];
    }
    agg.report.queue.scheduled += r.queue.scheduled;
    agg.report.queue.popped += r.queue.popped;
    agg.report.queue.cancelled += r.queue.cancelled;
    agg.report.queue.compactions += r.queue.compactions;
    agg.report.queue.heap_high_water =
        agg.report.queue.heap_high_water.max(r.queue.heap_high_water);
    agg.report.elided_dispatches += r.elided_dispatches;
    agg.report.control_epochs += r.control_epochs;
    agg.report.controller_ns += r.controller_ns;
    if let Some(a) = r.epoch_allocs {
        *agg.report.epoch_allocs.get_or_insert(0) += a;
    }
    agg.report.wall_ns += r.wall_ns;
}

/// A snapshot of the aggregate, if any runs were recorded.
pub fn snapshot() -> Option<Aggregate> {
    AGG.lock().expect("perf aggregate poisoned").clone()
}

/// Renders the aggregate for end-of-run printing; `None` when
/// instrumentation was off or nothing ran.
pub fn summary() -> Option<String> {
    let agg = snapshot()?;
    Some(format!(
        "== perf (aggregated over {} simulation runs) ==\n{}",
        agg.runs,
        agg.report.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the switch and aggregate are process-global, so these tests
    // only exercise pure accumulation, not enable() (which would leak
    // into sibling tests running in the same process).

    #[test]
    fn record_accumulates_runs_and_counters() {
        let mut r = PerfReport::default();
        r.events[1] = 5;
        r.ns[1] = 500;
        r.queue.popped = 5;
        r.queue.heap_high_water = 7;
        r.control_epochs = 2;
        r.wall_ns = 1_000;
        record(&r);
        record(&r);
        let agg = snapshot().expect("aggregate exists");
        assert!(agg.runs >= 2);
        assert!(agg.report.events[1] >= 10);
        assert!(agg.report.queue.popped >= 10);
        assert!(agg.report.queue.heap_high_water >= 7);
        assert!(summary().expect("non-empty").contains("dispatch"));
    }
}
