//! Fitted prediction models for the evaluation scenarios.
//!
//! The predictive algorithm needs an Eq. (3) model per subtask and an
//! Eq. (5) buffer-delay slope. [`fitted_predictor`] runs the full
//! profiling campaign against the simulator (once per process, cached) and
//! fits them with the paper's two-stage procedure; [`quick_predictor`]
//! uses the closed-form analytic models for tests and fast runs.

use std::sync::OnceLock;

use rtds_arm::predictor::{analytic_predictor, Predictor};
use rtds_dynbench::app::aaw_task;
use rtds_dynbench::profile::{profile_buffer_delay, profile_execution, ProfileConfig};
use rtds_dynbench::ProfileData;
use rtds_regression::buffer::{BufferDelayModel, CommDelayModel};
use rtds_regression::model::ExecLatencyModel;

/// Link speed used by every communication model (Table 1: 100 Mbps).
pub const LINK_BPS: f64 = 100e6;

/// The profiling grid used for the cached fitted predictor.
pub fn campaign_config() -> ProfileConfig {
    ProfileConfig {
        utilizations_pct: vec![10.0, 30.0, 50.0, 70.0],
        data_sizes: vec![500, 2_000, 5_000, 9_000, 13_000, 17_500],
        periods_per_point: 4,
        warmup_periods: 2,
        seed: 0xF17_7ED,
    }
}

/// Runs the full profiling campaign and fits every model. Exposed so the
/// `tables` binary can show raw samples and fit statistics.
pub fn run_campaign() -> ProfileData {
    let task = aaw_task();
    let cfg = campaign_config();
    let mut data = ProfileData {
        seed: cfg.seed,
        ..Default::default()
    };
    for (j, stage) in task.stages.iter().enumerate() {
        data.exec_samples
            .insert(j, profile_execution(stage.cost, &cfg));
    }
    data.buffer_samples = profile_buffer_delay(&cfg, 3);
    data.fit_all();
    data
}

/// Builds a predictor from a fitted campaign.
///
/// # Panics
/// Panics if the campaign failed to fit any stage or the buffer slope.
pub fn predictor_from_profile(data: &ProfileData) -> Predictor {
    let task = aaw_task();
    let models: Vec<ExecLatencyModel> = (0..task.n_stages())
        .map(|j| {
            *data
                .exec_models
                .get(&j)
                .unwrap_or_else(|| panic!("campaign did not fit stage {j}"))
        })
        .collect();
    let buffer = data.buffer_model.expect("campaign did not fit buffer slope");
    Predictor::new(&task, models, CommDelayModel::new(buffer, LINK_BPS))
}

/// The profile-fitted predictor, computed once per process.
pub fn fitted_predictor() -> &'static Predictor {
    static CACHE: OnceLock<Predictor> = OnceLock::new();
    CACHE.get_or_init(|| predictor_from_profile(&run_campaign()))
}

/// A cheap analytic predictor (no profiling run) with the paper's Table 3
/// buffer slope. Used by tests and `--quick` runs.
pub fn quick_predictor() -> Predictor {
    analytic_predictor(
        &aaw_task(),
        CommDelayModel::new(BufferDelayModel::from_slope(0.0005), LINK_BPS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_predictor_covers_all_stages() {
        let p = quick_predictor();
        assert_eq!(p.n_stages(), 5);
        assert!(p.eex(2, 5_000, 30.0).as_millis_f64() > 0.0);
    }

    #[test]
    fn campaign_config_spans_the_operating_envelope() {
        let c = campaign_config();
        assert!(c.utilizations_pct.len() >= 3, "two-stage fit needs 3 levels");
        assert!(c.data_sizes.iter().any(|&d| d >= 17_500), "covers max workload");
        assert!(c.data_sizes.iter().any(|&d| d <= 1_000), "covers min workload");
    }
}
