//! Property-based tests of the numeric substrate.

use proptest::prelude::*;
use rtds_regression::{Matrix, Polynomial, SimpleLinear};

/// A deterministic well-conditioned matrix: diagonally dominant.
fn dd_matrix(n: usize, entries: &[f64]) -> Matrix {
    let mut data = vec![0.0; n * n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = entries[(i * n + j) % entries.len()] % 1.0;
                data[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        data[i * n + i] = row_sum + 1.0 + entries[i % entries.len()].abs();
    }
    Matrix::from_rows(n, n, data)
}

proptest! {
    /// `solve(A, A·x) == x` for diagonally dominant A.
    #[test]
    fn solve_round_trips_through_matvec(
        n in 1usize..8,
        entries in prop::collection::vec(-1.0f64..1.0, 8..64),
        x_seed in prop::collection::vec(-100.0f64..100.0, 8),
    ) {
        let a = dd_matrix(n, &entries);
        let x: Vec<f64> = x_seed[..n].to_vec();
        let b = a.matvec(&x);
        let solved = a.solve(&b).unwrap();
        for (got, want) in solved.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()),
                "{got} vs {want}");
        }
    }

    /// Least-squares residuals are orthogonal to the column space:
    /// `Aᵀ (A x − b) ≈ 0`.
    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        rows in 6usize..20,
        b in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        // Fixed well-conditioned design: [1, t, t^2] at distinct points.
        let cols = 3;
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            let t = i as f64 / rows as f64 * 4.0 - 2.0;
            data.extend_from_slice(&[1.0, t, t * t]);
        }
        let a = Matrix::from_rows(rows, cols, data);
        let b = &b[..rows];
        let x = a.lstsq(b).unwrap();
        let pred = a.matvec(&x);
        let residual: Vec<f64> = pred.iter().zip(b).map(|(p, y)| p - y).collect();
        let at_r = a.transpose().matvec(&residual);
        let scale: f64 = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for v in at_r {
            prop_assert!(v.abs() < 1e-7 * scale * rows as f64, "non-orthogonal: {v}");
        }
    }

    /// A line fit is translation-equivariant: shifting y by c shifts the
    /// intercept by c and leaves the slope unchanged.
    #[test]
    fn line_fit_translation_equivariance(
        ys in prop::collection::vec(-50.0f64..50.0, 4..20),
        shift in -100.0f64..100.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let base = SimpleLinear::fit(&xs, &ys).unwrap();
        let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let moved = SimpleLinear::fit(&xs, &shifted).unwrap();
        prop_assert!((base.slope - moved.slope).abs() < 1e-8 * (1.0 + base.slope.abs()));
        prop_assert!((base.intercept + shift - moved.intercept).abs()
            < 1e-8 * (1.0 + moved.intercept.abs()));
    }

    /// Polynomial evaluation is exact at the sample points whenever the
    /// fit is exact-degree (n = degree + 1 distinct points: interpolation).
    #[test]
    fn exact_degree_fit_interpolates(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0, c2 in -2.0f64..2.0,
    ) {
        let xs = [0.0, 1.0, 2.0];
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((p.eval(x) - y).abs() < 1e-7 * (1.0 + y.abs()));
        }
    }

    /// R² of a simple line fit is scale-invariant in y (for non-constant y
    /// and nonzero scale).
    #[test]
    fn r2_is_scale_invariant(
        ys in prop::collection::vec(-50.0f64..50.0, 4..20),
        scale in 0.1f64..10.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        // Skip effectively-constant targets: R² is degenerate there.
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        prop_assume!(ys.iter().any(|y| (y - mean).abs() > 1e-3));
        let a = SimpleLinear::fit(&xs, &ys).unwrap();
        let scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let b = SimpleLinear::fit(&xs, &scaled).unwrap();
        prop_assert!((a.stats.r2 - b.stats.r2).abs() < 1e-7,
            "{} vs {}", a.stats.r2, b.stats.r2);
    }
}
