//! Property-style tests of the numeric substrate.
//!
//! Originally written with proptest; the build environment has no
//! registry access, so these now drive the same properties from a
//! deterministic in-file generator (xorshift-based). Each property is
//! exercised over a few hundred pseudo-random cases — deterministic,
//! so a failure reproduces exactly.

use rtds_regression::{Matrix, Polynomial, SimpleLinear};

/// Small deterministic generator for test case synthesis.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.0 = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    /// Uniform usize in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A vector of uniform draws.
    fn vec_f64(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// A deterministic well-conditioned matrix: diagonally dominant.
fn dd_matrix(n: usize, entries: &[f64]) -> Matrix {
    let mut data = vec![0.0; n * n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = entries[(i * n + j) % entries.len()] % 1.0;
                data[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        data[i * n + i] = row_sum + 1.0 + entries[i % entries.len()].abs();
    }
    Matrix::from_rows(n, n, data)
}

/// `solve(A, A·x) == x` for diagonally dominant A.
#[test]
fn solve_round_trips_through_matvec() {
    let mut g = Gen::new(1);
    for _ in 0..200 {
        let n = g.usize_in(1, 8);
        let m = g.usize_in(8, 64);
        let entries = g.vec_f64(m, -1.0, 1.0);
        let a = dd_matrix(n, &entries);
        let x = g.vec_f64(n, -100.0, 100.0);
        let b = a.matvec(&x);
        let solved = a.solve(&b).unwrap();
        for (got, want) in solved.iter().zip(&x) {
            assert!(
                (got - want).abs() < 1e-6 * (1.0 + want.abs()),
                "{got} vs {want}"
            );
        }
    }
}

/// Least-squares residuals are orthogonal to the column space:
/// `Aᵀ (A x − b) ≈ 0`.
#[test]
fn lstsq_residual_is_orthogonal_to_columns() {
    let mut g = Gen::new(2);
    for _ in 0..200 {
        let rows = g.usize_in(6, 20);
        // Fixed well-conditioned design: [1, t, t^2] at distinct points.
        let cols = 3;
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            let t = i as f64 / rows as f64 * 4.0 - 2.0;
            data.extend_from_slice(&[1.0, t, t * t]);
        }
        let a = Matrix::from_rows(rows, cols, data);
        let b = g.vec_f64(rows, -10.0, 10.0);
        let x = a.lstsq(&b).unwrap();
        let pred = a.matvec(&x);
        let residual: Vec<f64> = pred.iter().zip(&b).map(|(p, y)| p - y).collect();
        let at_r = a.transpose().matvec(&residual);
        let scale: f64 = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for v in at_r {
            assert!(v.abs() < 1e-7 * scale * rows as f64, "non-orthogonal: {v}");
        }
    }
}

/// A line fit is translation-equivariant: shifting y by c shifts the
/// intercept by c and leaves the slope unchanged.
#[test]
fn line_fit_translation_equivariance() {
    let mut g = Gen::new(3);
    for _ in 0..300 {
        let n = g.usize_in(4, 20);
        let ys = g.vec_f64(n, -50.0, 50.0);
        let shift = g.f64_in(-100.0, 100.0);
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let base = SimpleLinear::fit(&xs, &ys).unwrap();
        let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let moved = SimpleLinear::fit(&xs, &shifted).unwrap();
        assert!((base.slope - moved.slope).abs() < 1e-8 * (1.0 + base.slope.abs()));
        assert!(
            (base.intercept + shift - moved.intercept).abs()
                < 1e-8 * (1.0 + moved.intercept.abs())
        );
    }
}

/// Polynomial evaluation is exact at the sample points whenever the
/// fit is exact-degree (n = degree + 1 distinct points: interpolation).
#[test]
fn exact_degree_fit_interpolates() {
    let mut g = Gen::new(4);
    for _ in 0..300 {
        let c0 = g.f64_in(-5.0, 5.0);
        let c1 = g.f64_in(-5.0, 5.0);
        let c2 = g.f64_in(-2.0, 2.0);
        let xs = [0.0, 1.0, 2.0];
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((p.eval(x) - y).abs() < 1e-7 * (1.0 + y.abs()));
        }
    }
}

/// R² of a simple line fit is scale-invariant in y (for non-constant y
/// and nonzero scale).
#[test]
fn r2_is_scale_invariant() {
    let mut g = Gen::new(5);
    let mut tested = 0;
    for _ in 0..400 {
        let n = g.usize_in(4, 20);
        let ys = g.vec_f64(n, -50.0, 50.0);
        let scale = g.f64_in(0.1, 10.0);
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        // Skip effectively-constant targets: R² is degenerate there.
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        if !ys.iter().any(|y| (y - mean).abs() > 1e-3) {
            continue;
        }
        tested += 1;
        let a = SimpleLinear::fit(&xs, &ys).unwrap();
        let scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let b = SimpleLinear::fit(&xs, &scaled).unwrap();
        assert!(
            (a.stats.r2 - b.stats.r2).abs() < 1e-7,
            "{} vs {}",
            a.stats.r2,
            b.stats.r2
        );
    }
    assert!(tested > 100, "generator produced too few usable cases");
}
