//! Small dense matrices and linear solvers.
//!
//! The regression problems in this crate are tiny (≤ 10 unknowns, hundreds
//! of rows), so a straightforward row-major dense matrix with Gaussian
//! elimination and Householder QR is the right tool — no external linear
//! algebra dependency needed.

use core::fmt;

/// Errors from linear solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The system is singular (or numerically so) at the given pivot column.
    Singular {
        /// Column where elimination failed.
        column: usize,
    },
    /// Dimensions do not line up.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
    /// The least-squares system is underdetermined (fewer rows than
    /// unknowns).
    Underdetermined {
        /// Number of rows supplied.
        rows: usize,
        /// Number of unknowns requested.
        cols: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "singular system (pivot at column {column} is ~0)")
            }
            SolveError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            SolveError::Underdetermined { rows, cols } => {
                write!(f, "underdetermined: {rows} rows for {cols} unknowns")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty matrix");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Solves the square system `A x = b` by Gaussian elimination with
    /// partial pivoting. `self` is consumed conceptually (copied internally).
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if self.rows != self.cols {
            return Err(SolveError::DimensionMismatch {
                what: "solve requires a square matrix",
            });
        }
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch {
                what: "rhs length must equal matrix order",
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let at = |a: &[f64], i: usize, j: usize| a[i * n + j];

        for col in 0..n {
            // Partial pivot: largest absolute value in this column.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, at(&a, r, col).abs()))
                .max_by(|p, q| p.1.partial_cmp(&q.1).expect("no NaN in pivot search"))
                .expect("non-empty range");
            if pivot_val < 1e-12 {
                return Err(SolveError::Singular { column: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let p = at(&a, col, col);
            for r in (col + 1)..n {
                let factor = at(&a, r, col) / p;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * at(&a, col, j);
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in (col + 1)..n {
                s -= at(&a, col, j) * x[j];
            }
            x[col] = s / at(&a, col, col);
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` via Householder QR
    /// — numerically safer than normal equations for the ill-conditioned
    /// polynomial design matrices this crate builds.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn lstsq(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch {
                what: "rhs length must equal row count",
            });
        }
        if self.rows < self.cols {
            return Err(SolveError::Underdetermined {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let m = self.rows;
        let n = self.cols;
        let mut r = self.data.clone();
        let mut qtb = b.to_vec();
        let at = |r: &[f64], i: usize, j: usize| r[i * n + j];

        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm: f64 = (k..m).map(|i| at(&r, i, k).powi(2)).sum::<f64>().sqrt();
            if norm < 1e-14 {
                return Err(SolveError::Singular { column: k });
            }
            if at(&r, k, k) > 0.0 {
                norm = -norm;
            }
            let mut v: Vec<f64> = (k..m).map(|i| at(&r, i, k)).collect();
            v[0] -= norm;
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 < 1e-300 {
                continue;
            }
            // Apply H = I - 2 v vᵀ / ‖v‖² to R columns k..n and to qtb.
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i - k] * at(&r, i, j)).sum();
                let c = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[i * n + j] -= c * v[i - k];
                }
            }
            let dot: f64 = (k..m).map(|i| v[i - k] * qtb[i]).sum();
            let c = 2.0 * dot / vnorm2;
            for i in k..m {
                qtb[i] -= c * v[i - k];
            }
        }
        // Back substitution on the upper-triangular R (top n×n block).
        let mut x = vec![0.0; n];
        for col in (0..n).rev() {
            let pivot = at(&r, col, col);
            if pivot.abs() < 1e-12 {
                return Err(SolveError::Singular { column: col });
            }
            let mut s = qtb[col];
            for j in (col + 1)..n {
                s -= at(&r, col, j) * x[j];
            }
            x[col] = s / pivot;
        }
        Ok(x)
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_solves_trivially() {
        let i = Matrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn solve_known_3x3_system() {
        // x + 2y + z = 8; 2x + y + 3z = 13; x + y + z = 6 → (1, 2, 3).
        let a = Matrix::from_rows(
            3,
            3,
            vec![1.0, 2.0, 1.0, 2.0, 1.0, 3.0, 1.0, 1.0, 1.0],
        );
        let x = a.solve(&[8.0, 13.0, 6.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 5.0], 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn solve_rejects_bad_dimensions() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
        let b = Matrix::identity(2);
        assert!(matches!(
            b.solve(&[1.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_and_matmul() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        let ata = t.matmul(&a);
        assert_eq!(ata.rows(), 3);
        assert_eq!(ata[(0, 0)], 17.0); // 1 + 16
        assert_eq!(ata[(2, 2)], 45.0); // 9 + 36
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_close(&a.matvec(&[1.0, 1.0]), &[3.0, 7.0], 1e-12);
    }

    #[test]
    fn lstsq_exact_system_recovers_solution() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        // b exactly in the column space: x = (2, 5).
        let x = a.lstsq(&[2.0, 5.0, 7.0]).unwrap();
        assert_close(&x, &[2.0, 5.0], 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_minimizes_residual() {
        // Fit y = c to [1, 2, 3]: least squares gives the mean 2.
        let a = Matrix::from_rows(3, 1, vec![1.0, 1.0, 1.0]);
        let x = a.lstsq(&[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[2.0], 1e-12);
    }

    #[test]
    fn lstsq_matches_normal_equations_on_random_problem() {
        // Deterministic pseudo-random data.
        let mut s = 1u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let m = 40;
        let n = 4;
        let mut data = Vec::with_capacity(m * n);
        let mut b = Vec::with_capacity(m);
        for _ in 0..m {
            for _ in 0..n {
                data.push(next());
            }
            b.push(next());
        }
        let a = Matrix::from_rows(m, n, data);
        let x_qr = a.lstsq(&b).unwrap();
        let ata = a.transpose().matmul(&a);
        let atb = a.transpose().matvec(&b);
        let x_ne = ata.solve(&atb).unwrap();
        assert_close(&x_qr, &x_ne, 1e-8);
    }

    #[test]
    fn lstsq_rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lstsq(&[0.0, 0.0]),
            Err(SolveError::Underdetermined { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn lstsq_detects_rank_deficiency() {
        // Second column is a copy of the first.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert!(a.lstsq(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SolveError::Singular { column: 2 }.to_string().contains("column 2"));
        assert!(SolveError::Underdetermined { rows: 1, cols: 5 }
            .to_string()
            .contains("1 rows"));
    }
}
