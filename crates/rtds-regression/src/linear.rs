//! Simple and multiple linear regression.

use crate::matrix::{Matrix, SolveError};
use crate::stats::{fit_stats, FitStats};

/// Ordinary least-squares line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SimpleLinear {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Fit quality on the training data.
    pub stats: FitStats,
}

impl SimpleLinear {
    /// Fits a line to the points.
    ///
    /// # Errors
    /// Fails if fewer than 2 points or all `x` identical.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, SolveError> {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        if xs.len() < 2 {
            return Err(SolveError::Underdetermined {
                rows: xs.len(),
                cols: 2,
            });
        }
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Err(SolveError::Singular { column: 0 });
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        let pred: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        Ok(SimpleLinear {
            slope,
            intercept,
            stats: fit_stats(ys, &pred, 2),
        })
    }

    /// Fits a line through the origin: `y = slope·x`. This is the form of
    /// the paper's Eq. (5), `Dbuf = k · Σ ds(T_i, c)` — zero offered load
    /// implies zero buffer delay.
    pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> Result<Self, SolveError> {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        if xs.is_empty() {
            return Err(SolveError::Underdetermined { rows: 0, cols: 1 });
        }
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        if sxx < 1e-12 {
            return Err(SolveError::Singular { column: 0 });
        }
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let slope = sxy / sxx;
        let pred: Vec<f64> = xs.iter().map(|x| slope * x).collect();
        Ok(SimpleLinear {
            slope,
            intercept: 0.0,
            stats: fit_stats(ys, &pred, 1),
        })
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Multiple linear regression `y = β·features(x)` over an arbitrary design
/// matrix, solved by QR least squares.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct MultipleLinear {
    /// Fitted coefficients, one per design-matrix column.
    pub coefficients: Vec<f64>,
    /// Fit quality on the training data.
    pub stats: FitStats,
}

impl MultipleLinear {
    /// Fits coefficients for the given design rows (each row is the feature
    /// vector of one observation).
    ///
    /// # Errors
    /// Fails if the system is underdetermined or rank-deficient.
    pub fn fit(design_rows: &[Vec<f64>], ys: &[f64]) -> Result<Self, SolveError> {
        assert_eq!(design_rows.len(), ys.len(), "length mismatch");
        if design_rows.is_empty() {
            return Err(SolveError::Underdetermined { rows: 0, cols: 0 });
        }
        let cols = design_rows[0].len();
        assert!(
            design_rows.iter().all(|r| r.len() == cols),
            "ragged design matrix"
        );
        let flat: Vec<f64> = design_rows.iter().flatten().copied().collect();
        let a = Matrix::from_rows(design_rows.len(), cols, flat);
        let coefficients = a.lstsq(ys)?;
        let pred = a.matvec(&coefficients);
        let stats = fit_stats(ys, &pred, cols);
        Ok(MultipleLinear {
            coefficients,
            stats,
        })
    }

    /// Predicted value for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.coefficients.len(), "feature count mismatch");
        features
            .iter()
            .zip(&self.coefficients)
            .map(|(f, c)| f * c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.5).collect();
        let f = SimpleLinear::fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-10);
        assert!((f.intercept - 1.5).abs() < 1e-10);
        assert!((f.stats.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 61.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_fits_approximately() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 5.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let f = SimpleLinear::fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!((f.intercept - 5.0).abs() < 0.1);
        assert!(f.stats.r2 > 0.999);
    }

    #[test]
    fn through_origin_forces_zero_intercept() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [0.9, 2.1, 2.9, 4.1];
        let f = SimpleLinear::fit_through_origin(&xs, &ys).unwrap();
        assert_eq!(f.intercept, 0.0);
        assert!((f.slope - 1.0).abs() < 0.05, "slope {}", f.slope);
    }

    #[test]
    fn through_origin_exact_eq5_shape() {
        // Dbuf = 0.7 * total_load, the paper's Table 3 value.
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.7 * x).collect();
        let f = SimpleLinear::fit_through_origin(&xs, &ys).unwrap();
        assert!((f.slope - 0.7).abs() < 1e-12);
        assert!((f.stats.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_error_cleanly() {
        assert!(SimpleLinear::fit(&[1.0], &[1.0]).is_err());
        assert!(SimpleLinear::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(SimpleLinear::fit_through_origin(&[], &[]).is_err());
        assert!(SimpleLinear::fit_through_origin(&[0.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn multiple_regression_recovers_plane() {
        // y = 2a + 3b - 1 via design [a, b, 1].
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                let (a, b) = (a as f64, b as f64);
                rows.push(vec![a, b, 1.0]);
                ys.push(2.0 * a + 3.0 * b - 1.0);
            }
        }
        let f = MultipleLinear::fit(&rows, &ys).unwrap();
        assert!((f.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((f.coefficients[1] - 3.0).abs() < 1e-9);
        assert!((f.coefficients[2] + 1.0).abs() < 1e-9);
        assert!((f.predict(&[1.0, 1.0, 1.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_regression_rejects_collinear_columns() {
        let rows = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        assert!(MultipleLinear::fit(&rows, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_design_matrix_panics() {
        let rows = vec![vec![1.0, 2.0], vec![2.0]];
        let _ = MultipleLinear::fit(&rows, &[1.0, 2.0]);
    }
}
