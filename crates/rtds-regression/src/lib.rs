//! # rtds-regression — statistical regression substrate
//!
//! The regression machinery behind the predictive resource-management
//! algorithm of Ravindran & Hegazy (IPPS 2001):
//!
//! * [`matrix`] — small dense matrices, Gaussian elimination, Householder
//!   QR least squares;
//! * [`linear`] — simple (incl. through-origin) and multiple linear
//!   regression;
//! * [`polyfit`] — polynomial least squares, including the through-origin
//!   quadratic used per utilization level;
//! * [`model`] — the paper's Eq. (3) bivariate execution-latency model,
//!   with both the paper's two-stage fitting procedure and a direct
//!   six-parameter fit;
//! * [`buffer`] — the Eq. (4)–(6) communication-delay model (linear buffer
//!   delay plus deterministic transmission delay);
//! * [`incremental`] — recursive least squares with exponential
//!   forgetting: rank-1 Sherman–Morrison updates of the inverse normal
//!   matrix, O(K²) per observation instead of an O(window · K²) refit;
//! * [`stats`] — goodness-of-fit statistics (R², RMSE, MAE, residuals).
//!
//! Everything is `f64`, allocation-light, and dependency-free beyond
//! `serde` for persistence of fitted models.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod incremental;
pub mod linear;
pub mod matrix;
pub mod model;
pub mod polyfit;
pub mod stats;
pub mod validate;

pub use buffer::{BufferDelayModel, BufferDelaySample, CommDelayModel};
pub use incremental::RecursiveLeastSquares;
pub use linear::{MultipleLinear, SimpleLinear};
pub use matrix::{Matrix, SolveError};
pub use model::{ExecLatencyModel, LatencySample};
pub use polyfit::Polynomial;
pub use stats::{fit_stats, mean, pearson, residuals, std_dev, variance, FitStats};
pub use validate::{cross_validate, CrossValidation, FitMethod, PredictionBand};
