//! The paper's communication-delay model, Eqs. (4)–(6).
//!
//! `ecd(m, d, c) = Dbuf(d, c) + Dtrans(d)` where
//!
//! * `Dbuf = k · Σ_i ds(T_i, c)` — buffer (queueing) delay grows linearly
//!   with the **total periodic workload** across all tasks (Eq. 5); the
//!   slope `k` is fitted from profile data (the paper's Table 3: 0.7);
//! * `Dtrans = d / ls` — transmission delay of this message's own `d`
//!   bytes at link speed `ls` (Eq. 6).

use crate::linear::SimpleLinear;
use crate::matrix::SolveError;
use crate::stats::FitStats;

/// One buffer-delay profiling observation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct BufferDelaySample {
    /// Total periodic workload `Σ ds(T_i, c)` in tracks.
    pub total_tracks: f64,
    /// Observed buffer (queueing) delay, milliseconds.
    pub delay_ms: f64,
}

/// Fitted Eq. (5): `Dbuf = k · total_tracks` (through the origin).
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct BufferDelayModel {
    /// Slope `k`, milliseconds per track.
    pub k: f64,
    /// Fit quality on the training data.
    pub stats: FitStats,
}

impl BufferDelayModel {
    /// Builds the model from a known slope (e.g. the paper's Table 3).
    pub fn from_slope(k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "slope must be finite and >= 0");
        BufferDelayModel {
            k,
            stats: FitStats {
                r2: f64::NAN,
                adjusted_r2: f64::NAN,
                rmse: f64::NAN,
                mae: f64::NAN,
                max_abs_residual: f64::NAN,
                n: 0,
                params: 1,
            },
        }
    }

    /// Fits the slope by through-origin least squares — "a simple linear
    /// approximation of this delay is reasonable" (paper §4.2.1.2).
    ///
    /// # Errors
    /// Fails on empty input or all-zero workloads.
    pub fn fit(samples: &[BufferDelaySample]) -> Result<Self, SolveError> {
        let xs: Vec<f64> = samples.iter().map(|s| s.total_tracks).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.delay_ms).collect();
        let line = SimpleLinear::fit_through_origin(&xs, &ys)?;
        Ok(BufferDelayModel {
            k: line.slope,
            stats: line.stats,
        })
    }

    /// Predicted buffer delay (ms) for a total periodic workload.
    pub fn predict_ms(&self, total_tracks: f64) -> f64 {
        (self.k * total_tracks).max(0.0)
    }
}

/// The full Eq. (4) communication-delay predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CommDelayModel {
    /// The fitted buffer-delay component.
    pub buffer: BufferDelayModel,
    /// Link speed `ls` in bits per second (Eq. 6).
    pub link_bps: f64,
}

impl CommDelayModel {
    /// Creates the predictor.
    ///
    /// # Panics
    /// Panics unless `link_bps > 0`.
    pub fn new(buffer: BufferDelayModel, link_bps: f64) -> Self {
        assert!(link_bps > 0.0 && link_bps.is_finite(), "link speed must be positive");
        CommDelayModel { buffer, link_bps }
    }

    /// Eq. (6): transmission delay in ms for a message of `bytes`.
    pub fn dtrans_ms(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        bytes * 8.0 / self.link_bps * 1e3
    }

    /// Eq. (4): total predicted communication delay in ms for a message of
    /// `bytes`, under total periodic workload `total_tracks`.
    pub fn predict_ms(&self, bytes: f64, total_tracks: f64) -> f64 {
        self.buffer.predict_ms(total_tracks) + self.dtrans_ms(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_slope() {
        let samples: Vec<BufferDelaySample> = (1..=30)
            .map(|i| BufferDelaySample {
                total_tracks: 500.0 * i as f64,
                delay_ms: 0.7 * 500.0 * i as f64 / 1000.0, // k = 0.0007
            })
            .collect();
        let m = BufferDelayModel::fit(&samples).unwrap();
        assert!((m.k - 0.0007).abs() < 1e-12);
        assert!((m.stats.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_with_noise_still_close() {
        let samples: Vec<BufferDelaySample> = (1..=40)
            .map(|i| {
                let x = 300.0 * i as f64;
                BufferDelaySample {
                    total_tracks: x,
                    delay_ms: 0.002 * x * if i % 2 == 0 { 1.05 } else { 0.95 },
                }
            })
            .collect();
        let m = BufferDelayModel::fit(&samples).unwrap();
        assert!((m.k - 0.002).abs() < 2e-4, "k {}", m.k);
    }

    #[test]
    fn prediction_is_linear_in_load() {
        let m = BufferDelayModel::from_slope(0.001);
        assert_eq!(m.predict_ms(0.0), 0.0);
        assert!((m.predict_ms(1000.0) - 1.0).abs() < 1e-12);
        assert!((m.predict_ms(2000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_degenerate_fit_fails() {
        assert!(BufferDelayModel::fit(&[]).is_err());
        let zeros = vec![
            BufferDelaySample {
                total_tracks: 0.0,
                delay_ms: 1.0
            };
            3
        ];
        assert!(BufferDelayModel::fit(&zeros).is_err());
    }

    #[test]
    fn dtrans_matches_eq6() {
        let m = CommDelayModel::new(BufferDelayModel::from_slope(0.0), 100e6);
        // 1 Mbit at 100 Mbps = 10 ms.
        assert!((m.dtrans_ms(125_000.0) - 10.0).abs() < 1e-9);
        assert_eq!(m.dtrans_ms(0.0), 0.0);
    }

    #[test]
    fn eq4_is_sum_of_parts() {
        let m = CommDelayModel::new(BufferDelayModel::from_slope(0.001), 100e6);
        let total = m.predict_ms(125_000.0, 3000.0);
        assert!((total - (10.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_link_speed_rejected() {
        let _ = CommDelayModel::new(BufferDelayModel::from_slope(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_slope_rejected() {
        let _ = BufferDelayModel::from_slope(-0.1);
    }
}
