//! Incremental (recursive) least squares.
//!
//! Classical fits ([`crate::linear`], [`crate::polyfit`], [`crate::model`])
//! rebuild and solve the normal equations from the full sample window on
//! every refit — O(window · K²) per refit. An online predictor that
//! re-estimates its model every period cannot afford that; this module
//! maintains the estimate *incrementally*: each observation performs one
//! rank-1 Sherman–Morrison update of the inverse normal matrix, so the
//! per-observation cost is O(K²) — O(model size), independent of how many
//! observations have been absorbed.
//!
//! With forgetting factor λ ∈ (0, 1] the estimator minimizes the
//! exponentially weighted squared error `Σ λ^(n-i) (y_i − φ_iᵀθ)²`, which
//! both bounds the effective window (≈ 1/(1−λ) samples) and lets the
//! estimate track drift in the underlying surface.
//!
//! The struct is generic over the feature dimension `K`; callers supply
//! already-mapped (and, if necessary, scaled) feature vectors. See
//! `rtds-arm`'s `OnlineRefiner` for the Eq. (3) instantiation.

/// Recursive least squares over a `K`-dimensional feature space.
#[derive(Debug, Clone)]
pub struct RecursiveLeastSquares<const K: usize> {
    /// Current coefficient estimate θ.
    theta: [f64; K],
    /// Inverse of the (forgetting-weighted) normal matrix, row-major.
    p: [[f64; K]; K],
    /// Forgetting factor λ ∈ (0, 1]; 1 = infinite memory.
    lambda: f64,
    /// Rank-1 updates absorbed.
    updates: u64,
}

impl<const K: usize> RecursiveLeastSquares<K> {
    /// Starts from a prior estimate `theta0`. `prior_strength` is the
    /// weight of the prior in pseudo-observations: the initial inverse
    /// normal matrix is `I / prior_strength`, so larger values make the
    /// prior resist early updates harder.
    ///
    /// # Panics
    /// Panics unless `0 < lambda <= 1` and `prior_strength > 0`.
    pub fn new(theta0: [f64; K], lambda: f64, prior_strength: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "forgetting factor in (0,1]");
        assert!(prior_strength > 0.0, "prior strength must be positive");
        let mut p = [[0.0; K]; K];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = 1.0 / prior_strength;
        }
        RecursiveLeastSquares {
            theta: theta0,
            p,
            lambda,
            updates: 0,
        }
    }

    /// The current coefficient estimate.
    pub fn theta(&self) -> &[f64; K] {
        &self.theta
    }

    /// Rank-1 updates absorbed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The forgetting factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Predicts `φᵀθ` for an already-mapped feature vector.
    pub fn predict(&self, phi: &[f64; K]) -> f64 {
        phi.iter().zip(&self.theta).map(|(a, b)| a * b).sum()
    }

    /// Absorbs one observation `(φ, y)` via the Sherman–Morrison rank-1
    /// update. Returns `false` (leaving the state untouched) if the
    /// inputs are non-finite or the update is numerically degenerate.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the algebra
    pub fn update(&mut self, phi: &[f64; K], y: f64) -> bool {
        if !y.is_finite() || phi.iter().any(|v| !v.is_finite()) {
            return false;
        }
        // P φ
        let mut pphi = [0.0; K];
        for i in 0..K {
            for j in 0..K {
                pphi[i] += self.p[i][j] * phi[j];
            }
        }
        // φᵀ P φ
        let denom: f64 = self.lambda + phi.iter().zip(&pphi).map(|(a, b)| a * b).sum::<f64>();
        if !denom.is_finite() || denom <= 0.0 {
            return false;
        }
        // Gain k = P φ / denom
        let mut gain = [0.0; K];
        for i in 0..K {
            gain[i] = pphi[i] / denom;
        }
        // Innovation
        let pred: f64 = phi.iter().zip(&self.theta).map(|(a, b)| a * b).sum();
        let err = y - pred;
        for i in 0..K {
            self.theta[i] += gain[i] * err;
        }
        // P = (P − k (P φ)ᵀ) / λ   (using symmetry of P)
        for i in 0..K {
            for j in 0..K {
                self.p[i][j] = (self.p[i][j] - gain[i] * pphi[j]) / self.lambda;
            }
        }
        self.updates += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_linear_map_exactly_in_the_limit() {
        // y = 3x₀ − 2x₁ + 0.5x₂, weak prior, no forgetting.
        let mut rls = RecursiveLeastSquares::<3>::new([0.0; 3], 1.0, 1e-3);
        for i in 0..200 {
            let x0 = (i % 7) as f64;
            let x1 = (i % 5) as f64 - 2.0;
            let x2 = (i % 11) as f64 * 0.3;
            let y = 3.0 * x0 - 2.0 * x1 + 0.5 * x2;
            assert!(rls.update(&[x0, x1, x2], y));
        }
        let t = rls.theta();
        assert!((t[0] - 3.0).abs() < 1e-4, "theta {t:?}");
        assert!((t[1] + 2.0).abs() < 1e-4, "theta {t:?}");
        assert!((t[2] - 0.5).abs() < 1e-4, "theta {t:?}");
        assert_eq!(rls.updates(), 200);
    }

    #[test]
    fn matches_batch_least_squares_on_the_same_data() {
        // Against the crate's own QR solver: with a negligible prior the
        // recursive estimate must agree with the batch solution.
        let xs: Vec<[f64; 2]> = (0..40)
            .map(|i| [1.0, (i as f64 * 0.37).sin() * 5.0 + i as f64 * 0.1])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.7 * x[0] + 0.9 * x[1]).collect();
        let mut rls = RecursiveLeastSquares::<2>::new([0.0; 2], 1.0, 1e-6);
        for (x, y) in xs.iter().zip(&ys) {
            rls.update(x, *y);
        }
        let rows: Vec<Vec<f64>> = xs.iter().map(|x| x.to_vec()).collect();
        let batch = crate::linear::MultipleLinear::fit(&rows, &ys).expect("batch fit");
        let t = rls.theta();
        assert!((t[0] - batch.coefficients[0]).abs() < 1e-5, "{t:?} vs {batch:?}");
        assert!((t[1] - batch.coefficients[1]).abs() < 1e-5, "{t:?} vs {batch:?}");
    }

    #[test]
    fn forgetting_tracks_a_drifting_target() {
        let mut rls = RecursiveLeastSquares::<1>::new([0.0], 0.9, 1.0);
        for _ in 0..100 {
            rls.update(&[1.0], 5.0);
        }
        for _ in 0..100 {
            rls.update(&[1.0], 9.0);
        }
        assert!((rls.theta()[0] - 9.0).abs() < 0.1, "{:?}", rls.theta());
    }

    #[test]
    fn strong_prior_resists_a_single_observation() {
        let mut weak = RecursiveLeastSquares::<1>::new([1.0], 1.0, 1.0);
        let mut strong = RecursiveLeastSquares::<1>::new([1.0], 1.0, 1e9);
        weak.update(&[1.0], 10.0);
        strong.update(&[1.0], 10.0);
        assert!((weak.theta()[0] - 1.0).abs() > 100.0 * (strong.theta()[0] - 1.0).abs());
    }

    #[test]
    fn rejects_degenerate_input_without_mutating() {
        let mut rls = RecursiveLeastSquares::<2>::new([1.0, 2.0], 1.0, 1.0);
        assert!(!rls.update(&[f64::NAN, 1.0], 1.0));
        assert!(!rls.update(&[1.0, 1.0], f64::INFINITY));
        assert_eq!(rls.updates(), 0);
        assert_eq!(rls.theta(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_lambda_rejected() {
        let _ = RecursiveLeastSquares::<1>::new([0.0], 0.0, 1.0);
    }
}
