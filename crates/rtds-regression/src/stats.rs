//! Goodness-of-fit statistics.
//!
//! The paper fits regression equations to profile data and relies on their
//! predictive quality; these statistics quantify that quality (R², RMSE,
//! MAE, residual analysis) so every fit in the pipeline can be validated.

/// Summary statistics of a fitted model against observations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct FitStats {
    /// Coefficient of determination, `1 − SS_res/SS_tot`. May be negative
    /// for a fit worse than the mean.
    pub r2: f64,
    /// R² adjusted for the number of parameters.
    pub adjusted_r2: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Largest absolute residual.
    pub max_abs_residual: f64,
    /// Number of observations.
    pub n: usize,
    /// Number of model parameters.
    pub params: usize,
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Residuals `observed − predicted`.
pub fn residuals(observed: &[f64], predicted: &[f64]) -> Vec<f64> {
    assert_eq!(observed.len(), predicted.len(), "residuals: length mismatch");
    observed
        .iter()
        .zip(predicted)
        .map(|(o, p)| o - p)
        .collect()
}

/// Computes fit statistics for `params`-parameter model predictions.
///
/// # Panics
/// Panics if lengths differ or `observed` is empty.
pub fn fit_stats(observed: &[f64], predicted: &[f64], params: usize) -> FitStats {
    assert_eq!(observed.len(), predicted.len(), "fit_stats: length mismatch");
    assert!(!observed.is_empty(), "fit_stats: no observations");
    let n = observed.len();
    let res = residuals(observed, predicted);
    let ss_res: f64 = res.iter().map(|r| r * r).sum();
    let m = mean(observed);
    let ss_tot: f64 = observed.iter().map(|o| (o - m).powi(2)).sum();
    let r2 = if ss_tot <= 0.0 {
        // Constant target: perfect iff residuals are ~0.
        if ss_res < 1e-18 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    let adjusted_r2 = if n > params + 1 {
        1.0 - (1.0 - r2) * ((n - 1) as f64) / ((n - params - 1) as f64)
    } else {
        r2
    };
    FitStats {
        r2,
        adjusted_r2,
        rmse: (ss_res / n as f64).sqrt(),
        mae: res.iter().map(|r| r.abs()).sum::<f64>() / n as f64,
        max_abs_residual: res.iter().map(|r| r.abs()).fold(0.0, f64::max),
        n,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_for_constant_series() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn perfect_fit_has_r2_one() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let s = fit_stats(&y, &y, 2);
        assert!((s.r2 - 1.0).abs() < 1e-12);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.max_abs_residual, 0.0);
    }

    #[test]
    fn mean_prediction_has_r2_zero() {
        let y = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        let s = fit_stats(&y, &pred, 1);
        assert!(s.r2.abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_gives_negative_r2() {
        let y = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert!(fit_stats(&y, &pred, 1).r2 < 0.0);
    }

    #[test]
    fn adjusted_r2_penalizes_parameters() {
        let y = [1.0, 2.0, 2.9, 4.2, 5.1, 5.9];
        let pred = [1.1, 2.0, 3.0, 4.0, 5.0, 6.0];
        let few = fit_stats(&y, &pred, 1);
        let many = fit_stats(&y, &pred, 4);
        assert!(many.adjusted_r2 < few.adjusted_r2);
        assert!(few.adjusted_r2 <= few.r2);
    }

    #[test]
    fn constant_target_edge_case() {
        let y = [5.0, 5.0, 5.0];
        assert_eq!(fit_stats(&y, &y, 1).r2, 1.0);
        assert_eq!(fit_stats(&y, &[5.1, 5.0, 4.9], 1).r2, 0.0);
    }

    #[test]
    fn rmse_and_mae_measure_errors() {
        let y = [0.0, 0.0, 0.0, 0.0];
        let pred = [1.0, -1.0, 1.0, -1.0];
        let s = fit_stats(&y, &pred, 1);
        assert!((s.rmse - 1.0).abs() < 1e-12);
        assert!((s.mae - 1.0).abs() < 1e-12);
        assert!((s.max_abs_residual - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = fit_stats(&[1.0], &[1.0, 2.0], 1);
    }
}
