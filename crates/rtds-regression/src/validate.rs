//! Model validation: k-fold cross-validation and residual-based
//! prediction intervals.
//!
//! The paper fits Eq. (3) once per subtask and trusts it for allocation.
//! These utilities quantify how far that trust is justified: k-fold CV
//! estimates out-of-sample error (the error the allocator actually pays),
//! and residual quantiles give a conservative band around a forecast for
//! slack-aware callers.

use crate::matrix::SolveError;
use crate::model::{ExecLatencyModel, LatencySample};
use crate::stats::{fit_stats, FitStats};

/// Result of a k-fold cross-validation of the Eq. (3) fit.
#[derive(Debug, Clone)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CrossValidation {
    /// Out-of-fold fit statistics, pooled over all folds.
    pub pooled: FitStats,
    /// Per-fold RMSE.
    pub fold_rmse: Vec<f64>,
    /// Folds used.
    pub k: usize,
}

/// How the Eq. (3) model is fitted inside the validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitMethod {
    /// The paper's two-stage procedure.
    TwoStage,
    /// Direct six-parameter least squares.
    Direct,
}

fn fit(samples: &[LatencySample], method: FitMethod) -> Result<ExecLatencyModel, SolveError> {
    match method {
        FitMethod::TwoStage => ExecLatencyModel::fit_two_stage(samples),
        FitMethod::Direct => ExecLatencyModel::fit_direct(samples),
    }
}

/// Runs k-fold cross-validation: deterministic round-robin fold
/// assignment (sample `i` → fold `i % k`), refit on k−1 folds, score on
/// the held-out fold.
///
/// # Errors
/// Fails if `k < 2`, there are fewer than `k` samples, or any training
/// fold cannot support the chosen fit (e.g. the two-stage method losing a
/// whole utilization level).
pub fn cross_validate(
    samples: &[LatencySample],
    k: usize,
    method: FitMethod,
) -> Result<CrossValidation, SolveError> {
    if k < 2 || samples.len() < k {
        return Err(SolveError::Underdetermined {
            rows: samples.len(),
            cols: k,
        });
    }
    let mut observed = Vec::with_capacity(samples.len());
    let mut predicted = Vec::with_capacity(samples.len());
    let mut fold_rmse = Vec::with_capacity(k);
    for fold in 0..k {
        let train: Vec<LatencySample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, s)| *s)
            .collect();
        let test: Vec<LatencySample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, s)| *s)
            .collect();
        let model = fit(&train, method)?;
        let mut sq = 0.0;
        for s in &test {
            let p = model.predict_raw(s.d, s.u);
            observed.push(s.latency_ms);
            predicted.push(p);
            sq += (p - s.latency_ms).powi(2);
        }
        fold_rmse.push((sq / test.len().max(1) as f64).sqrt());
    }
    Ok(CrossValidation {
        pooled: fit_stats(&observed, &predicted, 6),
        fold_rmse,
        k,
    })
}

/// A symmetric prediction band derived from empirical residual quantiles.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PredictionBand {
    /// Residual value below which `coverage` of residuals fall (absolute).
    pub half_width_ms: f64,
    /// Requested coverage, e.g. 0.9.
    pub coverage: f64,
}

impl PredictionBand {
    /// Builds a band from a model's residuals on a sample set.
    ///
    /// # Panics
    /// Panics if `samples` is empty or coverage is outside `(0, 1]`.
    pub fn from_residuals(
        model: &ExecLatencyModel,
        samples: &[LatencySample],
        coverage: f64,
    ) -> Self {
        assert!(!samples.is_empty(), "no samples");
        assert!(coverage > 0.0 && coverage <= 1.0, "coverage in (0, 1]");
        let mut abs: Vec<f64> = samples
            .iter()
            .map(|s| (model.predict_raw(s.d, s.u) - s.latency_ms).abs())
            .collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        let idx = ((abs.len() as f64 * coverage).ceil() as usize)
            .clamp(1, abs.len())
            - 1;
        PredictionBand {
            half_width_ms: abs[idx],
            coverage,
        }
    }

    /// The conservative (upper) forecast: prediction plus the band.
    pub fn upper_ms(&self, prediction_ms: f64) -> f64 {
        prediction_ms + self.half_width_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_grid(noise: f64) -> Vec<LatencySample> {
        let mut out = Vec::new();
        let mut i = 0u64;
        for &u in &[10.0, 30.0, 50.0, 70.0] {
            for d in (1..=10).map(|i| i as f64 * 2.0) {
                let clean = (1e-4 * u * u + 0.01 * u + 0.1) * d * d + (0.02 * u + 1.0) * d;
                // Deterministic zero-mean-ish "noise" varying per sample.
                let sign = match i % 3 {
                    0 => 1.0,
                    1 => -1.0,
                    _ => 0.5,
                };
                i += 1;
                out.push(LatencySample {
                    d,
                    u,
                    latency_ms: clean * (1.0 + sign * noise),
                });
            }
        }
        out
    }

    #[test]
    fn cross_validation_on_clean_data_is_nearly_perfect() {
        let cv = cross_validate(&noisy_grid(0.0), 5, FitMethod::TwoStage).unwrap();
        assert!(cv.pooled.r2 > 0.999999, "r2 {}", cv.pooled.r2);
        assert_eq!(cv.fold_rmse.len(), 5);
        assert!(cv.fold_rmse.iter().all(|&r| r < 1e-6));
    }

    #[test]
    fn cross_validation_reports_noise_level() {
        let cv = cross_validate(&noisy_grid(0.05), 4, FitMethod::Direct).unwrap();
        assert!(cv.pooled.r2 > 0.9, "still explains the trend: {}", cv.pooled.r2);
        assert!(cv.pooled.rmse > 0.1, "but sees the noise: {}", cv.pooled.rmse);
    }

    #[test]
    fn both_methods_validate_comparably_on_clean_data() {
        let a = cross_validate(&noisy_grid(0.0), 4, FitMethod::TwoStage).unwrap();
        let b = cross_validate(&noisy_grid(0.0), 4, FitMethod::Direct).unwrap();
        assert!((a.pooled.rmse - b.pooled.rmse).abs() < 1e-6);
    }

    #[test]
    fn degenerate_folds_are_rejected() {
        let s = noisy_grid(0.0);
        assert!(cross_validate(&s, 1, FitMethod::Direct).is_err());
        assert!(cross_validate(&s[..3], 5, FitMethod::Direct).is_err());
    }

    #[test]
    fn prediction_band_covers_the_requested_fraction() {
        let samples = noisy_grid(0.05);
        let model = ExecLatencyModel::fit_direct(&samples).unwrap();
        let band = PredictionBand::from_residuals(&model, &samples, 0.9);
        let covered = samples
            .iter()
            .filter(|s| {
                (model.predict_raw(s.d, s.u) - s.latency_ms).abs() <= band.half_width_ms + 1e-12
            })
            .count();
        assert!(
            covered as f64 >= 0.9 * samples.len() as f64,
            "coverage {covered}/{}",
            samples.len()
        );
        // Full coverage band is at least as wide.
        let full = PredictionBand::from_residuals(&model, &samples, 1.0);
        assert!(full.half_width_ms >= band.half_width_ms);
    }

    #[test]
    fn upper_forecast_adds_the_band() {
        let b = PredictionBand {
            half_width_ms: 12.5,
            coverage: 0.95,
        };
        assert!((b.upper_ms(100.0) - 112.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn zero_coverage_rejected() {
        let samples = noisy_grid(0.0);
        let model = ExecLatencyModel::fit_direct(&samples).unwrap();
        let _ = PredictionBand::from_residuals(&model, &samples, 0.0);
    }
}
