//! Polynomial least-squares fitting.
//!
//! The paper's profiling step fits "a second order non-linear regression
//! equation that computes execution latency as a function of data size"
//! at each measured CPU utilization (the red `Y` curves in Figs. 2–3).

use crate::matrix::{Matrix, SolveError};
use crate::stats::{fit_stats, FitStats};

/// A fitted polynomial `y = c[0] + c[1]·x + … + c[d]·x^d`.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Polynomial {
    /// Coefficients in ascending-power order.
    pub coefficients: Vec<f64>,
    /// Fit quality on the training data.
    pub stats: FitStats,
}

impl Polynomial {
    /// Fits a degree-`degree` polynomial.
    ///
    /// ```
    /// use rtds_regression::Polynomial;
    /// let xs = [0.0, 1.0, 2.0, 3.0];
    /// let ys = [1.0, 2.0, 5.0, 10.0]; // 1 + x^2
    /// let p = Polynomial::fit(&xs, &ys, 2).unwrap();
    /// assert!((p.eval(4.0) - 17.0).abs() < 1e-9);
    /// ```
    ///
    /// # Errors
    /// Fails if there are fewer than `degree + 1` points or the design
    /// matrix is rank-deficient (e.g. duplicated x values only).
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Self, SolveError> {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        let cols = degree + 1;
        if xs.len() < cols {
            return Err(SolveError::Underdetermined {
                rows: xs.len(),
                cols,
            });
        }
        let mut data = Vec::with_capacity(xs.len() * cols);
        for &x in xs {
            let mut p = 1.0;
            for _ in 0..cols {
                data.push(p);
                p *= x;
            }
        }
        let a = Matrix::from_rows(xs.len(), cols, data);
        let coefficients = a.lstsq(ys)?;
        let pred = a.matvec(&coefficients);
        let stats = fit_stats(ys, &pred, cols);
        Ok(Polynomial {
            coefficients,
            stats,
        })
    }

    /// Fits a quadratic **through the origin**: `y = b·x + a·x²`. This is
    /// the per-utilization form inside Eq. (3), which has no constant term
    /// (zero data items cost zero time in the paper's model).
    pub fn fit_quadratic_origin(xs: &[f64], ys: &[f64]) -> Result<Self, SolveError> {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        if xs.len() < 2 {
            return Err(SolveError::Underdetermined {
                rows: xs.len(),
                cols: 2,
            });
        }
        let mut data = Vec::with_capacity(xs.len() * 2);
        for &x in xs {
            data.push(x);
            data.push(x * x);
        }
        let a = Matrix::from_rows(xs.len(), 2, data);
        let c = a.lstsq(ys)?;
        let pred = a.matvec(&c);
        let stats = fit_stats(ys, &pred, 2);
        Ok(Polynomial {
            coefficients: vec![0.0, c[0], c[1]],
            stats,
        })
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }

    /// Evaluates the polynomial at `x` (Horner's rule).
    pub fn eval(&self, x: f64) -> f64 {
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x * x - 3.0 * x + 1.0).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        assert!((p.coefficients[0] - 1.0).abs() < 1e-8);
        assert!((p.coefficients[1] + 3.0).abs() < 1e-8);
        assert!((p.coefficients[2] - 2.0).abs() < 1e-8);
        assert!((p.stats.r2 - 1.0).abs() < 1e-12);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn eval_uses_horner_correctly() {
        let p = Polynomial {
            coefficients: vec![1.0, -3.0, 2.0],
            stats: crate::stats::fit_stats(&[0.0], &[0.0], 1),
        };
        assert!((p.eval(4.0) - (1.0 - 12.0 + 32.0)).abs() < 1e-12);
        assert!((p.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_zero_fits_the_mean() {
        let p = Polynomial::fit(&[1.0, 2.0, 3.0], &[4.0, 6.0, 8.0], 0).unwrap();
        assert!((p.coefficients[0] - 6.0).abs() < 1e-10);
    }

    #[test]
    fn higher_degree_never_fits_worse() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 2.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.5 * x * x + x + (x * 1.7).sin())
            .collect();
        let d1 = Polynomial::fit(&xs, &ys, 1).unwrap();
        let d2 = Polynomial::fit(&xs, &ys, 2).unwrap();
        let d3 = Polynomial::fit(&xs, &ys, 3).unwrap();
        assert!(d2.stats.rmse <= d1.stats.rmse + 1e-12);
        assert!(d3.stats.rmse <= d2.stats.rmse + 1e-12);
    }

    #[test]
    fn quadratic_origin_has_no_constant_term() {
        let xs: Vec<f64> = (1..15).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.3 * x * x + 2.0 * x).collect();
        let p = Polynomial::fit_quadratic_origin(&xs, &ys).unwrap();
        assert_eq!(p.coefficients[0], 0.0);
        assert!((p.coefficients[1] - 2.0).abs() < 1e-8);
        assert!((p.coefficients[2] - 0.3).abs() < 1e-8);
        assert!((p.eval(0.0)).abs() < 1e-12);
    }

    #[test]
    fn underdetermined_inputs_error() {
        assert!(Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
        assert!(Polynomial::fit_quadratic_origin(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn duplicate_xs_rank_deficiency_detected() {
        let xs = [2.0, 2.0, 2.0, 2.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert!(Polynomial::fit(&xs, &ys, 2).is_err());
    }
}
