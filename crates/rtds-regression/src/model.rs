//! The paper's Eq. (3) execution-latency model.
//!
//! `eex(st, d, u) = (a1·u² + a2·u + a3)·d² + (b1·u² + b2·u + b3)·d`
//!
//! where `d` is the data size in hundreds of tracks and `u` the CPU
//! utilization in percent. Two fitting procedures are provided:
//!
//! * [`ExecLatencyModel::fit_two_stage`] — the paper's method: fit a
//!   second-order polynomial in `d` at each profiled utilization (Figs.
//!   2–3's `Y` curves), then fit each of the two `d`-coefficients as a
//!   quadratic in `u`, combining everything "into a single regression
//!   equation" (the `Y−` curves).
//! * [`ExecLatencyModel::fit_direct`] — one six-parameter least-squares
//!   solve over the full `(d, u)` grid; the ablation comparator.

use crate::matrix::SolveError;
use crate::polyfit::Polynomial;
use crate::stats::{fit_stats, FitStats};

/// One profiled observation: latency of a subtask run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct LatencySample {
    /// Data size in **hundreds of tracks** (Eq. 3's unit).
    pub d: f64,
    /// CPU utilization of the hosting processor, **percent**.
    pub u: f64,
    /// Observed execution latency, milliseconds.
    pub latency_ms: f64,
}

/// Fitted Eq. (3) coefficients for one subtask.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ExecLatencyModel {
    /// `[a1, a2, a3]`: the quadratic-in-`u` coefficients of the `d²` term.
    pub a: [f64; 3],
    /// `[b1, b2, b3]`: the quadratic-in-`u` coefficients of the `d` term.
    pub b: [f64; 3],
    /// Fit quality over all training samples.
    pub stats: FitStats,
}

/// How many distinct utilization levels / data sizes a two-stage fit needs.
const MIN_U_LEVELS: usize = 3;
const MIN_D_PER_LEVEL: usize = 2;

impl ExecLatencyModel {
    /// Builds a model from known coefficients (e.g. the paper's Table 2),
    /// with placeholder fit statistics.
    pub fn from_coefficients(a: [f64; 3], b: [f64; 3]) -> Self {
        ExecLatencyModel {
            a,
            b,
            stats: FitStats {
                r2: f64::NAN,
                adjusted_r2: f64::NAN,
                rmse: f64::NAN,
                mae: f64::NAN,
                max_abs_residual: f64::NAN,
                n: 0,
                params: 6,
            },
        }
    }

    /// Raw model value; may be negative outside the profiled domain (the
    /// hazard of extrapolating empirical quadratics — see the paper's
    /// Table 2, whose `a1 < 0` for subtask 3 goes negative at large `d·u`).
    pub fn predict_raw(&self, d: f64, u: f64) -> f64 {
        let qa = (self.a[0] * u + self.a[1]) * u + self.a[2];
        let qb = (self.b[0] * u + self.b[1]) * u + self.b[2];
        qa * d * d + qb * d
    }

    /// Predicted execution latency in ms, clamped to be non-negative — the
    /// form the resource manager consumes.
    pub fn predict(&self, d: f64, u: f64) -> f64 {
        self.predict_raw(d, u).max(0.0)
    }

    /// The paper's two-stage fit. Samples are grouped by utilization level
    /// (values within `1e-6` are one level); each level gets a
    /// through-origin quadratic in `d`; the per-level coefficients are then
    /// regressed quadratically on `u`.
    ///
    /// ```
    /// use rtds_regression::{ExecLatencyModel, LatencySample};
    /// let mut samples = Vec::new();
    /// for &u in &[10.0, 40.0, 70.0] {
    ///     for d in (1..=5).map(f64::from) {
    ///         samples.push(LatencySample {
    ///             d, u,
    ///             latency_ms: (0.01 * u + 0.1) * d * d + (0.05 * u + 1.0) * d,
    ///         });
    ///     }
    /// }
    /// let m = ExecLatencyModel::fit_two_stage(&samples).unwrap();
    /// assert!(m.stats.r2 > 0.9999);
    /// assert!(m.predict(3.0, 25.0) > 0.0);
    /// ```
    ///
    /// # Errors
    /// Needs ≥ 3 distinct utilization levels with ≥ 2 distinct data sizes
    /// each.
    pub fn fit_two_stage(samples: &[LatencySample]) -> Result<Self, SolveError> {
        let groups = group_by_utilization(samples);
        if groups.len() < MIN_U_LEVELS {
            return Err(SolveError::Underdetermined {
                rows: groups.len(),
                cols: MIN_U_LEVELS,
            });
        }
        let mut us = Vec::with_capacity(groups.len());
        let mut a_of_u = Vec::with_capacity(groups.len());
        let mut b_of_u = Vec::with_capacity(groups.len());
        for (u, pts) in &groups {
            let xs: Vec<f64> = pts.iter().map(|p| p.d).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.latency_ms).collect();
            let distinct = count_distinct(&xs);
            if distinct < MIN_D_PER_LEVEL {
                return Err(SolveError::Underdetermined {
                    rows: distinct,
                    cols: MIN_D_PER_LEVEL,
                });
            }
            let q = Polynomial::fit_quadratic_origin(&xs, &ys)?;
            us.push(*u);
            b_of_u.push(q.coefficients[1]);
            a_of_u.push(q.coefficients[2]);
        }
        // Stage 2: coefficient-vs-utilization quadratics (with constant).
        let pa = Polynomial::fit(&us, &a_of_u, 2)?;
        let pb = Polynomial::fit(&us, &b_of_u, 2)?;
        let model = ExecLatencyModel {
            a: [pa.coefficients[2], pa.coefficients[1], pa.coefficients[0]],
            b: [pb.coefficients[2], pb.coefficients[1], pb.coefficients[0]],
            stats: FitStats {
                r2: 0.0,
                adjusted_r2: 0.0,
                rmse: 0.0,
                mae: 0.0,
                max_abs_residual: 0.0,
                n: 0,
                params: 6,
            },
        };
        Ok(model.with_stats_from(samples))
    }

    /// Direct six-parameter least squares over all samples.
    ///
    /// # Errors
    /// Needs at least 6 samples spanning enough of the `(d, u)` plane for
    /// the design matrix to be full rank.
    pub fn fit_direct(samples: &[LatencySample]) -> Result<Self, SolveError> {
        if samples.len() < 6 {
            return Err(SolveError::Underdetermined {
                rows: samples.len(),
                cols: 6,
            });
        }
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| {
                let (d, u) = (s.d, s.u);
                vec![u * u * d * d, u * d * d, d * d, u * u * d, u * d, d]
            })
            .collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        let fit = crate::linear::MultipleLinear::fit(&rows, &ys)?;
        let c = &fit.coefficients;
        let model = ExecLatencyModel {
            a: [c[0], c[1], c[2]],
            b: [c[3], c[4], c[5]],
            stats: fit.stats,
        };
        Ok(model.with_stats_from(samples))
    }

    /// Recomputes fit statistics of this model against a sample set.
    pub fn with_stats_from(mut self, samples: &[LatencySample]) -> Self {
        if samples.is_empty() {
            return self;
        }
        let obs: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        let pred: Vec<f64> = samples.iter().map(|s| self.predict_raw(s.d, s.u)).collect();
        self.stats = fit_stats(&obs, &pred, 6);
        self
    }
}

/// Groups samples into utilization levels (tolerance 1e-6), sorted by `u`.
fn group_by_utilization(samples: &[LatencySample]) -> Vec<(f64, Vec<LatencySample>)> {
    let mut sorted: Vec<LatencySample> = samples.to_vec();
    sorted.sort_by(|x, y| x.u.partial_cmp(&y.u).expect("no NaN utilization"));
    let mut groups: Vec<(f64, Vec<LatencySample>)> = Vec::new();
    for s in sorted {
        match groups.last_mut() {
            Some((u, pts)) if (s.u - *u).abs() < 1e-6 => pts.push(s),
            _ => groups.push((s.u, vec![s])),
        }
    }
    groups
}

fn count_distinct(xs: &[f64]) -> usize {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: a "true" Eq.-3 surface.
    fn truth(d: f64, u: f64) -> f64 {
        (0.0002 * u * u + 0.001 * u + 0.01) * d * d + (0.002 * u * u + 0.05 * u + 1.0) * d
    }

    fn grid_samples() -> Vec<LatencySample> {
        let mut out = Vec::new();
        for &u in &[10.0, 20.0, 40.0, 60.0, 80.0] {
            for d in (1..=12).map(|i| i as f64) {
                out.push(LatencySample {
                    d,
                    u,
                    latency_ms: truth(d, u),
                });
            }
        }
        out
    }

    #[test]
    fn two_stage_recovers_exact_surface() {
        let m = ExecLatencyModel::fit_two_stage(&grid_samples()).unwrap();
        for &u in &[15.0, 50.0, 70.0] {
            for &d in &[2.0, 5.0, 10.0] {
                let p = m.predict(d, u);
                let t = truth(d, u);
                assert!(
                    (p - t).abs() < 1e-6 * t.max(1.0),
                    "predict({d},{u}) = {p}, truth {t}"
                );
            }
        }
        assert!(m.stats.r2 > 0.999999);
    }

    #[test]
    fn direct_fit_recovers_exact_surface() {
        let m = ExecLatencyModel::fit_direct(&grid_samples()).unwrap();
        let p = m.predict(7.0, 35.0);
        let t = truth(7.0, 35.0);
        assert!((p - t).abs() < 1e-6 * t, "{p} vs {t}");
        assert!(m.stats.r2 > 0.999999);
    }

    #[test]
    fn two_methods_agree_on_clean_data() {
        let s = grid_samples();
        let a = ExecLatencyModel::fit_two_stage(&s).unwrap();
        let b = ExecLatencyModel::fit_direct(&s).unwrap();
        for &u in &[25.0, 55.0] {
            for &d in &[3.0, 9.0] {
                assert!(
                    (a.predict(d, u) - b.predict(d, u)).abs() < 1e-5,
                    "methods diverge at ({d},{u})"
                );
            }
        }
    }

    #[test]
    fn noisy_data_still_yields_good_fit() {
        let mut samples = grid_samples();
        // Deterministic multiplicative "noise" ±3%.
        for (i, s) in samples.iter_mut().enumerate() {
            let f = 1.0 + 0.03 * if i % 2 == 0 { 1.0 } else { -1.0 };
            s.latency_ms *= f;
        }
        let m = ExecLatencyModel::fit_two_stage(&samples).unwrap();
        assert!(m.stats.r2 > 0.99, "r2 {}", m.stats.r2);
        let p = m.predict(6.0, 40.0);
        let t = truth(6.0, 40.0);
        assert!((p - t).abs() < 0.05 * t);
    }

    #[test]
    fn prediction_clamps_negative_extrapolation() {
        // Coefficients chosen so the raw value is negative at large d·u,
        // like the paper's subtask 3.
        let m = ExecLatencyModel::from_coefficients([-0.01, 0.0, 0.1], [0.0, 0.0, 1.0]);
        assert!(m.predict_raw(100.0, 90.0) < 0.0);
        assert_eq!(m.predict(100.0, 90.0), 0.0);
        assert!(m.predict(1.0, 10.0) > 0.0);
    }

    #[test]
    fn from_coefficients_evaluates_eq3_shape() {
        let m = ExecLatencyModel::from_coefficients([1.0, 2.0, 3.0], [4.0, 5.0, 6.0]);
        // u=2, d=3: qa = 4+4+3 = 11; qb = 16+10+6 = 32; 11*9 + 32*3 = 195.
        assert!((m.predict_raw(3.0, 2.0) - 195.0).abs() < 1e-12);
    }

    #[test]
    fn insufficient_levels_rejected() {
        let two_levels: Vec<LatencySample> = grid_samples()
            .into_iter()
            .filter(|s| s.u < 30.0)
            .collect();
        assert!(ExecLatencyModel::fit_two_stage(&two_levels).is_err());
        assert!(ExecLatencyModel::fit_direct(&grid_samples()[..5]).is_err());
    }

    #[test]
    fn single_d_per_level_rejected() {
        let samples: Vec<LatencySample> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&u| LatencySample {
                d: 5.0,
                u,
                latency_ms: truth(5.0, u),
            })
            .collect();
        assert!(ExecLatencyModel::fit_two_stage(&samples).is_err());
    }

    #[test]
    fn grouping_tolerates_float_jitter() {
        let mut s = grid_samples();
        for (i, p) in s.iter_mut().enumerate() {
            p.u += 1e-9 * (i % 3) as f64; // sub-tolerance jitter
        }
        assert!(ExecLatencyModel::fit_two_stage(&s).is_ok());
    }

    #[test]
    fn latency_increases_with_load_and_utilization_on_fitted_model() {
        let m = ExecLatencyModel::fit_two_stage(&grid_samples()).unwrap();
        assert!(m.predict(8.0, 50.0) > m.predict(4.0, 50.0));
        assert!(m.predict(8.0, 70.0) > m.predict(8.0, 30.0));
    }
}
