//! # rtds-sim — asynchronous real-time distributed-system simulator
//!
//! Deterministic discrete-event simulation of the execution environment in
//! Ravindran & Hegazy, *"A Predictive Algorithm for Adaptive Resource
//! Management of Periodic Tasks in Asynchronous Real-Time Distributed
//! Systems"* (IPPS 2001), §3:
//!
//! * homogeneous processor nodes with private memory, each running a CPU
//!   scheduler (round-robin with a 1 ms slice in the paper's Table 1);
//! * a shared 100 Mbps Ethernet segment carrying all inter-subtask
//!   messages, with FIFO queueing (the paper's buffer delay) and
//!   bandwidth-limited transmission (the paper's transmission delay);
//! * per-node clocks kept synchronized Mills-style with bounded skew;
//! * periodic pipeline tasks `T = [st1, m1, …, stn, mn]` whose subtasks can
//!   be **replicated** at run time to split the data stream;
//! * background load generators that create the "internal load situations"
//!   the paper profiles against;
//! * a [`control::Controller`] hook through which a resource-management
//!   policy observes timeliness and re-places replicas — the plug point for
//!   the predictive and non-predictive algorithms in `rtds-arm`.
//!
//! The simulator is policy-free: it knows nothing about regression or
//! prediction. Everything observable (latencies, utilizations, deadline
//! outcomes) is surfaced through [`metrics::RunMetrics`] and the controller
//! interface.
//!
//! ## Example
//!
//! ```
//! use rtds_sim::prelude::*;
//!
//! let mut config = ClusterConfig::paper_baseline(7, SimDuration::from_secs(5));
//! config.clock = ClockConfig::perfect();
//! let mut cluster = Cluster::new(config);
//! cluster.add_task(
//!     TaskSpec {
//!         id: TaskId(0),
//!         name: "sensor-pipeline".into(),
//!         period: SimDuration::from_secs(1),
//!         deadline: SimDuration::from_millis(990),
//!         track_bytes: 80,
//!         stages: vec![StageSpec {
//!             name: "filter".into(),
//!             cost: PolynomialCost::new(0.01, 1.0, 0.5),
//!             replicable: true,
//!             home: NodeId(0),
//!             output_bytes_per_track: 80.0,
//!         }],
//!     },
//!     Box::new(|_period| 500),
//! );
//! let outcome = cluster.run();
//! assert!(outcome.metrics.periods.iter().take(4).all(|p| p.missed == Some(false)));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod cluster;
pub mod control;
mod engine;
pub mod event;
pub mod hashing;
pub mod ids;
pub mod job;
mod kernel;
mod lane;
pub mod load;
pub mod metrics;
pub mod net;
pub mod node;
pub mod perf;
pub mod pipeline;
pub mod rng;
pub mod sched;
pub mod sink;
pub mod time;
pub mod trace;

/// One-stop imports for typical users of the simulator.
pub mod prelude {
    pub use crate::clock::{ClockConfig, ClockModel};
    pub use crate::cluster::{Cluster, ClusterApi, ClusterConfig, RunOutcome, WorkloadFn};
    pub use crate::control::{
        ControlAction, ControlContext, Controller, NullController, PeriodObservation,
        StageObservation,
    };
    pub use crate::ids::{JobId, LoadGenId, MsgId, NodeId, StageId, SubtaskIdx, TaskId};
    pub use crate::load::{LoadGenerator, PeriodicLoad, PoissonLoad};
    pub use crate::metrics::{
        ForecastResidualStat, PeriodRecord, ResidualKind, RunMetrics, RunSummary,
    };
    pub use crate::net::{BusConfig, SharedBus};
    pub use crate::perf::PerfReport;
    pub use crate::pipeline::{PolynomialCost, StageSpec, TaskSpec};
    pub use crate::rng::SimRng;
    pub use crate::sched::{CpuScheduler, SchedulerKind};
    pub use crate::sink::{BoundedSink, EventSink, JsonlSink};
    pub use crate::trace::{TraceEvent, TraceSink};
    pub use crate::time::{SimDuration, SimTime};
}
