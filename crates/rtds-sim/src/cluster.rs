//! The discrete-event simulation engine.
//!
//! [`Cluster`] binds the substrate together: homogeneous processor nodes
//! running a CPU scheduler, a shared Ethernet segment, per-node clocks,
//! background load generators, periodic pipeline tasks with replica
//! fan-out/fan-in, and a pluggable [`Controller`] invoked at every period
//! boundary — the execution environment of paper §3.
//!
//! The engine is deterministic: given the same [`ClusterConfig`] (including
//! the seed), the same task specs, workload functions, and controller
//! decisions, two runs produce identical event sequences and metrics.

use std::sync::Arc;

use crate::clock::{ClockConfig, ClockModel};
use crate::control::{ControlAction, ControlContext, Controller, PeriodObservation, StageObservation};
use crate::event::EventQueue;
use crate::hashing::FxHashMap;
use crate::ids::{JobId, MsgId, NodeId, StageId, SubtaskIdx, TaskId};
use crate::job::{Job, JobKind};
use crate::lane::{LaneHeap, LaneRef};
use crate::load::LoadGenerator;
use crate::metrics::{PeriodRecord, RunMetrics};
use crate::net::{BusConfig, Message, MsgPayload, SendOutcome, SharedBus};
use crate::node::{Node, Running};
use crate::perf::{PerfReport, PerfState};
use crate::pipeline::{split_tracks_into, InstanceState, TaskRuntime, TaskSpec};
use crate::rng::SimRng;
use crate::sched::SchedulerKind;
use crate::trace::{TraceEvent, TraceSink};
use crate::time::{SimDuration, SimTime};

/// Per-period workload source: maps the period index to the number of data
/// items (`ds(T_i, c)`) arriving in that period.
pub type WorkloadFn = Box<dyn FnMut(u64) -> u64 + Send>;

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of homogeneous processors (Table 1: 6).
    pub n_nodes: usize,
    /// CPU scheduling policy on every node (Table 1: round-robin, 1 ms).
    pub scheduler: SchedulerKind,
    /// Shared-segment parameters (Table 1: 100 Mbps Ethernet).
    pub bus: BusConfig,
    /// Clock-skew model.
    pub clock: ClockConfig,
    /// Master seed; all stochastic components derive from it.
    pub seed: u64,
    /// Utilization sampling interval.
    pub sample_interval: SimDuration,
    /// Maximum simultaneously in-flight instances per task before newly
    /// released instances are shed (counted as missed).
    pub max_in_flight: usize,
    /// Maximum release jitter, microseconds: each period's data arrival is
    /// delayed by a uniform draw in `[0, max]` past its nominal grid point
    /// — the paper's "event arrivals have nondeterministic distributions"
    /// (§1). 0 = perfectly periodic arrivals.
    pub release_jitter_us: u64,
    /// Total simulated time.
    pub horizon: SimDuration,
    /// Background-load fast path: carry ambient-load polls and the
    /// dispatch boundaries of background-only nodes on virtual lanes
    /// instead of heap events (see `docs/SIMULATOR.md`, "Background-load
    /// fast path"). Byte-identical to the slow path by construction —
    /// same RNG draws, same `(time, seq)` allocation — so this is an
    /// escape hatch for debugging and A/B verification, not a semantic
    /// knob. Default: enabled.
    pub bg_fast_path: bool,
}

impl ClusterConfig {
    /// The paper's Table 1 environment with a caller-chosen seed/horizon.
    pub fn paper_baseline(seed: u64, horizon: SimDuration) -> Self {
        ClusterConfig {
            n_nodes: 6,
            scheduler: SchedulerKind::paper_baseline(),
            bus: BusConfig::paper_baseline(),
            clock: ClockConfig::lan_default(),
            seed,
            sample_interval: SimDuration::from_millis(100),
            max_in_flight: 4,
            release_jitter_us: 0,
            horizon,
            bg_fast_path: true,
        }
    }
}

/// Events driving the simulation.
enum Ev {
    /// A new period of a task begins (data arrival).
    PeriodRelease { task: TaskId, index: u64 },
    /// A node's CPU slice ends.
    Dispatch { node: NodeId },
    /// A background generator produces its next job.
    BgPoll { gen: usize },
    /// The message on the wire finishes transmitting.
    TxComplete,
    /// A message reaches its destination.
    Deliver { msg: MsgId },
    /// Clock-synchronization round.
    ClockSync,
    /// Utilization sampling tick.
    Sample,
    /// Fault injection: a node dies permanently.
    NodeFail { node: NodeId },
    /// Fault injection: a node crashes (like `NodeFail`, but its in-flight
    /// bus traffic is torn down and it may restart later).
    NodeCrash { node: NodeId },
    /// A crashed node comes back online with cold caches.
    NodeRestart { node: NodeId },
    /// Sender-side retransmit timer for the original message `orig` fired.
    RetxTimeout { orig: MsgId },
}

impl Ev {
    /// Index into [`crate::perf::PHASE_NAMES`] for the perf breakdown.
    fn kind_index(&self) -> usize {
        match self {
            Ev::PeriodRelease { .. } => 0,
            Ev::Dispatch { .. } => 1,
            Ev::BgPoll { .. } => 2,
            Ev::TxComplete => 3,
            Ev::Deliver { .. } => 4,
            Ev::ClockSync => 5,
            Ev::Sample => 6,
            Ev::NodeFail { .. } => 7,
            Ev::NodeCrash { .. } => 8,
            Ev::NodeRestart { .. } => 9,
            Ev::RetxTimeout { .. } => 10,
        }
    }
}

/// Outcome of a completed run.
pub struct RunOutcome {
    /// Everything measured.
    pub metrics: RunMetrics,
    /// Controller name, for reports.
    pub controller: &'static str,
    /// The event trace, if tracing was enabled.
    pub trace: Option<TraceSink>,
    /// Performance counters, if `enable_perf` was called before the run.
    pub perf: Option<PerfReport>,
}

/// The simulated distributed system.
pub struct Cluster {
    config: ClusterConfig,
    queue: EventQueue<Ev>,
    nodes: Vec<Node>,
    bus: SharedBus,
    clocks: ClockModel,
    rng: SimRng,
    loadgens: Vec<Box<dyn LoadGenerator>>,
    tasks: Vec<TaskRuntime>,
    workloads: Vec<WorkloadFn>,
    controller: Box<dyn Controller>,
    /// Live jobs in a slot-reuse slab: `JobId` *is* the slot index, so
    /// the admit → dispatch → complete lifecycle (one per background
    /// arrival, millions per run) costs three `Vec` accesses instead of
    /// three hash-map operations. Ids are recycled; every id held by a
    /// scheduler queue or a `Running` slot is live by construction.
    jobs: Vec<Option<Job>>,
    /// Vacated job slots awaiting reuse.
    free_jobs: Vec<u32>,
    /// Messages between transmission completion (or local send) and
    /// delivery.
    in_flight: FxHashMap<MsgId, Message>,
    /// Pending sender-side retransmit state, keyed by the *original*
    /// message id. Empty unless `BusConfig::retx_timeout_us` is set.
    retx: FxHashMap<MsgId, RetxState>,
    /// Cached `retx_timeout_us > 0`, checked once per remote send.
    retx_enabled: bool,
    /// True when duplicates can reach a receiver (bus duplication or
    /// retransmission enabled) and per-replica origin dedup must run.
    dedup_enabled: bool,
    metrics: RunMetrics,
    /// Observations completed since the controller last ran.
    pending_obs: Vec<PeriodObservation>,
    /// Map (task, instance) → index into `metrics.periods`.
    record_idx: FxHashMap<(TaskId, u64), usize>,
    /// Bus busy total at the previous sample, for interval net utilization.
    sampled_bus_busy: SimDuration,
    sampled_at: SimTime,
    /// Optional structured trace.
    trace: Option<TraceSink>,
    // Scratch buffers reused across hot-path calls (dispatch fan-out and
    // message fan-out run once per stage per period); taken with
    // `mem::take` for the duration of a call and restored afterwards so
    // their capacity persists and the steady state allocates nothing.
    scratch_nodes: Vec<NodeId>,
    scratch_nodes2: Vec<NodeId>,
    scratch_shares: Vec<u64>,
    /// Reusable controller snapshot: static fields are built once, dynamic
    /// fields are refreshed in place each control epoch.
    ctx_scratch: Option<ControlContext>,
    /// Retired observation buffer, swapped with `pending_obs` each control
    /// epoch so both keep their capacity.
    obs_scratch: Vec<PeriodObservation>,
    /// Per-node virtual dispatch chains: when a node runs a *lone* job
    /// (empty ready queue) spanning several quanta, every intermediate
    /// per-quantum `Dispatch` is a state no-op — it serves one quantum,
    /// requeues into an empty queue, picks the same job back, and
    /// schedules the next slice. Those events are elided from the heap;
    /// this chain tracks the `(time, seq)` key the *next* one would have
    /// carried, with the seq allocated at the exact point the real event
    /// would have been scheduled, so same-time tie-breaking is
    /// bit-identical to the unelided execution (see
    /// [`EventQueue::alloc_seq`]). An arrival at the node re-materializes
    /// the pending link as a real truncated dispatch.
    chains: Vec<Option<DispatchChain>>,
    /// Per-generator poll state. With the fast path on, `next` holds the
    /// `(time, seq)` key of the next elided poll — the heap never sees a
    /// `BgPoll`. In both modes `dormant` marks a generator whose poll
    /// fired while its node was down; it is re-armed on restart.
    polls: Vec<PollLane>,
    /// Per-node elided dispatch boundary, used when the fast path is on
    /// and the node runs *only* background jobs: the slice-end `Dispatch`
    /// is carried here (key only, no heap event) and fired as a direct
    /// handler call. A stage admission re-materializes it via
    /// [`EventQueue::schedule_at_seq`] in its reserved tie-break slot.
    /// Invariant: a node never has both a chain and a boundary.
    bg_bounds: Vec<Option<(SimTime, u64)>>,
    /// Per-node count of live application (stage) jobs — queued or
    /// running. Zero means every job on the node is background load and
    /// its dispatch boundaries are eligible for elision.
    stage_jobs: Vec<u32>,
    /// Lazy min-heap over all virtual lanes (chains, polls, boundaries);
    /// replaces the per-event O(n_nodes) chain scan. Used in both modes:
    /// the minimum is the same however it is found, so sharing the heap
    /// keeps fast/slow paths byte-identical while making the lane lookup
    /// O(log n) for large clusters.
    lanes: LaneHeap,
    /// Cached `config.bg_fast_path`.
    bg_ff: bool,
    /// Instrumentation, present only when `enable_perf` was called. The
    /// hot loop pays a single branch per event when this is `None`.
    perf: Option<Box<PerfState>>,
}

/// Sender-side bookkeeping for one unacknowledged remote message.
#[derive(Debug, Clone, Copy)]
struct RetxState {
    /// Sending node (retransmissions come from here; a crashed sender
    /// gives up).
    src: NodeId,
    /// Destination node.
    dst: NodeId,
    /// Application payload size, for the resend.
    size_bytes: u64,
    /// Routing payload, for the resend.
    payload: MsgPayload,
    /// Retransmissions already performed.
    attempts: u32,
    /// Handle of the pending `RetxTimeout`, cancelled on delivery.
    timer: crate::event::EventHandle,
}

/// The elided continuation of a lone running job (see `Cluster::chains`).
#[derive(Debug, Clone, Copy)]
struct DispatchChain {
    /// Time of the next (elided) quantum-boundary dispatch.
    next_at: SimTime,
    /// The sequence number that dispatch would occupy in the event queue.
    next_seq: u64,
    /// When the job completes if it keeps the CPU: `slice_start +
    /// remaining` at chain creation. The dispatch at this instant has real
    /// effects and is scheduled as a real event when the chain reaches it.
    completion: SimTime,
    /// The node's scheduling quantum (chains only exist under a quantum).
    quantum: SimDuration,
}

/// Per-generator poll bookkeeping (see `Cluster::polls`).
#[derive(Debug, Clone, Copy, Default)]
struct PollLane {
    /// Fast path: `(time, seq)` of the next elided poll; `None` when the
    /// generator is retired (past horizon), dormant, or the slow path
    /// owns the poll as a real heap event.
    next: Option<(SimTime, u64)>,
    /// The generator's node was down when its poll fired; no further
    /// polls are armed until the node restarts.
    dormant: bool,
}

impl Cluster {
    /// Builds an empty cluster (no tasks, no load, null controller).
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.n_nodes > 0, "cluster needs at least one node");
        assert!(!config.horizon.is_zero(), "zero horizon");
        assert!(!config.sample_interval.is_zero(), "zero sample interval");
        assert!(config.max_in_flight >= 1, "max_in_flight must be >= 1");
        let mut rng = SimRng::from_seed_stream(config.seed, 0);
        let nodes = (0..config.n_nodes)
            .map(|i| Node::new(NodeId::from_index(i), config.scheduler.build()))
            .collect();
        let clocks = ClockModel::new(config.n_nodes, config.clock, &mut rng);
        // `SharedBus::new` validates the bus config and panics with a
        // clear message for bad values (zero/NaN bandwidth, zero MTU, …).
        let bus = SharedBus::new(config.bus);
        let retx_enabled = config.bus.retx_timeout_us > 0;
        let dedup_enabled = retx_enabled || config.bus.dup_prob > 0.0;
        let n_nodes = config.n_nodes;
        let bg_ff = config.bg_fast_path;
        Cluster {
            config,
            queue: EventQueue::with_capacity(1024),
            nodes,
            bus,
            clocks,
            rng,
            loadgens: Vec::new(),
            tasks: Vec::new(),
            workloads: Vec::new(),
            controller: Box::new(crate::control::NullController),
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            in_flight: FxHashMap::default(),
            retx: FxHashMap::default(),
            retx_enabled,
            dedup_enabled,
            metrics: RunMetrics::default(),
            pending_obs: Vec::new(),
            record_idx: FxHashMap::default(),
            sampled_bus_busy: SimDuration::ZERO,
            sampled_at: SimTime::ZERO,
            trace: None,
            scratch_nodes: Vec::new(),
            scratch_nodes2: Vec::new(),
            scratch_shares: Vec::new(),
            ctx_scratch: None,
            obs_scratch: Vec::new(),
            chains: vec![None; n_nodes],
            polls: Vec::new(),
            bg_bounds: vec![None; n_nodes],
            stage_jobs: vec![0; n_nodes],
            lanes: LaneHeap::default(),
            bg_ff,
            perf: None,
        }
    }

    /// Enables structured tracing with the given event capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceSink::bounded(capacity));
    }

    /// Enables performance instrumentation for the coming run. The
    /// optional `alloc_probe` is a monotone allocation counter (installed
    /// by the embedding binary; the simulator itself forbids `unsafe` and
    /// cannot count allocations) sampled around each control epoch.
    pub fn enable_perf(&mut self, alloc_probe: Option<fn() -> u64>) {
        self.perf = Some(Box::new(PerfState::new(alloc_probe)));
    }

    /// Schedules a node failure at the given instant (fault injection).
    /// The node's running and queued jobs are lost; instances that lose a
    /// job are failed and counted as missed; the node never dispatches
    /// again. The paper motivates adaptive management partly by
    /// survivability (§1) — this is the survivability stressor.
    ///
    /// # Panics
    /// Panics if the node does not exist or the failure is scheduled after
    /// the horizon.
    pub fn fail_node_at(&mut self, node: NodeId, at: SimTime) {
        assert!(node.index() < self.config.n_nodes, "no such node {node}");
        assert!(
            at <= SimTime::ZERO + self.config.horizon,
            "failure beyond horizon"
        );
        self.queue.schedule(at, Ev::NodeFail { node });
    }

    /// Schedules a node *crash* at `at`: like [`Self::fail_node_at`]
    /// (running and queued jobs lost, affected instances failed) but the
    /// node's in-flight bus traffic is also torn down — its queued
    /// messages are purged and a frame it was mid-transmitting never
    /// completes — and, if `restart_after` is given, the node rejoins that
    /// much later with cold caches and empty queues (see [`Node::restart`]
    /// and the `cold` flag in [`ControlContext`]). A restart scheduled
    /// past the horizon never happens.
    ///
    /// # Panics
    /// Panics if the node does not exist, the crash is scheduled after the
    /// horizon, or `restart_after` is zero.
    pub fn crash_node_at(&mut self, node: NodeId, at: SimTime, restart_after: Option<SimDuration>) {
        assert!(node.index() < self.config.n_nodes, "no such node {node}");
        assert!(
            at <= SimTime::ZERO + self.config.horizon,
            "crash beyond horizon"
        );
        self.queue.schedule(at, Ev::NodeCrash { node });
        if let Some(d) = restart_after {
            assert!(!d.is_zero(), "zero restart delay");
            let back = at + d;
            if back <= SimTime::ZERO + self.config.horizon {
                self.queue.schedule(back, Ev::NodeRestart { node });
            }
        }
    }

    #[inline]
    fn record_trace(&mut self, now: SimTime, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(now, ev);
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Adds a periodic task with its workload source. The task's id must
    /// equal its insertion order.
    ///
    /// # Panics
    /// Panics if the spec is invalid for this cluster.
    pub fn add_task(&mut self, spec: TaskSpec, workload: WorkloadFn) {
        assert_eq!(
            spec.id.index(),
            self.tasks.len(),
            "task id must equal insertion index"
        );
        if let Err(e) = spec.validate(self.config.n_nodes) {
            panic!("invalid task spec: {e}");
        }
        self.tasks.push(TaskRuntime::new(spec));
        self.workloads.push(workload);
    }

    /// Attaches a background load generator.
    ///
    /// # Panics
    /// Panics if the generator targets a nonexistent node or its
    /// configuration fails [`LoadGenerator::validate`] (non-finite or
    /// out-of-range utilization, degenerate intervals — anything that
    /// could spin the event loop or silently skew the ambient load).
    pub fn add_load(&mut self, gen: Box<dyn LoadGenerator>) {
        assert!(
            gen.node().index() < self.config.n_nodes,
            "load generator targets nonexistent node"
        );
        if let Err(e) = gen.validate() {
            panic!("invalid load generator config: {e}");
        }
        self.loadgens.push(gen);
        self.polls.push(PollLane::default());
    }

    /// Installs the resource-management policy.
    pub fn set_controller(&mut self, controller: Box<dyn Controller>) {
        self.controller = controller;
    }

    /// Runs the simulation to the horizon and returns the metrics.
    pub fn run(mut self) -> RunOutcome {
        // Seed the initial event population in one reserved burst.
        self.queue.reserve(self.tasks.len() + self.loadgens.len() + 2);
        for t in 0..self.tasks.len() {
            self.queue.schedule(
                SimTime::ZERO,
                Ev::PeriodRelease {
                    task: TaskId::from_index(t),
                    index: 0,
                },
            );
        }
        for g in 0..self.loadgens.len() {
            let at = self.loadgens[g].first_at(&mut self.rng);
            if self.bg_ff {
                // Fast path: the poll lives on a virtual lane. Its seq is
                // allocated exactly where the slow path would schedule it,
                // so tie-breaking stays bit-identical.
                let seq = self.queue.alloc_seq();
                self.polls[g].next = Some((at, seq));
                self.lanes.push(at, seq, LaneRef::Poll(g as u32));
            } else {
                self.queue.schedule(at, Ev::BgPoll { gen: g });
            }
        }
        self.queue
            .schedule(SimTime::ZERO + self.config.sample_interval, Ev::Sample);
        self.queue
            .schedule(SimTime::ZERO + self.config.clock.sync_interval, Ev::ClockSync);

        let horizon = SimTime::ZERO + self.config.horizon;
        if let Some(p) = self.perf.as_mut() {
            p.run_started = Some(std::time::Instant::now());
        }
        // The queue's min key is re-read only when the queue has actually
        // changed (its version ticks on every schedule/pop/cancel); long
        // lane-only stretches — background-heavy phases — skip the heap
        // peek entirely.
        let mut queue_key: Option<(SimTime, u64)> = None;
        let mut queue_ver = u64::MAX;
        loop {
            // The earliest pending work is the min over the real queue
            // and the virtual lanes (elided dispatches and polls); both
            // carry a total `(time, seq)` order key.
            if self.queue.version() != queue_ver {
                queue_key = self.queue.peek_key();
                queue_ver = self.queue.version();
            }
            let lane_key = self.peek_lane();
            let (t, lane) = match (queue_key, lane_key) {
                (None, None) => break,
                (Some((qt, qs)), Some((lt, ls, l))) => {
                    if (lt, ls) < (qt, qs) {
                        (lt, Some(l))
                    } else {
                        (qt, None)
                    }
                }
                (Some((qt, _)), None) => (qt, None),
                (None, Some((lt, _, l))) => (lt, Some(l)),
            };
            if t > horizon {
                break;
            }
            let (now, ev) = match lane {
                Some(LaneRef::Chain(i)) => {
                    let i = i as usize;
                    let link = self.chains[i].expect("chain link exists");
                    if link.next_at < link.completion {
                        // Intermediate link: rekeyed to the next link in
                        // place — its heap entry is still the top. Then
                        // burst: as long as the *next* link still
                        // precedes every other pending key (queue min
                        // and runner-up lane, neither of which moves
                        // during an advance), fire it immediately
                        // instead of re-entering the loop.
                        let bound = match (queue_key, self.lanes.runner_up()) {
                            (Some(q), Some(r)) => Some(q.min(r)),
                            (Some(q), None) => Some(q),
                            (None, r) => r,
                        };
                        self.advance_chain(i);
                        while let Some(l) = self.chains[i] {
                            if l.next_at >= l.completion
                                || l.next_at > horizon
                                || bound.is_some_and(|b| (l.next_at, l.next_seq) >= b)
                            {
                                break;
                            }
                            self.advance_chain(i);
                        }
                        continue;
                    }
                    // The chain's final link: the lone job's completion
                    // dispatch, fired as a direct handler call with no
                    // heap round-trip.
                    self.lanes.pop();
                    self.chains[i] = None;
                    self.queue.advance_now(link.next_at);
                    let node = self.nodes[i].id;
                    if self.bg_ff && self.stage_jobs[i] == 0 {
                        // Background-only completion: the whole dispatch
                        // round-trip leaves the event loop, not just the
                        // heap traffic.
                        if let Some(p) = self.perf.as_mut() {
                            p.report.elided_bg_dispatches += 1;
                        }
                        self.on_dispatch(link.next_at, node);
                        continue;
                    }
                    (link.next_at, Ev::Dispatch { node })
                }
                Some(LaneRef::Poll(g)) => {
                    // Fired without popping: everything the handler can
                    // push keys strictly after `t`, so the entry is still
                    // the top afterwards and is rekeyed to the next poll
                    // (or popped, if the generator retires).
                    self.queue.advance_now(t);
                    self.on_virtual_poll(t, g as usize);
                    continue;
                }
                Some(LaneRef::Bound(i)) => {
                    // A background-only node's slice boundary: the same
                    // `Dispatch` the slow path pops from the heap, fired
                    // directly through the unmodified handler — off the
                    // event loop entirely (a live boundary implies the
                    // node is still background-only).
                    let i = i as usize;
                    self.lanes.pop();
                    self.bg_bounds[i] = None;
                    self.queue.advance_now(t);
                    if let Some(p) = self.perf.as_mut() {
                        p.report.elided_bg_dispatches += 1;
                    }
                    self.on_dispatch(t, self.nodes[i].id);
                    continue;
                }
                None => self.queue.pop().expect("peeked event exists"),
            };
            if self.perf.is_none() {
                self.handle(now, ev);
            } else {
                let kind = ev.kind_index();
                let t0 = std::time::Instant::now();
                self.handle(now, ev);
                let dt = t0.elapsed().as_nanos() as u64;
                let p = self.perf.as_mut().expect("perf enabled");
                p.report.events[kind] += 1;
                p.report.ns[kind] += dt;
            }
        }
        self.finalize(horizon);
        let perf = self.perf.take().map(|mut p| {
            p.report.queue = self.queue.stats();
            p.report.wall_ns = p
                .run_started
                .map(|s| s.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            p.report
        });
        RunOutcome {
            metrics: self.metrics,
            controller: self.controller.name(),
            trace: self.trace,
            perf,
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::PeriodRelease { task, index } => self.on_period_release(now, task, index),
            Ev::Dispatch { node } => self.on_dispatch(now, node),
            Ev::BgPoll { gen } => self.on_bg_poll(now, gen),
            Ev::TxComplete => self.on_tx_complete(now),
            Ev::Deliver { msg } => self.on_deliver(now, msg),
            Ev::ClockSync => self.on_clock_sync(now),
            Ev::Sample => self.on_sample(now),
            Ev::NodeFail { node } => self.on_node_fail(now, node),
            Ev::NodeCrash { node } => self.on_node_crash(now, node),
            Ev::NodeRestart { node } => self.on_node_restart(now, node),
            Ev::RetxTimeout { orig } => self.on_retx_timeout(now, orig),
        }
    }

    /// Kills a node: abort its running job, drop its ready queue, mark it
    /// dead. Instances whose jobs are lost can never complete and are
    /// failed immediately.
    fn on_node_fail(&mut self, now: SimTime, node: NodeId) {
        if !self.nodes[node.index()].alive {
            return;
        }
        self.nodes[node.index()].alive = false;
        self.record_trace(now, TraceEvent::NodeFailed { node });
        let mut lost: Vec<JobId> = Vec::new();
        // Virtual lanes die with the node; their heap entries go stale.
        self.chains[node.index()] = None;
        self.bg_bounds[node.index()] = None;
        if let Some(running) = self.nodes[node.index()].running.take() {
            if let Some(h) = running.dispatch_handle {
                self.queue.cancel(h);
            }
            lost.push(running.job);
        }
        while let Some(j) = self.nodes[node.index()].sched.pick() {
            lost.push(j);
        }
        self.nodes[node.index()].end_busy(now);
        for jid in lost {
            if let Some(job) = self.remove_job(jid) {
                if let JobKind::Stage { stage, instance, .. } = job.kind {
                    self.fail_instance(now, stage.task, instance);
                }
            }
        }
    }

    /// A crash is a failure plus bus teardown: the crashed node's queued
    /// messages are purged and a frame it was mid-transmitting is aborted
    /// (the medium is freed for the next waiting sender). The aborted
    /// frame's already-scheduled `TxComplete` stays in the event queue and
    /// is ignored as stale by [`SharedBus::tx_complete`].
    fn on_node_crash(&mut self, now: SimTime, node: NodeId) {
        if !self.nodes[node.index()].alive {
            return;
        }
        self.on_node_fail(now, node);
        let max_backoff = self.bus.config().max_backoff_us;
        let backoff = if max_backoff > 0
            && self.bus.transmitting_src() == Some(node)
            && self.bus.queue_len() > 0
        {
            SimDuration::from_micros(self.rng.below(max_backoff + 1))
        } else {
            SimDuration::ZERO
        };
        let aborted = self.bus.abort_from(now, node, backoff);
        if let Some((_, done)) = aborted.next {
            self.queue.schedule(done, Ev::TxComplete);
        }
        for m in aborted.purged.into_iter().chain(aborted.in_flight) {
            let MsgPayload::StageData { stage, replica, instance, .. } = m.payload;
            // A dead sender cannot retransmit: retire its timer too.
            if let Some(st) = self.retx.remove(&m.origin) {
                self.queue.cancel(st.timer);
            } else if self.origin_delivered(stage, replica, instance, m.origin) {
                // Leftover redundant retransmission; the data already
                // arrived, so purging this copy loses nothing.
                continue;
            }
            self.metrics.messages_lost += 1;
            self.record_trace(now, TraceEvent::MessageLost { msg: m.origin, dst: m.dst });
            self.fail_instance(now, stage.task, instance);
        }
    }

    /// Brings a crashed node back online: cold caches, empty queues, and
    /// a reset utilization estimate. Until the estimate warms up the node
    /// reports as `cold` in the [`ControlContext`], so managers treat its
    /// utilization as missing rather than zero.
    fn on_node_restart(&mut self, now: SimTime, node: NodeId) {
        if self.nodes[node.index()].alive {
            return; // never crashed (or already restarted): nothing to do
        }
        self.nodes[node.index()].restart(now);
        self.metrics.node_restarts += 1;
        self.record_trace(now, TraceEvent::NodeRestarted { node });
        // Re-arm the node's background generators that went dormant while
        // it was down: ambient load resumes with the node. A generator
        // whose poll was still pending at restart (crash shorter than one
        // interarrival gap) is not dormant and needs nothing — its poll
        // fires normally. Index order keeps the re-arm deterministic.
        for g in 0..self.loadgens.len() {
            if self.loadgens[g].node() != node || !self.polls[g].dormant {
                continue;
            }
            self.polls[g].dormant = false;
            if self.bg_ff {
                let seq = self.queue.alloc_seq();
                self.polls[g].next = Some((now, seq));
                self.lanes.push(now, seq, LaneRef::Poll(g as u32));
            } else {
                self.queue.schedule(now, Ev::BgPoll { gen: g });
            }
        }
    }

    /// The sender-side retransmit timer fired without an acknowledged
    /// delivery: resend (the copy contends on the bus like any message)
    /// with deterministic exponential backoff, or give up once the retry
    /// budget is spent or the sender itself has died.
    fn on_retx_timeout(&mut self, now: SimTime, orig: MsgId) {
        let Some(mut st) = self.retx.remove(&orig) else {
            return; // delivered (or torn down) before the timer fired
        };
        let cfg = *self.bus.config();
        let MsgPayload::StageData { stage, instance, .. } = st.payload;
        if st.attempts >= cfg.retx_max_retries || !self.nodes[st.src.index()].alive {
            self.metrics.messages_lost += 1;
            self.record_trace(now, TraceEvent::MessageLost { msg: orig, dst: st.dst });
            self.fail_instance(now, stage.task, instance);
            return;
        }
        st.attempts += 1;
        self.metrics.retransmits += 1;
        self.record_trace(now, TraceEvent::Retransmit { msg: orig, attempt: st.attempts });
        match self.bus.resend(now, st.src, st.dst, st.size_bytes, st.payload, orig) {
            SendOutcome::Transmitting { tx_done, .. } => {
                self.queue.schedule(tx_done, Ev::TxComplete);
            }
            SendOutcome::Queued { .. } => {}
            SendOutcome::DeliverLocally { .. } => {
                unreachable!("retransmit timers are only armed for remote messages")
            }
        }
        // Deterministic exponential backoff: timeout << attempts. No RNG —
        // replays must be byte-identical, and the contention the copy
        // meets on the bus already desynchronizes senders.
        let delay = SimDuration::from_micros(cfg.retx_timeout_us << st.attempts.min(16));
        st.timer = self.queue.schedule(now + delay, Ev::RetxTimeout { orig });
        self.retx.insert(orig, st);
    }

    /// True when some copy of `origin` already reached its stage replica.
    /// A redundant retransmission (the retx timer fired while the original
    /// was still queued) can then be lost or dropped harmlessly: the data
    /// arrived, so the instance must not be failed. Only ever true when
    /// `dedup_enabled` populates `seen_origins`, which covers every
    /// configuration that can produce redundant copies.
    fn origin_delivered(&self, stage: StageId, replica: u32, instance: u64, origin: MsgId) -> bool {
        self.tasks[stage.task.index()]
            .instances
            .get(&instance)
            .is_some_and(|inst| {
                inst.stages[stage.subtask.index()].seen_origins[replica as usize].contains(&origin)
            })
    }

    /// Fails one in-flight instance: it is removed, its period record is
    /// marked missed, and the controller is told (as a stage-less, missed
    /// observation, like a shed period).
    fn fail_instance(&mut self, _now: SimTime, task: TaskId, instance: u64) {
        let Some(inst) = self.tasks[task.index()].instances.remove(&instance) else {
            return;
        };
        if let Some(&i) = self.record_idx.get(&(task, instance)) {
            self.metrics.periods[i].missed = Some(true);
        }
        self.pending_obs.push(PeriodObservation {
            task,
            instance,
            released: inst.released,
            tracks: inst.tracks,
            end_to_end: None,
            missed: true,
            stages: Vec::new(),
        });
    }

    fn on_period_release(&mut self, now: SimTime, task: TaskId, index: u64) {
        // 1. Let the controller react to everything that completed.
        self.run_controller(now);

        // 2. Draw this period's workload.
        let tracks = (self.workloads[task.index()])(index);
        self.tasks[task.index()].last_tracks = tracks;

        // 3. Admission: shed if too many instances are still in flight.
        let in_flight = self.tasks[task.index()].instances.len();
        let placement = self.tasks[task.index()].placement.clone();
        let replicas: Vec<u32> = placement.iter().map(|p| p.len() as u32).collect();
        let rec = PeriodRecord {
            instance: index,
            released: now,
            tracks,
            replicas_per_stage: replicas,
            end_to_end: None,
            missed: None,
            shed: false,
        };
        let rec_i = self.metrics.periods.len();
        self.metrics.periods.push(rec);
        self.record_idx.insert((task, index), rec_i);

        if in_flight >= self.config.max_in_flight {
            self.record_trace(now, TraceEvent::Shed { instance: index });
            let rec = &mut self.metrics.periods[rec_i];
            rec.shed = true;
            rec.missed = Some(true);
            self.pending_obs.push(PeriodObservation {
                task,
                instance: index,
                released: now,
                tracks,
                end_to_end: None,
                missed: true,
                stages: Vec::new(),
            });
        } else {
            // 4. Release: instantiate and start the first stage.
            self.record_trace(now, TraceEvent::Release { instance: index, tracks });
            let inst = InstanceState::new(index, now, tracks, placement);
            self.tasks[task.index()].instances.insert(index, inst);
            self.start_stage(now, task, index, SubtaskIdx(0));
        }

        // 5. Schedule the next release on the nominal grid plus jitter
        // (jitter never accumulates: it is applied to the grid point, not
        // to the previous jittered release).
        let nominal = SimTime::ZERO + self.tasks[task.index()].spec.period * (index + 1);
        let jitter = if self.config.release_jitter_us > 0 {
            SimDuration::from_micros(self.rng.below(self.config.release_jitter_us + 1))
        } else {
            SimDuration::ZERO
        };
        let next = nominal + jitter;
        if next <= SimTime::ZERO + self.config.horizon {
            // max(now): a jittered previous release can never push the
            // next one into the simulated past.
            self.queue
                .schedule(next.max(now), Ev::PeriodRelease { task, index: index + 1 });
        }
    }

    /// Starts stage `stage` of instance `index`: for the first stage the
    /// sensor data is locally available, so replica jobs are admitted
    /// directly; later stages are started by message delivery.
    fn start_stage(&mut self, now: SimTime, task: TaskId, index: u64, stage: SubtaskIdx) {
        // Borrow the scratch buffers for the call; `admit_job` needs `&mut
        // self`, so the replica list and shares live outside `self` while
        // jobs are admitted. Capacity survives across calls.
        let mut nodes = std::mem::take(&mut self.scratch_nodes);
        let mut shares = std::mem::take(&mut self.scratch_shares);
        let rt = &mut self.tasks[task.index()];
        let inst = rt.instances.get_mut(&index).expect("instance exists");
        nodes.clear();
        nodes.extend_from_slice(&inst.placement[stage.index()]);
        split_tracks_into(inst.tracks, nodes.len(), &mut shares);
        let cost = rt.spec.stages[stage.index()].cost;
        {
            let prog = &mut inst.stages[stage.index()];
            prog.started = Some(now);
            prog.tracks_in.clear();
            prog.tracks_in.extend_from_slice(&shares);
            for d in prog.msg_delay.iter_mut() {
                *d = Some(SimDuration::ZERO);
            }
        }
        let stage_id = StageId::new(task, stage);
        for (r, (&node, &share)) in nodes.iter().zip(shares.iter()).enumerate() {
            let demand = cost.demand(share).max(SimDuration::from_micros(1));
            self.admit_job(
                now,
                node,
                JobKind::Stage {
                    stage: stage_id,
                    replica: r as u32,
                    instance: index,
                },
                demand,
                0,
            );
        }
        self.scratch_nodes = nodes;
        self.scratch_shares = shares;
    }

    fn on_dispatch(&mut self, now: SimTime, node: NodeId) {
        let running = self.nodes[node.index()]
            .running
            .take()
            .expect("dispatch event on idle node");
        debug_assert_eq!(running.slice_end, now, "dispatch at wrong instant");
        let served = now.since(running.slice_start);
        let job = self.jobs[running.job.index()]
            .as_mut()
            .expect("running job exists");
        job.serve(served);
        if job.is_complete() {
            let job = self.remove_job(running.job).expect("job exists");
            if let JobKind::Stage { stage, replica, instance } = job.kind {
                let released = job.released;
                self.on_stage_job_complete(now, stage, replica, instance, released);
            }
        } else {
            let prio = job.priority;
            self.nodes[node.index()].sched.requeue(running.job, prio);
        }
        self.try_dispatch(now, node);
    }

    fn on_stage_job_complete(
        &mut self,
        now: SimTime,
        stage: StageId,
        replica: u32,
        instance: u64,
        released: SimTime,
    ) {
        let task = stage.task;
        let n_stages = self.tasks[task.index()].spec.n_stages();
        let deadline = self.tasks[task.index()].spec.deadline;
        let finished = {
            let rt = &mut self.tasks[task.index()];
            let Some(inst) = rt.instances.get_mut(&instance) else {
                return; // instance was failed (node death) while this job ran
            };
            let prog = &mut inst.stages[stage.subtask.index()];
            prog.exec_latency[replica as usize] = Some(now.since(released));
            prog.done_replicas += 1;
            if prog.done_replicas as usize == prog.exec_latency.len() {
                prog.completed = Some(now);
                true
            } else {
                false
            }
        };
        self.record_trace(
            now,
            TraceEvent::ReplicaDone {
                stage,
                replica,
                instance,
                latency: now.since(released),
            },
        );
        if !finished {
            return;
        }
        self.record_trace(now, TraceEvent::StageDone { stage, instance });
        let next = SubtaskIdx(stage.subtask.0 + 1);
        if next.index() < n_stages {
            self.send_stage_messages(now, task, instance, stage.subtask, next);
        } else {
            // Last stage: the instance is complete.
            let inst = {
                let rt = &mut self.tasks[task.index()];
                let mut inst = rt.instances.remove(&instance).expect("instance exists");
                inst.completed = Some(now);
                inst
            };
            let e2e = inst.end_to_end().expect("completed");
            let missed = e2e > deadline;
            self.record_trace(
                now,
                TraceEvent::InstanceDone {
                    instance,
                    latency: e2e,
                    missed,
                },
            );
            if let Some(&i) = self.record_idx.get(&(task, instance)) {
                let rec = &mut self.metrics.periods[i];
                rec.end_to_end = Some(e2e);
                rec.missed = Some(missed);
            }
            for (j, p) in inst.stages.iter().enumerate() {
                self.metrics.stage_records.push(crate::metrics::StageRecord {
                    task: task.0,
                    instance,
                    stage: j as u32,
                    replicas: inst.placement[j].len() as u32,
                    exec_ms: p
                        .max_exec_latency()
                        .unwrap_or(SimDuration::ZERO)
                        .as_millis_f64(),
                    msg_ms: p
                        .max_msg_delay()
                        .unwrap_or(SimDuration::ZERO)
                        .as_millis_f64(),
                });
            }
            let stages = inst
                .stages
                .iter()
                .enumerate()
                .map(|(j, p)| StageObservation {
                    subtask: SubtaskIdx::from_index(j),
                    replicas: inst.placement[j].len() as u32,
                    tracks: inst.tracks,
                    exec_latency: p.max_exec_latency().unwrap_or(SimDuration::ZERO),
                    inbound_msg_delay: p.max_msg_delay().unwrap_or(SimDuration::ZERO),
                    stage_latency: match (p.started, p.completed) {
                        (Some(s), Some(c)) => c.since(s),
                        _ => SimDuration::ZERO,
                    },
                })
                .collect();
            self.pending_obs.push(PeriodObservation {
                task,
                instance,
                released: inst.released,
                tracks: inst.tracks,
                end_to_end: Some(e2e),
                missed,
                stages,
            });
        }
    }

    /// Fans the completed stage's output out to the successor's replicas.
    ///
    /// `max(k_src, k_dst)` messages are sent: message `i` carries an even
    /// share of the data stream from source replica `i % k_src` to
    /// destination replica `i % k_dst`, so every source replica ships its
    /// output and every destination replica learns its full input from the
    /// messages addressed to it.
    fn send_stage_messages(
        &mut self,
        now: SimTime,
        task: TaskId,
        instance: u64,
        from: SubtaskIdx,
        to: SubtaskIdx,
    ) {
        let mut src_nodes = std::mem::take(&mut self.scratch_nodes);
        let mut dst_nodes = std::mem::take(&mut self.scratch_nodes2);
        let mut shares = std::mem::take(&mut self.scratch_shares);
        let bytes_per_track = {
            let rt = &mut self.tasks[task.index()];
            let inst = rt.instances.get_mut(&instance).expect("instance exists");
            src_nodes.clear();
            src_nodes.extend_from_slice(&inst.placement[from.index()]);
            dst_nodes.clear();
            dst_nodes.extend_from_slice(&inst.placement[to.index()]);
            let n_msgs = src_nodes.len().max(dst_nodes.len());
            split_tracks_into(inst.tracks, n_msgs, &mut shares);
            let prog = &mut inst.stages[to.index()];
            prog.started = Some(now);
            for (i, _) in shares.iter().enumerate() {
                prog.msgs_expected[i % dst_nodes.len()] += 1;
            }
            rt.spec.stages[from.index()].output_bytes_per_track
        };
        let stage_id = StageId::new(task, to);
        for (i, &share) in shares.iter().enumerate() {
            let src = src_nodes[i % src_nodes.len()];
            let dst_replica = i % dst_nodes.len();
            let dst = dst_nodes[dst_replica];
            let size = (share as f64 * bytes_per_track).ceil() as u64;
            let payload = MsgPayload::StageData {
                stage: stage_id,
                replica: dst_replica as u32,
                instance,
                tracks: share,
            };
            match self.bus.send(now, src, dst, size, payload) {
                SendOutcome::DeliverLocally { msg, at } => {
                    let m = self.bus.take_local(msg);
                    self.in_flight.insert(msg, m);
                    self.queue.schedule(at, Ev::Deliver { msg });
                }
                SendOutcome::Transmitting { msg, tx_done } => {
                    self.queue.schedule(tx_done, Ev::TxComplete);
                    self.arm_retx(now, msg, src, dst, size, payload);
                }
                SendOutcome::Queued { msg } => {
                    self.arm_retx(now, msg, src, dst, size, payload);
                }
            }
        }
        self.scratch_nodes = src_nodes;
        self.scratch_nodes2 = dst_nodes;
        self.scratch_shares = shares;
    }

    /// Arms the sender-side retransmit timer for a freshly sent remote
    /// message. No-op (no event, no state) unless `retx_timeout_us` is
    /// configured, so the default path is untouched.
    fn arm_retx(
        &mut self,
        now: SimTime,
        orig: MsgId,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        payload: MsgPayload,
    ) {
        if !self.retx_enabled {
            return;
        }
        let timeout = SimDuration::from_micros(self.bus.config().retx_timeout_us);
        let timer = self.queue.schedule(now + timeout, Ev::RetxTimeout { orig });
        self.retx.insert(
            orig,
            RetxState {
                src,
                dst,
                size_bytes,
                payload,
                attempts: 0,
                timer,
            },
        );
    }

    fn on_tx_complete(&mut self, now: SimTime) {
        let max_backoff = self.bus.config().max_backoff_us;
        let backoff = if max_backoff > 0 && self.bus.queue_len() > 0 {
            SimDuration::from_micros(self.rng.below(max_backoff + 1))
        } else {
            SimDuration::ZERO
        };
        let Some((msg, next)) = self.bus.tx_complete(now, backoff) else {
            // Stale completion: the frame it announced was aborted by a
            // node crash. The wire has already been re-dispatched.
            return;
        };
        // The wire is free for the next sender regardless of what the
        // lossy medium does to the finished frame below.
        if let Some((_, done)) = next {
            self.queue.schedule(done, Ev::TxComplete);
        }
        // Failure realism, each draw gated behind its default-off knob so
        // the baseline consumes no randomness. Draw order is fixed:
        // backoff (above), drop, duplication.
        let cfg = *self.bus.config();
        if cfg.drop_prob > 0.0 && self.rng.chance(cfg.drop_prob) {
            // Corrupted on the wire: bandwidth burned, nothing delivered.
            let MsgPayload::StageData { stage, replica, instance, .. } = msg.payload;
            self.metrics.messages_dropped += 1;
            self.record_trace(now, TraceEvent::MessageDropped { msg: msg.origin });
            if !self.retx.contains_key(&msg.origin)
                && !self.origin_delivered(stage, replica, instance, msg.origin)
            {
                // No retransmission coming and no copy ever arrived: the
                // stage can never assemble its input.
                self.fail_instance(now, stage.task, instance);
            }
            return;
        }
        let deliver_at = now + self.bus.propagation();
        let id = msg.id;
        if cfg.dup_prob > 0.0 && self.rng.chance(cfg.dup_prob) {
            let dup_id = self.bus.alloc_copy_id();
            let dup = Message { id: dup_id, ..msg.clone() };
            self.metrics.messages_duplicated += 1;
            self.record_trace(now, TraceEvent::MessageDuplicated { msg: msg.origin });
            self.in_flight.insert(dup_id, dup);
            self.queue.schedule(deliver_at, Ev::Deliver { msg: dup_id });
        }
        self.in_flight.insert(id, msg);
        self.queue.schedule(deliver_at, Ev::Deliver { msg: id });
    }

    fn on_deliver(&mut self, now: SimTime, msg: MsgId) {
        let m = self.in_flight.remove(&msg).expect("in-flight message exists");
        let MsgPayload::StageData { stage, replica, instance, tracks } = m.payload;
        if !self.nodes[m.dst.index()].alive {
            // Routed to a dead node. With a retransmission pending the
            // sender will retry (the node may restart in time), and a
            // leftover redundant copy whose origin already arrived is
            // harmless — neither is a final loss (give-up is accounted in
            // `on_retx_timeout`). Otherwise the stage can never assemble
            // its input: count the loss and fail the instance now.
            if self.retx.contains_key(&m.origin)
                || self.origin_delivered(stage, replica, instance, m.origin)
            {
                return;
            }
            self.metrics.messages_lost += 1;
            self.record_trace(now, TraceEvent::MessageLost { msg: m.origin, dst: m.dst });
            self.fail_instance(now, stage.task, instance);
            return;
        }
        // Data arrived at a live destination: the sender's retransmit
        // timer (if armed) is satisfied, even if this copy turns out to
        // be a duplicate below.
        if let Some(st) = self.retx.remove(&m.origin) {
            self.queue.cancel(st.timer);
        }
        let delay = now.since(m.enqueued);
        let demand = {
            let rt = &mut self.tasks[stage.task.index()];
            let Some(inst) = rt.instances.get_mut(&instance) else {
                // Instance was finalized early (e.g. at horizon); drop.
                return;
            };
            let prog = &mut inst.stages[stage.subtask.index()];
            let r = replica as usize;
            if self.dedup_enabled {
                if prog.seen_origins[r].contains(&m.origin) {
                    return; // spurious duplicate or redundant retransmit
                }
                prog.seen_origins[r].push(m.origin);
            }
            prog.msgs_received[r] += 1;
            prog.tracks_in[r] += tracks;
            prog.msg_delay[r] = Some(prog.msg_delay[r].map_or(delay, |d| d.max(delay)));
            if prog.msgs_received[r] < prog.msgs_expected[r] {
                return; // replica still waiting for more shares
            }
            rt.spec.stages[stage.subtask.index()]
                .cost
                .demand(rt.instances[&instance].stages[stage.subtask.index()].tracks_in[r])
        };
        self.admit_job(
            now,
            m.dst,
            JobKind::Stage {
                stage,
                replica,
                instance,
            },
            demand.max(SimDuration::from_micros(1)),
            0,
        );
    }

    /// Slow-path poll (real `BgPoll` heap event): admit the arrival and
    /// reschedule.
    fn on_bg_poll(&mut self, now: SimTime, gen: usize) {
        if let Some(next_at) = self.poll_generator(now, gen) {
            self.queue.schedule(next_at, Ev::BgPoll { gen });
        }
    }

    /// Fast-path poll (virtual lane, no heap event): identical to
    /// [`Self::on_bg_poll`] except the next poll's `(time, seq)` key is
    /// reserved instead of scheduled. The seq allocation sits at the
    /// exact program point of the slow path's `schedule` — after the
    /// admission — so tie-breaking is bit-identical.
    /// Fires an elided poll whose lane entry is still at the top of the
    /// lane heap (the run loop peeks but does not pop). On re-arm the
    /// entry is rekeyed in place — one sift instead of a pop + push;
    /// when the generator retires (dormant or past the horizon) the
    /// entry is popped.
    fn on_virtual_poll(&mut self, now: SimTime, gen: usize) {
        let (_, prev_seq) = self.polls[gen].next.take().expect("poll lane is armed");
        match self.poll_generator(now, gen) {
            Some(next_at) => {
                let seq = self.queue.alloc_seq();
                self.polls[gen].next = Some((next_at, seq));
                self.lanes
                    .rekey_top(prev_seq, next_at, seq, LaneRef::Poll(gen as u32));
            }
            None => {
                self.lanes.pop();
            }
        }
        if let Some(p) = self.perf.as_mut() {
            p.report.elided_bg_polls += 1;
        }
    }

    /// Common poll body: draw the generator (same RNG call, same program
    /// point in both paths), admit the arrival, and return the next poll
    /// time if one is due within the horizon. A poll that finds its node
    /// down marks the generator dormant — no RNG draw, no reschedule —
    /// until [`Self::on_node_restart`] re-arms it, so ambient load
    /// survives crash–restart instead of silently vanishing.
    fn poll_generator(&mut self, now: SimTime, gen: usize) -> Option<SimTime> {
        let node = self.loadgens[gen].node();
        if !self.nodes[node.index()].alive {
            self.polls[gen].dormant = true;
            return None;
        }
        let arrival = self.loadgens[gen].arrive(now, &mut self.rng);
        // A generator yielding `next_at <= now` would re-poll at the
        // current instant forever and spin the event loop; this is a
        // contract violation by the generator, not a simulation outcome.
        assert!(
            arrival.next_at > now,
            "load generator {gen} scheduled its next arrival at {} <= now {now}; \
             degenerate intervals would spin the event loop",
            arrival.next_at,
        );
        if !arrival.demand.is_zero() {
            let gid = crate::ids::LoadGenId(gen as u32);
            self.admit_job(now, node, JobKind::Background(gid), arrival.demand, 1);
        }
        (arrival.next_at <= SimTime::ZERO + self.config.horizon).then_some(arrival.next_at)
    }

    fn on_clock_sync(&mut self, now: SimTime) {
        self.clocks.sync_round(now, &mut self.rng);
        let next = now + self.config.clock.sync_interval;
        if next <= SimTime::ZERO + self.config.horizon {
            self.queue.schedule(next, Ev::ClockSync);
        }
    }

    fn on_sample(&mut self, now: SimTime) {
        let row: Vec<f64> = self
            .nodes
            .iter_mut()
            .map(|n| n.sample_utilization(now))
            .collect();
        self.metrics.cpu_samples.push(row);
        let bus_busy = self.bus.busy_total(now);
        let interval = now.saturating_since(self.sampled_at);
        if !interval.is_zero() {
            let u = bus_busy.saturating_sub(self.sampled_bus_busy).as_secs_f64()
                / interval.as_secs_f64();
            self.metrics.net_samples.push(u);
        }
        self.sampled_bus_busy = bus_busy;
        self.sampled_at = now;
        let next = now + self.config.sample_interval;
        if next <= SimTime::ZERO + self.config.horizon {
            self.queue.schedule(next, Ev::Sample);
        }
    }

    // ------------------------------------------------------------------
    // Mechanics
    // ------------------------------------------------------------------

    fn admit_job(
        &mut self,
        now: SimTime,
        node: NodeId,
        kind: JobKind,
        demand: SimDuration,
        priority: u8,
    ) {
        if !self.nodes[node.index()].alive {
            // Work routed to a dead node is lost; a stage job's instance
            // can never complete.
            if let JobKind::Stage { stage, instance, .. } = kind {
                self.fail_instance(now, stage.task, instance);
            }
            return;
        }
        let slot = match self.free_jobs.pop() {
            Some(s) => s,
            None => {
                self.jobs.push(None);
                (self.jobs.len() - 1) as u32
            }
        };
        let id = JobId(slot);
        let job = Job::new(id, node, kind, demand, now).with_priority(priority);
        self.jobs[slot as usize] = Some(job);
        if kind.is_stage() {
            self.stage_jobs[node.index()] += 1;
        }
        if self.bg_ff && self.stage_jobs[node.index()] == 0 {
            // Still background-only: the running job (if chained) is no
            // longer alone, but its truncated slice boundary can stay
            // virtual — same key, no heap event.
            self.truncate_chain_to_bound(node);
        } else {
            // A stage job makes the node externally consequential: any
            // elided boundary or chain link re-materializes as a real
            // event in its reserved tie-break slot.
            self.materialize_bound(node);
            self.truncate_chain(node);
        }
        self.nodes[node.index()].sched.enqueue(id, priority);
        self.try_dispatch(now, node);
    }

    /// Frees a job slot, returning the job. The id becomes eligible for
    /// reuse by the next admission.
    #[inline]
    fn remove_job(&mut self, id: JobId) -> Option<Job> {
        let job = self.jobs[id.index()].take();
        if let Some(j) = &job {
            self.free_jobs.push(id.0);
            if j.kind.is_stage() {
                self.stage_jobs[j.node.index()] -= 1;
            }
        }
        job
    }

    /// Re-materializes a node's pending elided dispatch as a real event,
    /// in its reserved tie-break position: another job arrived, so
    /// round-robin interleaving must resume at the next quantum boundary
    /// exactly as it would have without elision.
    fn truncate_chain(&mut self, node: NodeId) {
        if let Some(link) = self.chains[node.index()].take() {
            let h = self
                .queue
                .schedule_at_seq(link.next_at, link.next_seq, Ev::Dispatch { node });
            let r = self.nodes[node.index()]
                .running
                .as_mut()
                .expect("chained node has a running job");
            r.slice_end = link.next_at;
            r.dispatch_handle = Some(h);
        }
    }

    /// Like [`Self::truncate_chain`], but the truncated slice boundary
    /// stays virtual: on a background-only node the dispatch at
    /// `link.next_at` has no external observer, so its `(time, seq)` key
    /// moves from the chain to the boundary lane instead of the heap.
    /// The chain's heap entry goes stale; the key is unchanged, so event
    /// order — and hence every RNG draw and output byte — is too.
    fn truncate_chain_to_bound(&mut self, node: NodeId) {
        if let Some(link) = self.chains[node.index()].take() {
            self.bg_bounds[node.index()] = Some((link.next_at, link.next_seq));
            self.lanes
                .push(link.next_at, link.next_seq, LaneRef::Bound(node.index() as u32));
            let r = self.nodes[node.index()]
                .running
                .as_mut()
                .expect("chained node has a running job");
            r.slice_end = link.next_at;
            debug_assert!(r.dispatch_handle.is_none(), "chained node had a heap dispatch");
        }
    }

    /// Re-materializes a node's elided background slice boundary as a
    /// real `Dispatch` in its reserved tie-break slot: a stage job was
    /// admitted, so from here on the node's scheduling is externally
    /// observable and runs on real events.
    fn materialize_bound(&mut self, node: NodeId) {
        if let Some((at, seq)) = self.bg_bounds[node.index()].take() {
            let h = self.queue.schedule_at_seq(at, seq, Ev::Dispatch { node });
            let r = self.nodes[node.index()]
                .running
                .as_mut()
                .expect("bounded node has a running job");
            debug_assert_eq!(r.slice_end, at, "boundary key drifted from the running slice");
            r.dispatch_handle = Some(h);
        }
    }

    /// The `(time, seq, lane)` key of the earliest live virtual lane, if
    /// any. Stale heap entries — their lane was re-keyed or cancelled
    /// since the push — are detected by seq mismatch (seqs are unique per
    /// run) and discarded here.
    #[inline]
    fn peek_lane(&mut self) -> Option<(SimTime, u64, LaneRef)> {
        loop {
            let e = self.lanes.peek()?;
            let live = match e.lane {
                LaneRef::Chain(i) => self.chains[i as usize]
                    .is_some_and(|l| l.next_seq == e.seq),
                LaneRef::Poll(g) => self.polls[g as usize]
                    .next
                    .is_some_and(|(_, s)| s == e.seq),
                LaneRef::Bound(i) => self.bg_bounds[i as usize]
                    .is_some_and(|(_, s)| s == e.seq),
            };
            if live {
                return Some((e.at, e.seq, e.lane));
            }
            self.lanes.pop();
        }
    }

    /// Fires one elided intermediate dispatch. For the lone job this is a
    /// state no-op (serve one quantum, requeue into an empty queue, pick
    /// itself back), so only its bookkeeping is replayed: the dispatch
    /// that handler would have scheduled takes the next sequence number,
    /// now. The chain's last link — the job's completion, which has real
    /// effects — keeps `next_at == completion` and is fired by the run
    /// loop as a direct handler call, never touching the heap.
    fn advance_chain(&mut self, i: usize) {
        let link = self.chains[i].expect("chain link exists");
        debug_assert!(link.next_at < link.completion, "final link fired as intermediate");
        self.queue.advance_now(link.next_at);
        let next = (link.next_at + link.quantum).min(link.completion);
        let next_seq = self.queue.alloc_seq();
        self.chains[i] = Some(DispatchChain {
            next_at: next,
            next_seq,
            ..link
        });
        // The fired link's entry is still the heap top (the run loop
        // peeks, it does not pop): rekey it to the next link in place.
        self.lanes
            .rekey_top(link.next_seq, next, next_seq, LaneRef::Chain(i as u32));
        if let Some(p) = self.perf.as_mut() {
            p.report.elided_dispatches += 1;
        }
    }

    fn try_dispatch(&mut self, now: SimTime, node: NodeId) {
        let (jid, lone, quantum) = {
            let n = &mut self.nodes[node.index()];
            if n.running.is_some() {
                return;
            }
            match n.sched.pick() {
                Some(jid) => (jid, n.sched.ready_len() == 0, n.sched.quantum()),
                None => {
                    n.end_busy(now);
                    return;
                }
            }
        };
        let job = self.jobs[jid.index()].as_mut().expect("picked job exists");
        if job.first_dispatch.is_none() {
            job.first_dispatch = Some(now);
        }
        let remaining = job.remaining;
        // Fast path, background-only node: the coming slice boundary has
        // no external observer, so it is carried on the boundary lane
        // instead of the heap (the chain arm below is already heap-free).
        let bg_only = self.bg_ff && self.stage_jobs[node.index()] == 0;
        let (slice_end, handle) = match quantum {
            // A lone job spanning several quanta: every intermediate
            // dispatch would requeue into an empty queue and pick the
            // same job back, so the whole run is carried on the virtual
            // chain. The first elided dispatch would be scheduled right
            // here; its sequence number is allocated right here.
            Some(q) if lone && remaining > q => {
                let completion = now + remaining;
                let next_at = now + q;
                let next_seq = self.queue.alloc_seq();
                self.chains[node.index()] = Some(DispatchChain {
                    next_at,
                    next_seq,
                    completion,
                    quantum: q,
                });
                self.lanes.push(next_at, next_seq, LaneRef::Chain(node.index() as u32));
                (completion, None)
            }
            Some(q) => {
                let end = now + q.min(remaining);
                if bg_only {
                    (end, self.elide_bound(end, node))
                } else {
                    (end, Some(self.queue.schedule(end, Ev::Dispatch { node })))
                }
            }
            None => {
                let end = now + remaining;
                if bg_only {
                    (end, self.elide_bound(end, node))
                } else {
                    (end, Some(self.queue.schedule(end, Ev::Dispatch { node })))
                }
            }
        };
        let n = &mut self.nodes[node.index()];
        n.running = Some(Running {
            job: jid,
            slice_start: now,
            slice_end,
            dispatch_handle: handle,
        });
        n.begin_busy(now);
    }

    /// Arms the boundary lane for a background-only node's slice end and
    /// returns the (absent) dispatch handle. The seq is allocated at the
    /// exact program point where the slow path would `schedule`, keeping
    /// tie-break order bit-identical.
    #[inline]
    fn elide_bound(&mut self, end: SimTime, node: NodeId) -> Option<crate::event::EventHandle> {
        let seq = self.queue.alloc_seq();
        self.bg_bounds[node.index()] = Some((end, seq));
        self.lanes.push(end, seq, LaneRef::Bound(node.index() as u32));
        None
    }

    fn run_controller(&mut self, now: SimTime) {
        // Swap the pending observations out through the retired scratch
        // buffer: both vectors keep their capacity across control epochs.
        let mut obs = std::mem::take(&mut self.obs_scratch);
        obs.clear();
        std::mem::swap(&mut obs, &mut self.pending_obs);

        // Reuse one ControlContext for the whole run. The per-task static
        // fields (replicability, periods, deadlines) are built exactly
        // once; the dynamic fields are refreshed in place. Placements are
        // Arc clones of the runtimes' current placement — no deep copy.
        let mut ctx = self.ctx_scratch.take().unwrap_or_else(|| ControlContext {
            now,
            node_util_pct: Vec::with_capacity(self.nodes.len()),
            alive: Vec::with_capacity(self.nodes.len()),
            cold: Vec::with_capacity(self.nodes.len()),
            placements: Vec::with_capacity(self.tasks.len()),
            replicable: self
                .tasks
                .iter()
                .map(|t| t.spec.stages.iter().map(|s| s.replicable).collect())
                .collect(),
            periods: self.tasks.iter().map(|t| t.spec.period).collect(),
            deadlines: self.tasks.iter().map(|t| t.spec.deadline).collect(),
            last_tracks: Vec::with_capacity(self.tasks.len()),
        });
        ctx.now = now;
        ctx.node_util_pct.clear();
        ctx.node_util_pct
            .extend(self.nodes.iter().map(|n| n.observed_utilization_pct()));
        ctx.alive.clear();
        ctx.alive.extend(self.nodes.iter().map(|n| n.alive));
        ctx.cold.clear();
        ctx.cold.extend(self.nodes.iter().map(|n| n.is_cold()));
        ctx.placements.clear();
        ctx.placements
            .extend(self.tasks.iter().map(|t| Arc::clone(&t.placement)));
        ctx.last_tracks.clear();
        ctx.last_tracks.extend(self.tasks.iter().map(|t| t.last_tracks));

        let actions = match self.perf.as_ref().map(|p| p.alloc_probe) {
            None => self.controller.on_period_boundary(&obs, &ctx),
            Some(probe) => {
                let alloc0 = probe.map(|f| f());
                let t0 = std::time::Instant::now();
                let actions = self.controller.on_period_boundary(&obs, &ctx);
                let dt = t0.elapsed().as_nanos() as u64;
                if let Some(p) = self.perf.as_mut() {
                    p.report.control_epochs += 1;
                    p.report.controller_ns += dt;
                    if let (Some(a0), Some(f)) = (alloc0, probe) {
                        *p.report.epoch_allocs.get_or_insert(0) += f().saturating_sub(a0);
                    }
                }
                actions
            }
        };
        for a in actions {
            match a {
                ControlAction::SetPlacement { task, subtask, nodes } => {
                    if task.index() >= self.tasks.len()
                        || nodes.iter().any(|n| {
                            n.index() >= self.config.n_nodes || !self.nodes[n.index()].alive
                        })
                    {
                        self.metrics.rejected_actions += 1;
                        continue;
                    }
                    let rt = &mut self.tasks[task.index()];
                    let before = rt.placement.get(subtask.index()).cloned();
                    match rt.set_placement(subtask, nodes, self.config.n_nodes) {
                        Ok(()) => {
                            if before.as_deref() != Some(&rt.placement[subtask.index()]) {
                                self.metrics.placement_changes += 1;
                                let new_nodes = rt.placement[subtask.index()].clone();
                                self.record_trace(
                                    now,
                                    TraceEvent::Placement {
                                        stage: StageId::new(task, subtask),
                                        nodes: new_nodes,
                                    },
                                );
                            }
                        }
                        Err(_) => self.metrics.rejected_actions += 1,
                    }
                }
            }
        }
        self.ctx_scratch = Some(ctx);
        self.obs_scratch = obs;
    }

    fn finalize(&mut self, horizon: SimTime) {
        self.metrics.horizon = horizon.since(SimTime::ZERO);
        self.metrics.forecast_residuals = self.controller.forecast_residuals();
        self.metrics.cpu_lifetime_util = self
            .nodes
            .iter()
            .map(|n| n.lifetime_utilization(horizon))
            .collect();
        self.metrics.net_lifetime_util = self.bus.lifetime_utilization(horizon);
        self.metrics.bytes_offered = self.bus.bytes_offered;
        self.metrics.messages_offered = self.bus.messages_offered;
        // Decide instances that were still running: if their deadline has
        // already passed at the horizon, they have certainly missed.
        for rt in &self.tasks {
            for inst in rt.instances.values() {
                if horizon > inst.released + rt.spec.deadline {
                    if let Some(&i) = self.record_idx.get(&(rt.spec.id, inst.instance)) {
                        self.metrics.periods[i].missed = Some(true);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::PeriodicLoad;
    use crate::net::JamWindow;
    use crate::pipeline::{PolynomialCost, StageSpec};

    fn tiny_task(stage_costs: &[(f64, bool, u32)]) -> TaskSpec {
        TaskSpec {
            id: TaskId(0),
            name: "test".into(),
            period: SimDuration::from_secs(1),
            deadline: SimDuration::from_millis(990),
            track_bytes: 80,
            stages: stage_costs
                .iter()
                .map(|&(lin, replicable, home)| StageSpec {
                    name: format!("s{home}"),
                    cost: PolynomialCost::linear(lin, 1.0),
                    replicable,
                    home: NodeId(home),
                    output_bytes_per_track: 80.0,
                })
                .collect(),
        }
    }

    fn config(horizon_s: u64) -> ClusterConfig {
        let mut c = ClusterConfig::paper_baseline(42, SimDuration::from_secs(horizon_s));
        c.clock = ClockConfig::perfect();
        c
    }

    #[test]
    fn empty_cluster_runs_to_horizon() {
        let out = Cluster::new(config(5)).run();
        assert_eq!(out.metrics.horizon, SimDuration::from_secs(5));
        assert!(out.metrics.periods.is_empty());
        assert_eq!(out.controller, "none");
        assert!(out.metrics.cpu_lifetime_util.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn single_stage_task_completes_every_period() {
        let mut cl = Cluster::new(config(10));
        cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 500));
        let out = cl.run();
        // 10 s horizon, 1 s period, releases at 0..=10.
        assert_eq!(out.metrics.periods.len(), 11);
        let decided = out.metrics.periods.iter().filter(|p| p.missed.is_some()).count();
        assert!(decided >= 10);
        for p in out.metrics.periods.iter().take(10) {
            assert_eq!(p.missed, Some(false), "unloaded stage must meet 990ms");
            let l = p.end_to_end.unwrap();
            // 500 tracks = 5 hundreds * 1 ms + 1 ms const = 6 ms of demand.
            assert!(l >= SimDuration::from_millis(6), "latency {l}");
            assert!(l < SimDuration::from_millis(20), "latency {l}");
        }
    }

    #[test]
    fn pipeline_stages_run_in_series_across_nodes() {
        let mut cl = Cluster::new(config(6));
        cl.add_task(
            tiny_task(&[(1.0, false, 0), (1.0, false, 1), (1.0, false, 2)]),
            Box::new(|_| 1000),
        );
        let out = cl.run();
        let p = &out.metrics.periods[0];
        // 3 stages x (10 + 1) ms demand plus 2 network hops
        // (80 KB ≈ 6.7 ms wire time each).
        let l = p.end_to_end.unwrap();
        assert!(l >= SimDuration::from_millis(33 + 12), "latency {l}");
        assert!(l < SimDuration::from_millis(120), "latency {l}");
        assert_eq!(p.missed, Some(false));
        // Network was actually used.
        assert!(out.metrics.net_lifetime_util > 0.0);
        assert!(out.metrics.bytes_offered >= 2 * 80_000);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut cl = Cluster::new(config(8));
            cl.add_task(
                tiny_task(&[(2.0, false, 0), (3.0, false, 1)]),
                Box::new(|i| 300 + 40 * i),
            );
            cl.add_load(Box::new(PeriodicLoad::new(
                crate::ids::LoadGenId(0),
                NodeId(0),
                SimDuration::from_millis(10),
                0.3,
            )));
            cl.run()
        };
        let a = run();
        let b = run();
        let lat = |o: &RunOutcome| -> Vec<Option<SimDuration>> {
            o.metrics.periods.iter().map(|p| p.end_to_end).collect()
        };
        assert_eq!(lat(&a), lat(&b));
        assert_eq!(a.metrics.cpu_lifetime_util, b.metrics.cpu_lifetime_util);
    }

    #[test]
    fn background_load_inflates_latency() {
        let latency_with_bg = |util: f64| {
            let mut cl = Cluster::new(config(20));
            cl.add_task(tiny_task(&[(10.0, false, 0)]), Box::new(|_| 1000));
            if util > 0.0 {
                cl.add_load(Box::new(PeriodicLoad::new(
                    crate::ids::LoadGenId(0),
                    NodeId(0),
                    SimDuration::from_millis(10),
                    util,
                )));
            }
            let out = cl.run();
            let ls: Vec<f64> = out
                .metrics
                .periods
                .iter()
                .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
                .collect();
            ls.iter().sum::<f64>() / ls.len() as f64
        };
        let l0 = latency_with_bg(0.0);
        let l50 = latency_with_bg(0.5);
        let l80 = latency_with_bg(0.8);
        // Demand is ~101 ms; under RR with duty-cycle load the job is
        // stretched roughly by 1/(1-u).
        assert!(l50 > 1.6 * l0, "50% load should stretch: {l0} -> {l50}");
        assert!(l80 > 3.0 * l0, "80% load should stretch: {l0} -> {l80}");
        assert!(l50 < 3.0 * l0, "stretch should stay near 2x: {l0} -> {l50}");
    }

    #[test]
    fn replicated_stage_fans_out_and_joins() {
        struct Replicator;
        impl Controller for Replicator {
            fn on_period_boundary(
                &mut self,
                _c: &[PeriodObservation],
                ctx: &ControlContext,
            ) -> Vec<ControlAction> {
                // Pin stage 1 to three replicas from the start.
                if ctx.placements[0][1].len() == 1 {
                    vec![ControlAction::SetPlacement {
                        task: TaskId(0),
                        subtask: SubtaskIdx(1),
                        nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
                    }]
                } else {
                    Vec::new()
                }
            }
            fn name(&self) -> &'static str {
                "replicator"
            }
        }
        let mut spec = tiny_task(&[(1.0, false, 0), (0.0, true, 1), (1.0, false, 4)]);
        // Quadratic cost on the replicable middle stage.
        spec.stages[1].cost = PolynomialCost::new(1.0, 0.0, 1.0);
        let mk = |replicated: bool| {
            let mut cl = Cluster::new(config(10));
            cl.add_task(spec.clone(), Box::new(|_| 3000));
            if replicated {
                cl.set_controller(Box::new(Replicator));
            }
            cl.run()
        };
        let base = mk(false);
        let repl = mk(true);
        let avg = |o: &RunOutcome| {
            let ls: Vec<f64> = o
                .metrics
                .periods
                .iter()
                .skip(2) // let the placement change take effect
                .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
                .collect();
            ls.iter().sum::<f64>() / ls.len() as f64
        };
        // Quadratic stage: 30 hundreds -> 900 ms solo; in 3 replicas of 10
        // hundreds each -> 100 ms. End-to-end must drop dramatically.
        assert!(
            avg(&repl) < 0.5 * avg(&base),
            "replication must cut latency: {} vs {}",
            avg(&repl),
            avg(&base)
        );
        assert_eq!(repl.metrics.placement_changes, 1);
        // Replica counts recorded in the period records.
        assert!(repl
            .metrics
            .periods
            .iter()
            .skip(2)
            .all(|p| p.replicas_per_stage[1] == 3));
    }

    #[test]
    fn overload_sheds_and_counts_missed() {
        // One stage with demand far beyond the period on one node.
        let mut spec = tiny_task(&[(0.0, false, 0)]);
        spec.stages[0].cost = PolynomialCost::new(0.0, 0.0, 5_000.0); // 5 s
        let mut cl = Cluster::new(config(30));
        cl.add_task(spec, Box::new(|_| 100));
        let out = cl.run();
        let shed = out.metrics.periods.iter().filter(|p| p.shed).count();
        assert!(shed > 10, "sustained overload must shed ({shed})");
        let missed = out
            .metrics
            .periods
            .iter()
            .filter(|p| p.missed == Some(true))
            .count();
        assert!(missed >= shed);
    }

    #[test]
    fn invalid_controller_actions_are_rejected_not_fatal() {
        struct Bad;
        impl Controller for Bad {
            fn on_period_boundary(
                &mut self,
                _c: &[PeriodObservation],
                _ctx: &ControlContext,
            ) -> Vec<ControlAction> {
                vec![
                    ControlAction::SetPlacement {
                        task: TaskId(0),
                        subtask: SubtaskIdx(0),
                        nodes: vec![NodeId(0), NodeId(1)], // not replicable
                    },
                    ControlAction::SetPlacement {
                        task: TaskId(9),
                        subtask: SubtaskIdx(0),
                        nodes: vec![NodeId(0)], // no such task
                    },
                ]
            }
            fn name(&self) -> &'static str {
                "bad"
            }
        }
        let mut cl = Cluster::new(config(3));
        cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 100));
        cl.set_controller(Box::new(Bad));
        let out = cl.run();
        assert!(out.metrics.rejected_actions >= 2);
        assert_eq!(out.metrics.placement_changes, 0);
        assert!(out.metrics.periods.iter().take(3).all(|p| p.missed == Some(false)));
    }

    #[test]
    fn cpu_utilization_metric_reflects_offered_load() {
        let mut cl = Cluster::new(config(30));
        cl.add_load(Box::new(PeriodicLoad::new(
            crate::ids::LoadGenId(0),
            NodeId(2),
            SimDuration::from_millis(10),
            0.42,
        )));
        let out = cl.run();
        let u = out.metrics.cpu_lifetime_util[2];
        assert!((u - 0.42).abs() < 0.02, "node 2 utilization {u}");
        assert!(out.metrics.cpu_lifetime_util[0] < 0.01);
        // Sampled (EWMA inputs) utilization rows were collected.
        assert!(out.metrics.cpu_samples.len() > 100);
    }

    #[test]
    #[should_panic(expected = "task id must equal insertion index")]
    fn add_task_enforces_dense_ids() {
        let mut cl = Cluster::new(config(1));
        let mut s = tiny_task(&[(1.0, false, 0)]);
        s.id = TaskId(3);
        cl.add_task(s, Box::new(|_| 0));
    }

    #[test]
    #[should_panic(expected = "invalid task spec")]
    fn add_task_validates_spec() {
        let mut cl = Cluster::new(config(1));
        cl.add_task(tiny_task(&[(1.0, false, 17)]), Box::new(|_| 0));
    }

    #[test]
    fn replicated_predecessor_fans_into_narrow_successor() {
        // Stage 1 has 3 replicas, stage 2 has 1: three messages must all
        // arrive before stage 2 runs, and stage 2 must see the full stream.
        struct Pin;
        impl Controller for Pin {
            fn on_period_boundary(
                &mut self,
                _c: &[PeriodObservation],
                ctx: &ControlContext,
            ) -> Vec<ControlAction> {
                if ctx.placements[0][1].len() == 1 {
                    vec![ControlAction::SetPlacement {
                        task: TaskId(0),
                        subtask: SubtaskIdx(1),
                        nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
                    }]
                } else {
                    Vec::new()
                }
            }
            fn name(&self) -> &'static str {
                "pin"
            }
        }
        let mut spec = tiny_task(&[(1.0, false, 0), (0.0, true, 1), (1.0, false, 4)]);
        spec.stages[1].cost = PolynomialCost::linear(1.0, 1.0);
        let mut cl = Cluster::new(config(8));
        cl.add_task(spec, Box::new(|_| 3000));
        cl.set_controller(Box::new(Pin));
        let out = cl.run();
        // Every settled period after the placement change completes and
        // the final stage processed the whole 3000-track stream: its
        // demand is 30 + 1 = 31 ms, so end-to-end comfortably exceeds it.
        for p in out.metrics.periods.iter().skip(2).take(5) {
            assert_eq!(p.missed, Some(false));
            assert_eq!(p.replicas_per_stage, vec![1, 3, 1]);
            assert!(p.end_to_end.unwrap() >= SimDuration::from_millis(31 + 10 + 31));
        }
        // 3 replicas -> messages fan 3-into-1 across two hops: at least
        // 6 network messages per period after the change.
        assert!(out.metrics.messages_offered >= 6 * 6);
    }

    #[test]
    fn static_priority_shields_stage_jobs_from_background_load() {
        // Stage jobs are admitted at priority 0, background at 1: under the
        // static-priority policy the application barely notices heavy
        // ambient load, unlike under round-robin.
        let latency_under = |kind: SchedulerKind| {
            let mut cfg = config(20);
            cfg.scheduler = kind;
            let mut cl = Cluster::new(cfg);
            cl.add_task(tiny_task(&[(10.0, false, 0)]), Box::new(|_| 1_000));
            cl.add_load(Box::new(PeriodicLoad::new(
                crate::ids::LoadGenId(0),
                NodeId(0),
                SimDuration::from_millis(10),
                0.7,
            )));
            let out = cl.run();
            let ls: Vec<f64> = out
                .metrics
                .periods
                .iter()
                .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
                .collect();
            ls.iter().sum::<f64>() / ls.len() as f64
        };
        let rr = latency_under(SchedulerKind::paper_baseline());
        let prio = latency_under(SchedulerKind::StaticPriority {
            quantum_us: Some(1_000),
        });
        // Demand is ~101 ms; RR at 70% load stretches toward ~3x, while
        // priority keeps it near intrinsic (only the in-flight background
        // job can block, non-preemptively).
        assert!(prio < 1.3 * 101.0, "priority-shielded latency {prio}");
        assert!(rr > 2.0 * prio, "rr {rr} vs priority {prio}");
    }

    #[test]
    fn contention_backoff_inflates_network_time() {
        // Enable a large CSMA backoff and fan one stage into three
        // replicas: the extra contention intervals inflate end-to-end
        // latency relative to the collision-free bus.
        let run = |backoff_us: u64| {
            let mut cfg = config(10);
            cfg.bus.max_backoff_us = backoff_us;
            let mut cl = Cluster::new(cfg);
            let mut spec = tiny_task(&[(1.0, false, 0), (0.0, true, 1), (1.0, false, 4)]);
            spec.stages[1].cost = PolynomialCost::linear(0.5, 1.0);
            cl.add_task(spec, Box::new(|_| 6_000));
            struct Pin;
            impl Controller for Pin {
                fn on_period_boundary(
                    &mut self,
                    _c: &[PeriodObservation],
                    ctx: &ControlContext,
                ) -> Vec<ControlAction> {
                    if ctx.placements[0][1].len() == 1 {
                        vec![ControlAction::SetPlacement {
                            task: TaskId(0),
                            subtask: SubtaskIdx(1),
                            nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
                        }]
                    } else {
                        Vec::new()
                    }
                }
                fn name(&self) -> &'static str {
                    "pin"
                }
            }
            cl.set_controller(Box::new(Pin));
            let out = cl.run();
            out.metrics
                .periods
                .iter()
                .skip(2)
                .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
                .sum::<f64>()
        };
        let clean = run(0);
        let contended = run(20_000); // up to 20 ms per contention win
        assert!(
            contended > clean + 10.0,
            "backoff must cost latency: {clean} vs {contended}"
        );
    }

    #[test]
    fn release_jitter_delays_arrivals_without_drift() {
        let mut cfg = config(30);
        cfg.release_jitter_us = 200_000; // up to 200 ms late
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 100));
        let out = cl.run();
        let mut jittered = 0;
        for p in &out.metrics.periods {
            let nominal = SimTime::from_secs(p.instance);
            let offset = p.released.saturating_since(nominal);
            assert!(
                offset <= SimDuration::from_millis(200),
                "jitter bounded: instance {} off by {offset}",
                p.instance
            );
            assert!(p.released >= nominal, "never early");
            if !offset.is_zero() {
                jittered += 1;
            }
        }
        assert!(jittered > 20, "most releases are jittered: {jittered}");
        // Jitter never accumulates: the 25th release is within one jitter
        // bound of its grid point (checked above for every instance).
    }

    #[test]
    fn zero_jitter_keeps_exact_periodicity() {
        let mut cl = Cluster::new(config(10));
        cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 100));
        let out = cl.run();
        for p in &out.metrics.periods {
            assert_eq!(p.released, SimTime::from_secs(p.instance));
        }
    }

    #[test]
    fn zero_workload_periods_still_complete() {
        let mut cl = Cluster::new(config(5));
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 0));
        let out = cl.run();
        for p in out.metrics.periods.iter().take(4) {
            assert_eq!(p.missed, Some(false));
            assert_eq!(p.tracks, 0);
        }
    }

    /// Regression: crashing a node while it holds the bus used to leave a
    /// stale `TxComplete` event behind that hit
    /// `expect("tx_complete with idle bus")`. The crash must be tolerated
    /// and the aborted message accounted as lost.
    #[test]
    fn crash_mid_transmission_is_tolerated_and_counted() {
        // Stage 0 on p0 computes 31 ms then ships 240 KB (~20 ms wire
        // time) to p1; crashing p0 at 40 ms lands mid-transmission.
        let mut cl = Cluster::new(config(3));
        cl.enable_trace(4096);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 3000));
        cl.crash_node_at(NodeId(0), SimTime::from_millis(40), None);
        let out = cl.run();
        assert!(out.metrics.messages_lost >= 1, "aborted in-flight message counts as lost");
        let trace = out.trace.expect("trace enabled");
        assert!(
            trace.filtered(|e| matches!(e, TraceEvent::MessageLost { .. })).count() >= 1,
            "loss is traced:\n{}",
            trace.render()
        );
        // With the only first-stage processor gone, later periods miss.
        assert!(out.metrics.periods.iter().any(|p| p.missed == Some(true)));
    }

    #[test]
    fn crash_restart_rejoins_and_periods_recover() {
        // p1 hosts the second stage. Crash it at 2.5 s, restart at 4.5 s:
        // periods released in the outage window miss (their messages land
        // on a dead node and count as lost), later ones complete again.
        let mut cl = Cluster::new(config(10));
        cl.enable_trace(4096);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 500));
        cl.crash_node_at(
            NodeId(1),
            SimTime::from_millis(2_500),
            Some(SimDuration::from_secs(2)),
        );
        let out = cl.run();
        assert_eq!(out.metrics.node_restarts, 1);
        assert!(out.metrics.messages_lost >= 1, "dead-destination deliveries count as lost");
        let trace = out.trace.expect("trace enabled");
        assert_eq!(
            trace
                .filtered(|e| matches!(e, TraceEvent::NodeRestarted { node } if *node == NodeId(1)))
                .count(),
            1
        );
        for p in &out.metrics.periods {
            let s = p.released.as_secs_f64();
            if s < 2.0 {
                assert_eq!(p.missed, Some(false), "pre-crash instance {}", p.instance);
            } else if (3.0..4.0).contains(&s) {
                assert_eq!(p.missed, Some(true), "outage instance {}", p.instance);
            } else if (5.0..9.0).contains(&s) {
                assert_eq!(p.missed, Some(false), "post-restart instance {}", p.instance);
            }
        }
    }

    #[test]
    fn lossy_bus_with_retransmit_recovers() {
        let mut cfg = config(20);
        cfg.bus.drop_prob = 0.3;
        cfg.bus.retx_timeout_us = 20_000;
        cfg.bus.retx_max_retries = 6;
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
        let out = cl.run();
        assert!(out.metrics.messages_dropped > 0, "a 30% lossy bus drops something");
        assert!(out.metrics.retransmits > 0, "drops trigger retransmissions");
        let completed = out
            .metrics
            .periods
            .iter()
            .filter(|p| p.missed == Some(false))
            .count();
        assert!(
            completed >= 18,
            "retransmission recovers almost every period: {completed}/21"
        );
    }

    #[test]
    fn without_retransmit_losses_become_missed_deadlines() {
        let mut cfg = config(20);
        cfg.bus.drop_prob = 0.3; // no retx_timeout_us: losses are final
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
        let out = cl.run();
        assert!(out.metrics.messages_dropped > 0);
        assert_eq!(out.metrics.retransmits, 0);
        let missed = out
            .metrics
            .periods
            .iter()
            .filter(|p| p.missed == Some(true))
            .count();
        assert!(missed >= 2, "unrecovered losses must miss deadlines: {missed}");
    }

    #[test]
    fn duplicates_are_suppressed_and_change_nothing() {
        let run = |dup_prob: f64| {
            let mut cfg = config(10);
            cfg.bus.dup_prob = dup_prob;
            let mut cl = Cluster::new(cfg);
            cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
            cl.run()
        };
        let clean = run(0.0);
        let dupped = run(1.0);
        assert_eq!(clean.metrics.messages_duplicated, 0);
        assert!(dupped.metrics.messages_duplicated > 0);
        // Receiver-side suppression makes duplication behaviorally inert:
        // every latency matches the clean run exactly.
        let lat = |o: &RunOutcome| -> Vec<Option<SimDuration>> {
            o.metrics.periods.iter().map(|p| p.end_to_end).collect()
        };
        assert_eq!(lat(&clean), lat(&dupped));
    }

    #[test]
    fn jam_window_inflates_end_to_end_latency() {
        let run = |jam: Option<JamWindow>| {
            let mut cfg = config(10);
            cfg.bus.jam = jam;
            let mut cl = Cluster::new(cfg);
            cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 3000));
            let out = cl.run();
            let ls: Vec<f64> = out
                .metrics
                .periods
                .iter()
                .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
                .collect();
            ls.iter().sum::<f64>() / ls.len() as f64
        };
        let clean = run(None);
        let jammed = run(Some(JamWindow {
            start_us: 0,
            duration_us: 10_000_000,
            bandwidth_factor: 0.25,
            repeat_us: 0,
        }));
        // 240 KB at quarter bandwidth adds ~60 ms per period.
        assert!(
            jammed > clean + 40.0,
            "jamming must stretch the wire: {clean} vs {jammed}"
        );
    }

    #[test]
    fn failure_realism_runs_are_deterministic() {
        let run = || {
            let mut cfg = config(15);
            cfg.bus.drop_prob = 0.2;
            cfg.bus.dup_prob = 0.1;
            cfg.bus.retx_timeout_us = 20_000;
            let mut cl = Cluster::new(cfg);
            cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
            cl.crash_node_at(
                NodeId(1),
                SimTime::from_millis(4_200),
                Some(SimDuration::from_secs(3)),
            );
            cl.run()
        };
        let a = run();
        let b = run();
        let lat = |o: &RunOutcome| -> Vec<Option<SimDuration>> {
            o.metrics.periods.iter().map(|p| p.end_to_end).collect()
        };
        assert_eq!(lat(&a), lat(&b));
        assert_eq!(a.metrics.messages_dropped, b.metrics.messages_dropped);
        assert_eq!(a.metrics.messages_duplicated, b.metrics.messages_duplicated);
        assert_eq!(a.metrics.retransmits, b.metrics.retransmits);
        assert_eq!(a.metrics.messages_lost, b.metrics.messages_lost);
    }

    /// Mean of node `n`'s sampled utilization over sample rows
    /// `[from, to)` (rows land every 100 ms).
    fn mean_util(out: &RunOutcome, node: usize, from: usize, to: usize) -> f64 {
        let rows = &out.metrics.cpu_samples[from..to];
        rows.iter().map(|r| r[node]).sum::<f64>() / rows.len() as f64
    }

    #[test]
    fn background_load_resumes_after_crash_restart() {
        // Regression for the dead-generator bug: `on_bg_poll` used to
        // return without rescheduling when its node was down, so ambient
        // load never came back after a crash–restart and post-restart
        // slack was silently flattered. Utilization before the crash must
        // match utilization after recovery, in both engine modes.
        for fast in [true, false] {
            let mut cfg = config(30);
            cfg.bg_fast_path = fast;
            let mut cl = Cluster::new(cfg);
            cl.add_load(Box::new(PeriodicLoad::new(
                crate::ids::LoadGenId(0),
                NodeId(2),
                SimDuration::from_millis(10),
                0.42,
            )));
            cl.crash_node_at(
                NodeId(2),
                SimTime::from_secs(10),
                Some(SimDuration::from_secs(2)),
            );
            let out = cl.run();
            assert_eq!(out.metrics.node_restarts, 1);
            // Rows land at 0.1 s, 0.2 s, …: row i covers (i*0.1, (i+1)*0.1].
            let before = mean_util(&out, 2, 20, 95);
            let outage = mean_util(&out, 2, 105, 115);
            let after = mean_util(&out, 2, 145, 295);
            assert!((before - 0.42).abs() < 0.02, "fast={fast} pre-crash {before}");
            assert!(outage < 0.01, "fast={fast} outage utilization {outage}");
            assert!(
                (after - before).abs() < 0.02,
                "fast={fast} ambient load must recover: before {before}, after {after}"
            );
        }
    }

    #[test]
    fn restart_before_pending_poll_does_not_double_arm() {
        // A crash shorter than one inter-arrival gap: the generator's
        // next poll is still pending at restart (never went dormant), so
        // the restart must not arm a second poll stream. A doubled stream
        // would double the imposed utilization.
        for fast in [true, false] {
            let mut cfg = config(30);
            cfg.bg_fast_path = fast;
            let mut cl = Cluster::new(cfg);
            cl.add_load(Box::new(PeriodicLoad::new(
                crate::ids::LoadGenId(0),
                NodeId(1),
                SimDuration::from_secs(2),
                0.3,
            )));
            cl.crash_node_at(
                NodeId(1),
                SimTime::from_millis(10_100),
                Some(SimDuration::from_millis(200)),
            );
            let out = cl.run();
            let u = out.metrics.cpu_lifetime_util[1];
            assert!(
                (u - 0.3).abs() < 0.05,
                "fast={fast} lifetime utilization {u} (doubled stream would approach 0.6)"
            );
        }
    }

    #[test]
    fn bg_fast_path_is_byte_identical_to_slow_path() {
        // The whole contract of the fast path: identical RNG draws at
        // identical program points, identical `(time, seq)` allocation,
        // identical metrics — through stage/background contention, a
        // crash–restart, and a lossy duplicating bus.
        let run = |fast: bool| {
            let mut cfg = config(12);
            cfg.bg_fast_path = fast;
            cfg.bus.drop_prob = 0.15;
            cfg.bus.dup_prob = 0.05;
            cfg.bus.retx_timeout_us = 20_000;
            let mut cl = Cluster::new(cfg);
            cl.enable_trace(4096);
            cl.add_task(
                tiny_task(&[(2.0, false, 0), (3.0, false, 1)]),
                Box::new(|i| 300 + 40 * i),
            );
            for n in [0u32, 1, 3] {
                cl.add_load(Box::new(crate::load::PoissonLoad::with_utilization(
                    crate::ids::LoadGenId(n),
                    NodeId(n),
                    0.35,
                    SimDuration::from_millis(2),
                )));
            }
            cl.crash_node_at(
                NodeId(1),
                SimTime::from_millis(4_200),
                Some(SimDuration::from_secs(2)),
            );
            cl.run()
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(
            format!("{:?}", on.metrics),
            format!("{:?}", off.metrics),
            "fast path must not change a single metric byte"
        );
        let render = |o: &RunOutcome| o.trace.as_ref().expect("trace enabled").render();
        assert_eq!(render(&on), render(&off), "fast path must not change the trace");
    }

    #[test]
    #[should_panic(expected = "invalid load generator config")]
    fn add_load_validates_generator_configs() {
        // A custom generator whose config slipped past any constructor
        // checks (e.g. deserialized or arithmetically built): the engine
        // rejects it at attach time via `LoadGenerator::validate`.
        struct BadGen;
        impl crate::load::LoadGenerator for BadGen {
            fn node(&self) -> NodeId {
                NodeId(0)
            }
            fn first_at(&self, _rng: &mut crate::rng::SimRng) -> SimTime {
                SimTime::ZERO
            }
            fn arrive(&mut self, now: SimTime, _rng: &mut crate::rng::SimRng) -> crate::load::LoadArrival {
                crate::load::LoadArrival { demand: SimDuration::ZERO, next_at: now }
            }
            fn target_utilization(&self) -> f64 {
                f64::NAN
            }
        }
        let mut cl = Cluster::new(config(1));
        cl.add_load(Box::new(BadGen));
    }

    #[test]
    fn legacy_fail_node_at_still_kills_permanently() {
        let mut cl = Cluster::new(config(10));
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 500));
        cl.fail_node_at(NodeId(1), SimTime::from_millis(2_500));
        let out = cl.run();
        assert_eq!(out.metrics.node_restarts, 0);
        // Nothing completes after the failure.
        for p in &out.metrics.periods {
            if p.released.as_secs_f64() >= 3.0 {
                assert_ne!(p.missed, Some(false), "instance {}", p.instance);
            }
        }
    }
}
