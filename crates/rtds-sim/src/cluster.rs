//! The simulated distributed system: a thin composition root.
//!
//! [`Cluster`] binds the simulation kernel ([`crate::kernel::SimKernel`]:
//! event queue, clocks, RNG, virtual lanes, metrics, observability hooks)
//! to the engine components that implement the domain behavior — dispatch
//! ([`crate::engine::DispatchEngine`]), network ([`crate::engine::NetEngine`]),
//! faults ([`crate::engine::FaultEngine`]), background load
//! ([`crate::engine::LoadEngine`]), and the task table
//! ([`crate::engine::TaskTable`]) — the execution environment of paper §3.
//! What remains here is composition: construction, the event loop, the
//! period-boundary controller epoch, and finalization.
//!
//! Callers drive a cluster through the [`ClusterApi`] trait (in the
//! prelude), which is the narrow seam between the resource-management
//! layer and the simulator: controllers and experiment harnesses cannot
//! reach simulator internals, only the API.
//!
//! The engine is deterministic: given the same [`ClusterConfig`] (including
//! the seed), the same task specs, workload functions, and controller
//! decisions, two runs produce identical event sequences and metrics.

use std::sync::Arc;

use crate::clock::ClockConfig;
use crate::control::{ControlAction, ControlContext, Controller, PeriodObservation};
use crate::engine::{DispatchEngine, FaultEngine, LoadEngine, NetEngine, TaskTable};
use crate::ids::{NodeId, StageId, SubtaskIdx, TaskId};
use crate::kernel::{Ev, SimKernel};
use crate::lane::LaneRef;
use crate::load::LoadGenerator;
use crate::metrics::{PeriodRecord, RunMetrics};
use crate::net::BusConfig;
use crate::perf::{PerfReport, PerfState};
use crate::pipeline::{InstanceState, TaskSpec};
use crate::sched::SchedulerKind;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};

pub use crate::engine::tasks::WorkloadFn;

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of homogeneous processors (Table 1: 6).
    pub n_nodes: usize,
    /// CPU scheduling policy on every node (Table 1: round-robin, 1 ms).
    pub scheduler: SchedulerKind,
    /// Shared-segment parameters (Table 1: 100 Mbps Ethernet).
    pub bus: BusConfig,
    /// Clock-skew model.
    pub clock: ClockConfig,
    /// Master seed; all stochastic components derive from it.
    pub seed: u64,
    /// Utilization sampling interval.
    pub sample_interval: SimDuration,
    /// Maximum simultaneously in-flight instances per task before newly
    /// released instances are shed (counted as missed).
    pub max_in_flight: usize,
    /// Maximum release jitter, microseconds: each period's data arrival is
    /// delayed by a uniform draw in `[0, max]` past its nominal grid point
    /// — the paper's "event arrivals have nondeterministic distributions"
    /// (§1). 0 = perfectly periodic arrivals.
    pub release_jitter_us: u64,
    /// Total simulated time.
    pub horizon: SimDuration,
    /// Background-load fast path: carry ambient-load polls and the
    /// dispatch boundaries of background-only nodes on virtual lanes
    /// instead of heap events (see `docs/SIMULATOR.md`, "Background-load
    /// fast path"). Byte-identical to the slow path by construction —
    /// same RNG draws, same `(time, seq)` allocation — so this is an
    /// escape hatch for debugging and A/B verification, not a semantic
    /// knob. Default: enabled.
    pub bg_fast_path: bool,
}

impl ClusterConfig {
    /// The paper's Table 1 environment with a caller-chosen seed/horizon.
    pub fn paper_baseline(seed: u64, horizon: SimDuration) -> Self {
        ClusterConfig {
            n_nodes: 6,
            scheduler: SchedulerKind::paper_baseline(),
            bus: BusConfig::paper_baseline(),
            clock: ClockConfig::lan_default(),
            seed,
            sample_interval: SimDuration::from_millis(100),
            max_in_flight: 4,
            release_jitter_us: 0,
            horizon,
            bg_fast_path: true,
        }
    }
}

/// Outcome of a completed run.
pub struct RunOutcome {
    /// Everything measured.
    pub metrics: RunMetrics,
    /// Controller name, for reports.
    pub controller: &'static str,
    /// The event trace, if tracing was enabled.
    pub trace: Option<TraceSink>,
    /// Performance counters, if `enable_perf` was called before the run.
    pub perf: Option<PerfReport>,
}

/// The narrow driving seam of the simulator: everything the
/// resource-management layer, experiment harnesses, and examples are
/// allowed to do to a cluster. Implemented by [`Cluster`]; re-exported in
/// the prelude.
///
/// Keeping the driving surface behind a trait (rather than inherent
/// methods) makes the boundary auditable: a controller or harness that
/// wants more than this has to change the trait, not quietly reach into
/// simulator internals.
pub trait ClusterApi {
    /// The configuration in force.
    fn config(&self) -> &ClusterConfig;

    /// Adds a periodic task with its workload source. The task's id must
    /// equal its insertion order.
    ///
    /// # Panics
    /// Panics if the spec is invalid for this cluster.
    fn add_task(&mut self, spec: TaskSpec, workload: WorkloadFn);

    /// Attaches a background load generator.
    ///
    /// # Panics
    /// Panics if the generator targets a nonexistent node or its
    /// configuration fails [`LoadGenerator::validate`] (non-finite or
    /// out-of-range utilization, degenerate intervals — anything that
    /// could spin the event loop or silently skew the ambient load).
    fn add_load(&mut self, gen: Box<dyn LoadGenerator>);

    /// Installs the resource-management policy.
    fn set_controller(&mut self, controller: Box<dyn Controller>);

    /// Enables structured tracing with the given event capacity.
    fn enable_trace(&mut self, capacity: usize);

    /// Enables performance instrumentation for the coming run. The
    /// optional `alloc_probe` is a monotone allocation counter (installed
    /// by the embedding binary; the simulator itself forbids `unsafe` and
    /// cannot count allocations) sampled around each control epoch.
    fn enable_perf(&mut self, alloc_probe: Option<fn() -> u64>);

    /// Schedules a node failure at the given instant (fault injection).
    /// The node's running and queued jobs are lost; instances that lose a
    /// job are failed and counted as missed; the node never dispatches
    /// again. The paper motivates adaptive management partly by
    /// survivability (§1) — this is the survivability stressor.
    ///
    /// # Panics
    /// Panics if the node does not exist or the failure is scheduled after
    /// the horizon.
    fn fail_node_at(&mut self, node: NodeId, at: SimTime);

    /// Schedules a node *crash* at `at`: like [`Self::fail_node_at`]
    /// (running and queued jobs lost, affected instances failed) but the
    /// node's in-flight bus traffic is also torn down — its queued
    /// messages are purged and a frame it was mid-transmitting never
    /// completes — and, if `restart_after` is given, the node rejoins that
    /// much later with cold caches and empty queues (see
    /// [`crate::node::Node::restart`] and the `cold` flag in
    /// [`ControlContext`]). A restart scheduled past the horizon never
    /// happens.
    ///
    /// # Panics
    /// Panics if the node does not exist, the crash is scheduled after the
    /// horizon, or `restart_after` is zero.
    fn crash_node_at(&mut self, node: NodeId, at: SimTime, restart_after: Option<SimDuration>);

    /// Runs the simulation to the horizon and returns the metrics.
    fn run(self) -> RunOutcome
    where
        Self: Sized;
}

/// The simulated distributed system: kernel + engines + controller.
pub struct Cluster {
    /// Pure mechanics: queue, clocks, RNG, lanes, metrics, observability.
    kernel: SimKernel,
    /// Nodes, job slab, quantum chains, dispatch boundaries.
    dispatch: DispatchEngine,
    /// Shared bus, in-flight/retransmit/dedup state.
    net: NetEngine,
    /// Node death, crash teardown, restart re-arm.
    fault: FaultEngine,
    /// Background generators and their poll lanes.
    load: LoadEngine,
    /// Task runtimes, instances, period bookkeeping.
    tasks: TaskTable,
    /// The resource-management policy under test.
    controller: Box<dyn Controller>,
    /// Reusable controller snapshot: static fields are built once, dynamic
    /// fields are refreshed in place each control epoch.
    ctx_scratch: Option<ControlContext>,
    /// Retired observation buffer, swapped with `tasks.pending_obs` each
    /// control epoch so both keep their capacity.
    obs_scratch: Vec<PeriodObservation>,
}

impl Cluster {
    /// Builds an empty cluster (no tasks, no load, null controller).
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.n_nodes > 0, "cluster needs at least one node");
        assert!(!config.horizon.is_zero(), "zero horizon");
        assert!(!config.sample_interval.is_zero(), "zero sample interval");
        assert!(config.max_in_flight >= 1, "max_in_flight must be >= 1");
        // Construction order is part of the byte-identity contract: the
        // kernel seeds the RNG and draws the clock model first (the only
        // construction-time draws), exactly as the monolith did.
        let dispatch = DispatchEngine::new(config.n_nodes, &config.scheduler, config.bg_fast_path);
        let net = NetEngine::new(config.bus);
        let kernel = SimKernel::new(config);
        Cluster {
            kernel,
            dispatch,
            net,
            fault: FaultEngine,
            load: LoadEngine::default(),
            tasks: TaskTable::default(),
            controller: Box::new(crate::control::NullController),
            ctx_scratch: None,
            obs_scratch: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn run_to_horizon(&mut self) {
        // Seed the initial event population in one reserved burst.
        self.kernel
            .queue
            .reserve(self.tasks.tasks.len() + self.load.gens.len() + 2);
        for t in 0..self.tasks.tasks.len() {
            self.kernel.queue.schedule(
                SimTime::ZERO,
                Ev::PeriodRelease {
                    task: TaskId::from_index(t),
                    index: 0,
                },
            );
        }
        for g in 0..self.load.gens.len() {
            let at = self.load.gens[g].first_at(&mut self.kernel.rng);
            if self.dispatch.bg_ff {
                // Fast path: the poll lives on a virtual lane. Its seq is
                // allocated exactly where the slow path would schedule it,
                // so tie-breaking stays bit-identical.
                let seq = self.kernel.queue.alloc_seq();
                self.load.polls[g].next = Some((at, seq));
                self.kernel.lanes.push(at, seq, LaneRef::Poll(g as u32));
            } else {
                self.kernel.queue.schedule(at, Ev::BgPoll { gen: g });
            }
        }
        self.kernel.queue.schedule(
            SimTime::ZERO + self.kernel.config.sample_interval,
            Ev::Sample,
        );
        self.kernel.queue.schedule(
            SimTime::ZERO + self.kernel.config.clock.sync_interval,
            Ev::ClockSync,
        );

        let horizon = self.kernel.horizon();
        if let Some(p) = self.kernel.perf.as_mut() {
            p.run_started = Some(std::time::Instant::now());
        }
        // The queue's min key is re-read only when the queue has actually
        // changed (its version ticks on every schedule/pop/cancel); long
        // lane-only stretches — background-heavy phases — skip the heap
        // peek entirely.
        let mut queue_key: Option<(SimTime, u64)> = None;
        let mut queue_ver = u64::MAX;
        loop {
            // The earliest pending work is the min over the real queue
            // and the virtual lanes (elided dispatches and polls); both
            // carry a total `(time, seq)` order key.
            if self.kernel.queue.version() != queue_ver {
                queue_key = self.kernel.queue.peek_key();
                queue_ver = self.kernel.queue.version();
            }
            let lane_key = self.peek_lane();
            let (t, lane) = match (queue_key, lane_key) {
                (None, None) => break,
                (Some((qt, qs)), Some((lt, ls, l))) => {
                    if (lt, ls) < (qt, qs) {
                        (lt, Some(l))
                    } else {
                        (qt, None)
                    }
                }
                (Some((qt, _)), None) => (qt, None),
                (None, Some((lt, _, l))) => (lt, Some(l)),
            };
            if t > horizon {
                break;
            }
            let (now, ev) = match lane {
                Some(LaneRef::Chain(i)) => {
                    let i = i as usize;
                    let link = self.dispatch.chains[i].expect("chain link exists");
                    if link.next_at < link.completion {
                        // Intermediate link: rekeyed to the next link in
                        // place — its heap entry is still the top. Then
                        // burst: as long as the *next* link still
                        // precedes every other pending key (queue min
                        // and runner-up lane, neither of which moves
                        // during an advance), fire it immediately
                        // instead of re-entering the loop.
                        let bound = match (queue_key, self.kernel.lanes.runner_up()) {
                            (Some(q), Some(r)) => Some(q.min(r)),
                            (Some(q), None) => Some(q),
                            (None, r) => r,
                        };
                        self.dispatch.advance_chain(&mut self.kernel, i);
                        while let Some(l) = self.dispatch.chains[i] {
                            if l.next_at >= l.completion
                                || l.next_at > horizon
                                || bound.is_some_and(|b| (l.next_at, l.next_seq) >= b)
                            {
                                break;
                            }
                            self.dispatch.advance_chain(&mut self.kernel, i);
                        }
                        continue;
                    }
                    // The chain's final link: the lone job's completion
                    // dispatch, fired as a direct handler call with no
                    // heap round-trip.
                    self.kernel.lanes.pop();
                    self.dispatch.chains[i] = None;
                    self.kernel.queue.advance_now(link.next_at);
                    let node = self.dispatch.nodes[i].id;
                    if self.dispatch.bg_ff && self.dispatch.stage_jobs[i] == 0 {
                        // Background-only completion: the whole dispatch
                        // round-trip leaves the event loop, not just the
                        // heap traffic.
                        if let Some(p) = self.kernel.perf.as_mut() {
                            p.report.elided_bg_dispatches += 1;
                        }
                        self.dispatch.on_dispatch(
                            &mut self.kernel,
                            &mut self.tasks,
                            &mut self.net,
                            link.next_at,
                            node,
                        );
                        continue;
                    }
                    (link.next_at, Ev::Dispatch { node })
                }
                Some(LaneRef::Poll(g)) => {
                    // Fired without popping: everything the handler can
                    // push keys strictly after `t`, so the entry is still
                    // the top afterwards and is rekeyed to the next poll
                    // (or popped, if the generator retires).
                    self.kernel.queue.advance_now(t);
                    self.load.on_virtual_poll(
                        &mut self.kernel,
                        &mut self.dispatch,
                        &mut self.tasks,
                        t,
                        g as usize,
                    );
                    continue;
                }
                Some(LaneRef::Bound(i)) => {
                    // A background-only node's slice boundary: the same
                    // `Dispatch` the slow path pops from the heap, fired
                    // directly through the unmodified handler — off the
                    // event loop entirely (a live boundary implies the
                    // node is still background-only).
                    let i = i as usize;
                    self.kernel.lanes.pop();
                    self.dispatch.bg_bounds[i] = None;
                    self.kernel.queue.advance_now(t);
                    if let Some(p) = self.kernel.perf.as_mut() {
                        p.report.elided_bg_dispatches += 1;
                    }
                    let node = self.dispatch.nodes[i].id;
                    self.dispatch.on_dispatch(
                        &mut self.kernel,
                        &mut self.tasks,
                        &mut self.net,
                        t,
                        node,
                    );
                    continue;
                }
                None => self.kernel.queue.pop().expect("peeked event exists"),
            };
            if self.kernel.perf.is_none() {
                self.handle(now, ev);
            } else {
                let kind = ev.kind_index();
                let t0 = std::time::Instant::now();
                self.handle(now, ev);
                let dt = t0.elapsed().as_nanos() as u64;
                let p = self.kernel.perf.as_mut().expect("perf enabled");
                p.report.events[kind] += 1;
                p.report.ns[kind] += dt;
            }
        }
        self.finalize(horizon);
    }

    /// Routes one popped event to the engine that owns its domain. The
    /// composition-root events (period release, clock sync, sampling) are
    /// handled here; everything else is dispatched on split borrows of
    /// the kernel and the engines — disjoint fields, so they all coexist.
    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::PeriodRelease { task, index } => return self.on_period_release(now, task, index),
            Ev::ClockSync => return self.on_clock_sync(now),
            Ev::Sample => return self.on_sample(now),
            _ => {}
        }
        let Cluster { kernel, dispatch, net, fault, load, tasks, .. } = self;
        match ev {
            Ev::Dispatch { node } => dispatch.on_dispatch(kernel, tasks, net, now, node),
            Ev::BgPoll { gen } => load.on_bg_poll(kernel, dispatch, tasks, now, gen),
            Ev::TxComplete => net.on_tx_complete(kernel, tasks, now),
            Ev::Deliver { msg } => net.on_deliver(kernel, dispatch, tasks, now, msg),
            Ev::NodeFail { node } => fault.on_node_fail(kernel, dispatch, tasks, now, node),
            Ev::NodeCrash { node } => fault.on_node_crash(kernel, dispatch, net, tasks, now, node),
            Ev::NodeRestart { node } => fault.on_node_restart(kernel, dispatch, load, now, node),
            Ev::RetxTimeout { orig } => net.on_retx_timeout(kernel, dispatch, tasks, now, orig),
            Ev::PeriodRelease { .. } | Ev::ClockSync | Ev::Sample => unreachable!("handled above"),
        }
    }

    /// The `(time, seq, lane)` key of the earliest live virtual lane, if
    /// any. Stale heap entries — their lane was re-keyed or cancelled
    /// since the push — are detected by seq mismatch (seqs are unique per
    /// run) and discarded here.
    #[inline]
    fn peek_lane(&mut self) -> Option<(SimTime, u64, LaneRef)> {
        loop {
            let e = self.kernel.lanes.peek()?;
            let live = match e.lane {
                LaneRef::Chain(i) => self.dispatch.chains[i as usize]
                    .is_some_and(|l| l.next_seq == e.seq),
                LaneRef::Poll(g) => self.load.polls[g as usize]
                    .next
                    .is_some_and(|(_, s)| s == e.seq),
                LaneRef::Bound(i) => self.dispatch.bg_bounds[i as usize]
                    .is_some_and(|(_, s)| s == e.seq),
            };
            if live {
                return Some((e.at, e.seq, e.lane));
            }
            self.kernel.lanes.pop();
        }
    }

    // ------------------------------------------------------------------
    // Period boundary: the one event the composition root handles itself,
    // because it is where the controller meets the engines.
    // ------------------------------------------------------------------

    fn on_period_release(&mut self, now: SimTime, task: TaskId, index: u64) {
        // 1. Let the controller react to everything that completed.
        self.run_controller(now);

        // 2. Draw this period's workload.
        let tracks = (self.tasks.workloads[task.index()])(index);
        self.tasks.tasks[task.index()].last_tracks = tracks;

        // 3. Admission: shed if too many instances are still in flight.
        let in_flight = self.tasks.tasks[task.index()].instances.len();
        let placement = self.tasks.tasks[task.index()].placement.clone();
        let replicas: Vec<u32> = placement.iter().map(|p| p.len() as u32).collect();
        let rec = PeriodRecord {
            instance: index,
            released: now,
            tracks,
            replicas_per_stage: replicas,
            end_to_end: None,
            missed: None,
            shed: false,
        };
        let rec_i = self.kernel.metrics.periods.len();
        self.kernel.metrics.periods.push(rec);
        self.tasks.record_idx.insert((task, index), rec_i);

        if in_flight >= self.kernel.config.max_in_flight {
            self.kernel
                .record_trace(now, TraceEvent::Shed { instance: index });
            let rec = &mut self.kernel.metrics.periods[rec_i];
            rec.shed = true;
            rec.missed = Some(true);
            self.tasks.pending_obs.push(PeriodObservation {
                task,
                instance: index,
                released: now,
                tracks,
                end_to_end: None,
                missed: true,
                stages: Vec::new(),
            });
        } else {
            // 4. Release: instantiate and start the first stage.
            self.kernel
                .record_trace(now, TraceEvent::Release { instance: index, tracks });
            let inst = InstanceState::new(index, now, tracks, placement);
            self.tasks.tasks[task.index()].instances.insert(index, inst);
            self.tasks.start_stage(
                &mut self.kernel,
                &mut self.dispatch,
                now,
                task,
                index,
                SubtaskIdx(0),
            );
        }

        // 5. Schedule the next release on the nominal grid plus jitter
        // (jitter never accumulates: it is applied to the grid point, not
        // to the previous jittered release).
        let nominal = SimTime::ZERO + self.tasks.tasks[task.index()].spec.period * (index + 1);
        let jitter = if self.kernel.config.release_jitter_us > 0 {
            SimDuration::from_micros(self.kernel.rng.below(self.kernel.config.release_jitter_us + 1))
        } else {
            SimDuration::ZERO
        };
        let next = nominal + jitter;
        if next <= self.kernel.horizon() {
            // max(now): a jittered previous release can never push the
            // next one into the simulated past.
            self.kernel
                .queue
                .schedule(next.max(now), Ev::PeriodRelease { task, index: index + 1 });
        }
    }

    fn on_clock_sync(&mut self, now: SimTime) {
        let k = &mut self.kernel;
        k.clocks.sync_round(now, &mut k.rng);
        let next = now + k.config.clock.sync_interval;
        if next <= SimTime::ZERO + k.config.horizon {
            k.queue.schedule(next, Ev::ClockSync);
        }
    }

    fn on_sample(&mut self, now: SimTime) {
        let row: Vec<f64> = self
            .dispatch
            .nodes
            .iter_mut()
            .map(|n| n.sample_utilization(now))
            .collect();
        self.kernel.metrics.cpu_samples.push(row);
        let bus_busy = self.net.bus.busy_total(now);
        let interval = now.saturating_since(self.net.sampled_at);
        if !interval.is_zero() {
            let u = bus_busy.saturating_sub(self.net.sampled_bus_busy).as_secs_f64()
                / interval.as_secs_f64();
            self.kernel.metrics.net_samples.push(u);
        }
        self.net.sampled_bus_busy = bus_busy;
        self.net.sampled_at = now;
        let next = now + self.kernel.config.sample_interval;
        if next <= self.kernel.horizon() {
            self.kernel.queue.schedule(next, Ev::Sample);
        }
    }

    fn run_controller(&mut self, now: SimTime) {
        // Swap the pending observations out through the retired scratch
        // buffer: both vectors keep their capacity across control epochs.
        let mut obs = std::mem::take(&mut self.obs_scratch);
        obs.clear();
        std::mem::swap(&mut obs, &mut self.tasks.pending_obs);

        // Reuse one ControlContext for the whole run. The per-task static
        // fields (replicability, periods, deadlines) are built exactly
        // once; the dynamic fields are refreshed in place. Placements are
        // Arc clones of the runtimes' current placement — no deep copy.
        let mut ctx = self.ctx_scratch.take().unwrap_or_else(|| ControlContext {
            now,
            node_util_pct: Vec::with_capacity(self.dispatch.nodes.len()),
            alive: Vec::with_capacity(self.dispatch.nodes.len()),
            cold: Vec::with_capacity(self.dispatch.nodes.len()),
            placements: Vec::with_capacity(self.tasks.tasks.len()),
            replicable: self
                .tasks
                .tasks
                .iter()
                .map(|t| t.spec.stages.iter().map(|s| s.replicable).collect())
                .collect(),
            periods: self.tasks.tasks.iter().map(|t| t.spec.period).collect(),
            deadlines: self.tasks.tasks.iter().map(|t| t.spec.deadline).collect(),
            last_tracks: Vec::with_capacity(self.tasks.tasks.len()),
        });
        ctx.now = now;
        ctx.node_util_pct.clear();
        ctx.node_util_pct
            .extend(self.dispatch.nodes.iter().map(|n| n.observed_utilization_pct()));
        ctx.alive.clear();
        ctx.alive.extend(self.dispatch.nodes.iter().map(|n| n.alive));
        ctx.cold.clear();
        ctx.cold.extend(self.dispatch.nodes.iter().map(|n| n.is_cold()));
        ctx.placements.clear();
        ctx.placements
            .extend(self.tasks.tasks.iter().map(|t| Arc::clone(&t.placement)));
        ctx.last_tracks.clear();
        ctx.last_tracks
            .extend(self.tasks.tasks.iter().map(|t| t.last_tracks));

        let actions = match self.kernel.perf.as_ref().map(|p| p.alloc_probe) {
            None => self.controller.on_period_boundary(&obs, &ctx),
            Some(probe) => {
                let alloc0 = probe.map(|f| f());
                let t0 = std::time::Instant::now();
                let actions = self.controller.on_period_boundary(&obs, &ctx);
                let dt = t0.elapsed().as_nanos() as u64;
                if let Some(p) = self.kernel.perf.as_mut() {
                    p.report.control_epochs += 1;
                    p.report.controller_ns += dt;
                    if let (Some(a0), Some(f)) = (alloc0, probe) {
                        *p.report.epoch_allocs.get_or_insert(0) += f().saturating_sub(a0);
                    }
                }
                actions
            }
        };
        for a in actions {
            match a {
                ControlAction::SetPlacement { task, subtask, nodes } => {
                    if task.index() >= self.tasks.tasks.len()
                        || nodes.iter().any(|n| {
                            n.index() >= self.kernel.config.n_nodes
                                || !self.dispatch.nodes[n.index()].alive
                        })
                    {
                        self.kernel.metrics.rejected_actions += 1;
                        continue;
                    }
                    let rt = &mut self.tasks.tasks[task.index()];
                    let before = rt.placement.get(subtask.index()).cloned();
                    match rt.set_placement(subtask, nodes, self.kernel.config.n_nodes) {
                        Ok(()) => {
                            if before.as_deref() != Some(&rt.placement[subtask.index()]) {
                                self.kernel.metrics.placement_changes += 1;
                                let new_nodes = rt.placement[subtask.index()].clone();
                                self.kernel.record_trace(
                                    now,
                                    TraceEvent::Placement {
                                        stage: StageId::new(task, subtask),
                                        nodes: new_nodes,
                                    },
                                );
                            }
                        }
                        Err(_) => self.kernel.metrics.rejected_actions += 1,
                    }
                }
            }
        }
        self.ctx_scratch = Some(ctx);
        self.obs_scratch = obs;
    }

    fn finalize(&mut self, horizon: SimTime) {
        self.kernel.metrics.horizon = horizon.since(SimTime::ZERO);
        self.kernel.metrics.forecast_residuals = self.controller.forecast_residuals();
        self.kernel.metrics.cpu_lifetime_util = self
            .dispatch
            .nodes
            .iter()
            .map(|n| n.lifetime_utilization(horizon))
            .collect();
        self.kernel.metrics.net_lifetime_util = self.net.bus.lifetime_utilization(horizon);
        self.kernel.metrics.bytes_offered = self.net.bus.bytes_offered;
        self.kernel.metrics.messages_offered = self.net.bus.messages_offered;
        // Decide instances that were still running: if their deadline has
        // already passed at the horizon, they have certainly missed.
        for rt in &self.tasks.tasks {
            for inst in rt.instances.values() {
                if horizon > inst.released + rt.spec.deadline {
                    if let Some(&i) = self.tasks.record_idx.get(&(rt.spec.id, inst.instance)) {
                        self.kernel.metrics.periods[i].missed = Some(true);
                    }
                }
            }
        }
    }
}

impl ClusterApi for Cluster {
    fn config(&self) -> &ClusterConfig {
        &self.kernel.config
    }

    fn add_task(&mut self, spec: TaskSpec, workload: WorkloadFn) {
        assert_eq!(
            spec.id.index(),
            self.tasks.tasks.len(),
            "task id must equal insertion index"
        );
        if let Err(e) = spec.validate(self.kernel.config.n_nodes) {
            panic!("invalid task spec: {e}");
        }
        self.tasks.tasks.push(crate::pipeline::TaskRuntime::new(spec));
        self.tasks.workloads.push(workload);
    }

    fn add_load(&mut self, gen: Box<dyn LoadGenerator>) {
        assert!(
            gen.node().index() < self.kernel.config.n_nodes,
            "load generator targets nonexistent node"
        );
        if let Err(e) = gen.validate() {
            panic!("invalid load generator config: {e}");
        }
        self.load.gens.push(gen);
        self.load.polls.push(crate::engine::load::PollLane::default());
    }

    fn set_controller(&mut self, controller: Box<dyn Controller>) {
        self.controller = controller;
    }

    fn enable_trace(&mut self, capacity: usize) {
        self.kernel.trace = Some(TraceSink::bounded(capacity));
    }

    fn enable_perf(&mut self, alloc_probe: Option<fn() -> u64>) {
        self.kernel.perf = Some(Box::new(PerfState::new(alloc_probe)));
    }

    fn fail_node_at(&mut self, node: NodeId, at: SimTime) {
        assert!(
            node.index() < self.kernel.config.n_nodes,
            "no such node {node}"
        );
        assert!(at <= self.kernel.horizon(), "failure beyond horizon");
        self.kernel.queue.schedule(at, Ev::NodeFail { node });
    }

    fn crash_node_at(&mut self, node: NodeId, at: SimTime, restart_after: Option<SimDuration>) {
        assert!(
            node.index() < self.kernel.config.n_nodes,
            "no such node {node}"
        );
        assert!(at <= self.kernel.horizon(), "crash beyond horizon");
        self.kernel.queue.schedule(at, Ev::NodeCrash { node });
        if let Some(d) = restart_after {
            assert!(!d.is_zero(), "zero restart delay");
            let back = at + d;
            if back <= self.kernel.horizon() {
                self.kernel.queue.schedule(back, Ev::NodeRestart { node });
            }
        }
    }

    fn run(mut self) -> RunOutcome {
        self.run_to_horizon();
        let perf = self.kernel.perf.take().map(|mut p| {
            p.report.queue = self.kernel.queue.stats();
            p.report.wall_ns = p
                .run_started
                .map(|s| s.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            p.report
        });
        RunOutcome {
            metrics: self.kernel.metrics,
            controller: self.controller.name(),
            trace: self.kernel.trace,
            perf,
        }
    }
}

#[cfg(test)]
#[path = "cluster_tests.rs"]
mod tests;
