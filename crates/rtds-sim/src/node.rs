//! Processor nodes.
//!
//! A [`Node`] is one homogeneous processor with private memory (paper §3,
//! item 12): a CPU scheduler, at most one running job, and busy-time
//! accounting from which both the run-level average CPU utilization metric
//! and the controller-visible utilization estimate `ut(p, t)` are derived.

use crate::event::EventHandle;
use crate::ids::{JobId, NodeId};
use crate::sched::CpuScheduler;
use crate::time::{SimDuration, SimTime};

/// The job currently holding the CPU and the slice it was granted.
#[derive(Debug, Clone, Copy)]
pub struct Running {
    /// The dispatched job.
    pub job: JobId,
    /// When the slice began.
    pub slice_start: SimTime,
    /// Scheduled end of the slice (quantum boundary or job completion).
    pub slice_end: SimTime,
    /// Handle of the pending dispatch event, for cancellation on reconfig.
    /// `None` while the slice is carried by one of the cluster's virtual
    /// lanes instead of the heap: the dispatch chain (a lone job whose
    /// per-quantum dispatches are elided) or, with the background-load
    /// fast path, the boundary lane of a node running only background
    /// jobs. Lane teardown never needs cancellation — clearing the lane's
    /// key invalidates its heap entry.
    pub dispatch_handle: Option<EventHandle>,
}

/// One processor.
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Ready-queue policy.
    pub sched: Box<dyn CpuScheduler>,
    /// Currently running job, if any.
    pub running: Option<Running>,
    /// False once the node has been killed by fault injection; a dead
    /// node never dispatches again and its jobs are lost.
    pub alive: bool,
    /// Total CPU-busy time accumulated over completed busy intervals.
    busy_accum: SimDuration,
    /// Start of the in-progress busy interval, if the CPU is busy.
    busy_since: Option<SimTime>,
    /// Exponentially-weighted utilization estimate, updated by periodic
    /// sampling; this is what the resource manager observes as `ut(p, t)`.
    util_ewma: f64,
    /// Busy total at the previous utilization sample.
    sampled_busy: SimDuration,
    /// Time of the previous utilization sample.
    sampled_at: SimTime,
    /// Samples still to take before a restarted node's EWMA counts as
    /// warmed up again; 0 for a node that never crashed.
    warmup_left: u32,
}

impl Node {
    /// Smoothing factor for the observed-utilization EWMA. Chosen so that
    /// roughly the last ~3 samples dominate: fast enough to track the
    /// paper's per-period workload changes, slow enough to damp quantum
    /// granularity noise.
    pub const EWMA_ALPHA: f64 = 0.4;

    /// How many utilization samples a restarted node needs before its EWMA
    /// is trusted again. Matches the ~3-sample horizon [`Self::EWMA_ALPHA`]
    /// was tuned for: until then the estimate is dominated by the cold
    /// post-restart zeros, not by real load.
    pub const COLD_SAMPLES: u32 = 3;

    /// Creates an idle node with the given scheduling policy.
    pub fn new(id: NodeId, sched: Box<dyn CpuScheduler>) -> Self {
        Node {
            id,
            sched,
            running: None,
            alive: true,
            busy_accum: SimDuration::ZERO,
            busy_since: None,
            util_ewma: 0.0,
            sampled_busy: SimDuration::ZERO,
            sampled_at: SimTime::ZERO,
            warmup_left: 0,
        }
    }

    /// Brings a crashed node back online at `now` with cold caches and
    /// empty queues: no running job, nothing in the ready queue, and the
    /// utilization estimate reset. Busy-time *totals* are kept — they feed
    /// the run-level average CPU metric, which spans the whole mission.
    /// Until [`Self::COLD_SAMPLES`] fresh samples arrive the node reports
    /// [`Self::is_cold`] so controllers treat its utilization as missing
    /// rather than zero.
    pub fn restart(&mut self, now: SimTime) {
        debug_assert!(!self.alive, "restarting a node that is alive");
        self.alive = true;
        self.running = None;
        while self.sched.pick().is_some() {}
        self.busy_since = None;
        self.util_ewma = 0.0;
        self.sampled_busy = self.busy_accum;
        self.sampled_at = now;
        self.warmup_left = Self::COLD_SAMPLES;
    }

    /// True while a restarted node's utilization estimate is still warming
    /// up and should be treated as missing.
    pub fn is_cold(&self) -> bool {
        self.warmup_left > 0
    }

    /// Marks the CPU busy starting at `now` (idempotent).
    pub fn begin_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Marks the CPU idle at `now`, folding the interval into the total.
    pub fn end_busy(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_accum += now.since(since);
        }
    }

    /// Total busy time up to `now`, including any in-progress interval.
    pub fn busy_total(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.busy_accum + now.since(since),
            None => self.busy_accum,
        }
    }

    /// Lifetime-average utilization in `[0, 1]` over `[0, now]`.
    pub fn lifetime_utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total(now).as_secs_f64() / now.as_secs_f64()
    }

    /// Takes a utilization sample over the interval since the previous
    /// sample and folds it into the EWMA estimate. Returns the raw
    /// utilization of the sampled interval in `[0, 1]`.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        let busy = self.busy_total(now);
        let interval = now.saturating_since(self.sampled_at);
        let raw = if interval.is_zero() {
            self.util_ewma
        } else {
            (busy.saturating_sub(self.sampled_busy)).as_secs_f64() / interval.as_secs_f64()
        };
        self.util_ewma = Self::EWMA_ALPHA * raw + (1.0 - Self::EWMA_ALPHA) * self.util_ewma;
        self.sampled_busy = busy;
        self.sampled_at = now;
        self.warmup_left = self.warmup_left.saturating_sub(1);
        raw
    }

    /// The smoothed utilization estimate the controller sees as `ut(p, t)`,
    /// as a **percentage** in `[0, 100]` — the unit Eq. (3) uses.
    pub fn observed_utilization_pct(&self) -> f64 {
        (self.util_ewma * 100.0).clamp(0.0, 100.0)
    }

    /// True when a job currently holds the CPU.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerKind;

    fn node() -> Node {
        Node::new(NodeId(0), SchedulerKind::paper_baseline().build())
    }

    #[test]
    fn busy_accounting_accumulates_intervals() {
        let mut n = node();
        n.begin_busy(SimTime::from_millis(10));
        n.end_busy(SimTime::from_millis(15));
        n.begin_busy(SimTime::from_millis(20));
        n.end_busy(SimTime::from_millis(22));
        assert_eq!(n.busy_total(SimTime::from_millis(30)), SimDuration::from_millis(7));
    }

    #[test]
    fn busy_total_includes_open_interval() {
        let mut n = node();
        n.begin_busy(SimTime::from_millis(10));
        assert_eq!(n.busy_total(SimTime::from_millis(14)), SimDuration::from_millis(4));
    }

    #[test]
    fn begin_busy_is_idempotent() {
        let mut n = node();
        n.begin_busy(SimTime::from_millis(10));
        n.begin_busy(SimTime::from_millis(12)); // must not reset the start
        n.end_busy(SimTime::from_millis(20));
        assert_eq!(n.busy_total(SimTime::from_millis(20)), SimDuration::from_millis(10));
    }

    #[test]
    fn end_busy_without_begin_is_a_noop() {
        let mut n = node();
        n.end_busy(SimTime::from_millis(5));
        assert_eq!(n.busy_total(SimTime::from_millis(5)), SimDuration::ZERO);
    }

    #[test]
    fn lifetime_utilization_is_busy_fraction() {
        let mut n = node();
        n.begin_busy(SimTime::ZERO);
        n.end_busy(SimTime::from_millis(25));
        let u = n.lifetime_utilization(SimTime::from_millis(100));
        assert!((u - 0.25).abs() < 1e-9, "{u}");
        assert_eq!(node().lifetime_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn sampling_converges_to_steady_utilization() {
        let mut n = node();
        // 50% duty cycle: busy 5ms of every 10ms.
        for i in 0..50u64 {
            n.begin_busy(SimTime::from_millis(i * 10));
            n.end_busy(SimTime::from_millis(i * 10 + 5));
            n.sample_utilization(SimTime::from_millis((i + 1) * 10));
        }
        let u = n.observed_utilization_pct();
        assert!((u - 50.0).abs() < 1.0, "EWMA should converge to 50%, got {u}");
    }

    #[test]
    fn sample_with_zero_interval_keeps_estimate() {
        let mut n = node();
        n.begin_busy(SimTime::ZERO);
        n.end_busy(SimTime::from_millis(10));
        n.sample_utilization(SimTime::from_millis(10));
        let before = n.observed_utilization_pct();
        n.sample_utilization(SimTime::from_millis(10));
        // EWMA folds in its own previous value; estimate must not jump.
        assert!((n.observed_utilization_pct() - before).abs() < 1e-9 * 100.0 + 1e-6);
    }

    #[test]
    fn observed_utilization_is_percent_clamped() {
        let n = node();
        assert_eq!(n.observed_utilization_pct(), 0.0);
    }

    #[test]
    fn restart_resets_estimate_and_marks_cold() {
        let mut n = node();
        assert!(!n.is_cold(), "fresh nodes are not cold");
        // Build up a warm estimate, then crash.
        n.begin_busy(SimTime::ZERO);
        n.end_busy(SimTime::from_millis(80));
        n.sample_utilization(SimTime::from_millis(100));
        assert!(n.observed_utilization_pct() > 0.0);
        n.alive = false;
        n.restart(SimTime::from_millis(200));
        assert!(n.alive);
        assert!(n.is_cold());
        assert_eq!(n.observed_utilization_pct(), 0.0, "estimate resets on restart");
        // Busy totals survive the restart (they feed the run-level metric).
        assert_eq!(n.busy_total(SimTime::from_millis(200)), SimDuration::from_millis(80));
        // Cold clears after COLD_SAMPLES fresh samples.
        for i in 1..=Node::COLD_SAMPLES as u64 {
            assert!(n.is_cold());
            n.sample_utilization(SimTime::from_millis(200 + i * 100));
        }
        assert!(!n.is_cold());
    }
}
