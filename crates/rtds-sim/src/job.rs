//! CPU jobs.
//!
//! A [`Job`] is one contiguous piece of CPU demand queued at a node: either
//! one replica of one pipeline stage processing its share of the period's
//! data stream, or a slice of synthetic background load. The scheduler
//! interleaves jobs; the engine tracks each job's remaining service time.

use crate::ids::{JobId, LoadGenId, NodeId, StageId};
use crate::time::{SimDuration, SimTime};

/// What a job is doing, for attribution in metrics and traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One replica of a pipeline stage for one period instance.
    Stage {
        /// Which stage of which task.
        stage: StageId,
        /// Replica index within the stage's current placement (0 = original).
        replica: u32,
        /// Period instance number this job belongs to.
        instance: u64,
    },
    /// Synthetic background load from a generator.
    Background(LoadGenId),
}

impl JobKind {
    /// True for application (stage) work as opposed to background load.
    pub fn is_stage(&self) -> bool {
        matches!(self, JobKind::Stage { .. })
    }
}

/// One unit of CPU demand on one node.
#[derive(Debug, Clone)]
pub struct Job {
    /// Unique id within the run.
    pub id: JobId,
    /// Node whose CPU this job consumes.
    pub node: NodeId,
    /// What the job is.
    pub kind: JobKind,
    /// Total service demand.
    pub total: SimDuration,
    /// Service demand not yet received.
    pub remaining: SimDuration,
    /// When the job entered the ready queue.
    pub released: SimTime,
    /// When the job first received CPU, if it has.
    pub first_dispatch: Option<SimTime>,
    /// Scheduling priority (lower number = more urgent); only the priority
    /// scheduler looks at this.
    pub priority: u8,
}

impl Job {
    /// Creates a ready job with full remaining demand.
    pub fn new(
        id: JobId,
        node: NodeId,
        kind: JobKind,
        demand: SimDuration,
        released: SimTime,
    ) -> Self {
        Job {
            id,
            node,
            kind,
            total: demand,
            remaining: demand,
            released,
            first_dispatch: None,
            priority: 0,
        }
    }

    /// Same, with an explicit priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// True once the job has consumed its whole demand.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_zero()
    }

    /// Applies `served` microseconds of CPU service.
    ///
    /// # Panics
    /// Panics in debug builds if serving more than remains.
    pub fn serve(&mut self, served: SimDuration) {
        debug_assert!(served <= self.remaining, "over-serving job {}", self.id);
        self.remaining -= served;
    }

    /// Response time so far / total, given the completion instant.
    pub fn response_time(&self, completed: SimTime) -> SimDuration {
        completed.since(self.released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SubtaskIdx, TaskId};

    fn stage_kind() -> JobKind {
        JobKind::Stage {
            stage: StageId::new(TaskId(0), SubtaskIdx(2)),
            replica: 1,
            instance: 42,
        }
    }

    #[test]
    fn new_job_has_full_remaining() {
        let j = Job::new(
            JobId(0),
            NodeId(1),
            stage_kind(),
            SimDuration::from_millis(10),
            SimTime::from_secs(1),
        );
        assert_eq!(j.remaining, j.total);
        assert!(!j.is_complete());
        assert!(j.first_dispatch.is_none());
    }

    #[test]
    fn serving_runs_job_to_completion() {
        let mut j = Job::new(
            JobId(0),
            NodeId(0),
            JobKind::Background(LoadGenId(0)),
            SimDuration::from_millis(3),
            SimTime::ZERO,
        );
        j.serve(SimDuration::from_millis(1));
        assert_eq!(j.remaining, SimDuration::from_millis(2));
        j.serve(SimDuration::from_millis(2));
        assert!(j.is_complete());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn over_serving_panics() {
        let mut j = Job::new(
            JobId(0),
            NodeId(0),
            JobKind::Background(LoadGenId(0)),
            SimDuration::from_millis(1),
            SimTime::ZERO,
        );
        j.serve(SimDuration::from_millis(2));
    }

    #[test]
    fn response_time_is_completion_minus_release() {
        let j = Job::new(
            JobId(0),
            NodeId(0),
            stage_kind(),
            SimDuration::from_millis(5),
            SimTime::from_millis(100),
        );
        assert_eq!(
            j.response_time(SimTime::from_millis(140)),
            SimDuration::from_millis(40)
        );
    }

    #[test]
    fn kind_classification() {
        assert!(stage_kind().is_stage());
        assert!(!JobKind::Background(LoadGenId(3)).is_stage());
    }

    #[test]
    fn priority_builder() {
        let j = Job::new(
            JobId(0),
            NodeId(0),
            stage_kind(),
            SimDuration::from_millis(5),
            SimTime::ZERO,
        )
        .with_priority(3);
        assert_eq!(j.priority, 3);
    }
}
