//! Simulation time.
//!
//! All simulation time is kept in **microseconds** as unsigned integers, so
//! event ordering is exact and runs are bit-for-bit reproducible (no floating
//! point drift in the clock). [`SimTime`] is an absolute instant since the
//! start of the simulation; [`SimDuration`] is a span between instants.
//!
//! The paper's quantities of interest live at very different scales — a
//! 1 ms round-robin quantum, a 990 ms end-to-end deadline, a 6.4 µs
//! transmission time for a single 80-byte track on a 100 Mbps segment —
//! so microsecond resolution is the coarsest unit that represents all of
//! them exactly.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant of simulated time, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time since start in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since start in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later (useful when mixing skewed local clocks).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Exact duration since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The next instant that is a multiple of `period`, strictly after
    /// `self` unless `self` is already on the boundary.
    #[inline]
    pub fn align_up(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "align_up: zero period");
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 - rem + period.0)
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round().min(u64::MAX as f64) as u64)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_millis_f64(s * 1_000.0)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<SimDuration> {
        self.0.checked_mul(k).map(SimDuration)
    }

    /// Multiplies by a non-negative float factor, rounding to the nearest
    /// microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "mul_f64: factor must be finite and >= 0");
        SimDuration(((self.0 as f64) * k).round().min(u64::MAX as f64) as u64)
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer division: how many whole `rhs` spans fit in `self`.
    #[inline]
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_micros(1_000_000));
    }

    #[test]
    fn time_plus_duration_round_trips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(350);
        assert_eq!(b.since(a), SimDuration::from_micros(250));
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(250));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn since_panics_on_negative_elapsed() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(350);
        let _ = a.since(b);
    }

    #[test]
    fn align_up_snaps_to_period_boundary() {
        let p = SimDuration::from_millis(10);
        assert_eq!(SimTime::from_micros(0).align_up(p), SimTime::from_micros(0));
        assert_eq!(SimTime::from_micros(1).align_up(p), SimTime::from_millis(10));
        assert_eq!(SimTime::from_millis(10).align_up(p), SimTime::from_millis(10));
        assert_eq!(SimTime::from_micros(10_001).align_up(p), SimTime::from_millis(20));
    }

    #[test]
    fn float_conversions_are_consistent() {
        let d = SimDuration::from_micros(1_500);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis_f64(1.5), d);
        assert_eq!(SimDuration::from_secs_f64(0.0015), d);
    }

    #[test]
    fn from_millis_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(1);
        assert_eq!(a + b, SimDuration::from_millis(4));
        assert_eq!(a - b, SimDuration::from_millis(2));
        assert_eq!(a * 3, SimDuration::from_millis(9));
        assert_eq!(a / 3, SimDuration::from_millis(1));
        assert_eq!(a / b, 3);
        assert_eq!(a % SimDuration::from_millis(2), SimDuration::from_millis(1));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_to_nearest_microsecond() {
        let d = SimDuration::from_micros(1000);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(500));
        assert_eq!(d.mul_f64(1.0004), SimDuration::from_micros(1000));
        assert_eq!(d.mul_f64(1.0006), SimDuration::from_micros(1001));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "t=1.500ms");
        assert_eq!(format!("{}", SimDuration::from_millis(990)), "990.000ms");
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_micros(1)).is_none());
        assert!(SimDuration::MAX.checked_mul(2).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
