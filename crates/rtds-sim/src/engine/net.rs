//! Network behavior: the shared bus plus the in-flight, retransmit, and
//! dedup state machines layered on top of it.
//!
//! The [`NetEngine`] owns every message between send and delivery. It
//! fans a completed stage's output out to the successor's replicas,
//! applies the lossy-medium draws (drop, duplication, backoff — in that
//! fixed RNG order), runs the sender-side retransmit timers, and
//! deduplicates redundant copies at the receiver.

use crate::engine::dispatch::DispatchEngine;
use crate::engine::tasks::TaskTable;
use crate::hashing::FxHashMap;
use crate::ids::{MsgId, NodeId, StageId, TaskId, SubtaskIdx};
use crate::job::JobKind;
use crate::kernel::{Ev, SimKernel};
use crate::net::{BusConfig, Message, MsgPayload, SendOutcome, SharedBus};
use crate::pipeline::split_tracks_into;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// Sender-side bookkeeping for one unacknowledged remote message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetxState {
    /// Sending node (retransmissions come from here; a crashed sender
    /// gives up).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Application payload size, for the resend.
    pub size_bytes: u64,
    /// Routing payload, for the resend.
    pub payload: MsgPayload,
    /// Retransmissions already performed.
    pub attempts: u32,
    /// Handle of the pending `RetxTimeout`, cancelled on delivery.
    pub timer: crate::event::EventHandle,
}

/// Bus-side state and behavior: the wire, in-flight messages, and the
/// retransmit/dedup machinery.
pub(crate) struct NetEngine {
    /// The shared Ethernet segment.
    pub bus: SharedBus,
    /// Messages between transmission completion (or local send) and
    /// delivery.
    pub in_flight: FxHashMap<MsgId, Message>,
    /// Pending sender-side retransmit state, keyed by the *original*
    /// message id. Empty unless `BusConfig::retx_timeout_us` is set.
    pub retx: FxHashMap<MsgId, RetxState>,
    /// Cached `retx_timeout_us > 0`, checked once per remote send.
    pub retx_enabled: bool,
    /// True when duplicates can reach a receiver (bus duplication or
    /// retransmission enabled) and per-replica origin dedup must run.
    pub dedup_enabled: bool,
    /// Bus busy total at the previous sample, for interval net utilization.
    pub sampled_bus_busy: SimDuration,
    /// Instant of the previous utilization sample.
    pub sampled_at: SimTime,
}

impl NetEngine {
    /// Builds the network engine. `SharedBus::new` validates the bus
    /// config and panics with a clear message for bad values (zero/NaN
    /// bandwidth, zero MTU, …).
    pub fn new(bus: BusConfig) -> Self {
        let retx_enabled = bus.retx_timeout_us > 0;
        let dedup_enabled = retx_enabled || bus.dup_prob > 0.0;
        NetEngine {
            bus: SharedBus::new(bus),
            in_flight: FxHashMap::default(),
            retx: FxHashMap::default(),
            retx_enabled,
            dedup_enabled,
            sampled_bus_busy: SimDuration::ZERO,
            sampled_at: SimTime::ZERO,
        }
    }

    /// Fans the completed stage's output out to the successor's replicas.
    ///
    /// `max(k_src, k_dst)` messages are sent: message `i` carries an even
    /// share of the data stream from source replica `i % k_src` to
    /// destination replica `i % k_dst`, so every source replica ships its
    /// output and every destination replica learns its full input from the
    /// messages addressed to it.
    #[allow(clippy::too_many_arguments)]
    pub fn send_stage_messages(
        &mut self,
        k: &mut SimKernel,
        tasks: &mut TaskTable,
        now: SimTime,
        task: TaskId,
        instance: u64,
        from: SubtaskIdx,
        to: SubtaskIdx,
    ) {
        let mut src_nodes = std::mem::take(&mut k.scratch.nodes);
        let mut dst_nodes = std::mem::take(&mut k.scratch.nodes2);
        let mut shares = std::mem::take(&mut k.scratch.shares);
        let bytes_per_track = {
            let rt = &mut tasks.tasks[task.index()];
            let inst = rt.instances.get_mut(&instance).expect("instance exists");
            src_nodes.clear();
            src_nodes.extend_from_slice(&inst.placement[from.index()]);
            dst_nodes.clear();
            dst_nodes.extend_from_slice(&inst.placement[to.index()]);
            let n_msgs = src_nodes.len().max(dst_nodes.len());
            split_tracks_into(inst.tracks, n_msgs, &mut shares);
            let prog = &mut inst.stages[to.index()];
            prog.started = Some(now);
            for (i, _) in shares.iter().enumerate() {
                prog.msgs_expected[i % dst_nodes.len()] += 1;
            }
            rt.spec.stages[from.index()].output_bytes_per_track
        };
        let stage_id = StageId::new(task, to);
        for (i, &share) in shares.iter().enumerate() {
            let src = src_nodes[i % src_nodes.len()];
            let dst_replica = i % dst_nodes.len();
            let dst = dst_nodes[dst_replica];
            let size = (share as f64 * bytes_per_track).ceil() as u64;
            let payload = MsgPayload::StageData {
                stage: stage_id,
                replica: dst_replica as u32,
                instance,
                tracks: share,
            };
            match self.bus.send(now, src, dst, size, payload) {
                SendOutcome::DeliverLocally { msg, at } => {
                    let m = self.bus.take_local(msg);
                    self.in_flight.insert(msg, m);
                    k.queue.schedule(at, Ev::Deliver { msg });
                }
                SendOutcome::Transmitting { msg, tx_done } => {
                    k.queue.schedule(tx_done, Ev::TxComplete);
                    self.arm_retx(k, now, msg, src, dst, size, payload);
                }
                SendOutcome::Queued { msg } => {
                    self.arm_retx(k, now, msg, src, dst, size, payload);
                }
            }
        }
        k.scratch.nodes = src_nodes;
        k.scratch.nodes2 = dst_nodes;
        k.scratch.shares = shares;
    }

    /// Arms the sender-side retransmit timer for a freshly sent remote
    /// message. No-op (no event, no state) unless `retx_timeout_us` is
    /// configured, so the default path is untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn arm_retx(
        &mut self,
        k: &mut SimKernel,
        now: SimTime,
        orig: MsgId,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        payload: MsgPayload,
    ) {
        if !self.retx_enabled {
            return;
        }
        let timeout = SimDuration::from_micros(self.bus.config().retx_timeout_us);
        let timer = k.queue.schedule(now + timeout, Ev::RetxTimeout { orig });
        self.retx.insert(
            orig,
            RetxState {
                src,
                dst,
                size_bytes,
                payload,
                attempts: 0,
                timer,
            },
        );
    }

    /// The message on the wire finished transmitting: free the medium for
    /// the next sender, then run the lossy-medium draws on the finished
    /// frame (drop, then duplication — after the backoff draw for the
    /// next sender, a fixed order that keeps replays byte-identical).
    pub fn on_tx_complete(&mut self, k: &mut SimKernel, tasks: &mut TaskTable, now: SimTime) {
        let max_backoff = self.bus.config().max_backoff_us;
        let backoff = if max_backoff > 0 && self.bus.queue_len() > 0 {
            SimDuration::from_micros(k.rng.below(max_backoff + 1))
        } else {
            SimDuration::ZERO
        };
        let Some((msg, next)) = self.bus.tx_complete(now, backoff) else {
            // Stale completion: the frame it announced was aborted by a
            // node crash. The wire has already been re-dispatched.
            return;
        };
        // The wire is free for the next sender regardless of what the
        // lossy medium does to the finished frame below.
        if let Some((_, done)) = next {
            k.queue.schedule(done, Ev::TxComplete);
        }
        // Failure realism, each draw gated behind its default-off knob so
        // the baseline consumes no randomness. Draw order is fixed:
        // backoff (above), drop, duplication.
        let cfg = *self.bus.config();
        if cfg.drop_prob > 0.0 && k.rng.chance(cfg.drop_prob) {
            // Corrupted on the wire: bandwidth burned, nothing delivered.
            let MsgPayload::StageData { stage, replica, instance, .. } = msg.payload;
            k.metrics.messages_dropped += 1;
            k.record_trace(now, TraceEvent::MessageDropped { msg: msg.origin });
            if !self.retx.contains_key(&msg.origin)
                && !tasks.origin_delivered(stage, replica, instance, msg.origin)
            {
                // No retransmission coming and no copy ever arrived: the
                // stage can never assemble its input.
                tasks.fail_instance(k, now, stage.task, instance);
            }
            return;
        }
        let deliver_at = now + self.bus.propagation();
        let id = msg.id;
        if cfg.dup_prob > 0.0 && k.rng.chance(cfg.dup_prob) {
            let dup_id = self.bus.alloc_copy_id();
            let dup = Message { id: dup_id, ..msg.clone() };
            k.metrics.messages_duplicated += 1;
            k.record_trace(now, TraceEvent::MessageDuplicated { msg: msg.origin });
            self.in_flight.insert(dup_id, dup);
            k.queue.schedule(deliver_at, Ev::Deliver { msg: dup_id });
        }
        self.in_flight.insert(id, msg);
        k.queue.schedule(deliver_at, Ev::Deliver { msg: id });
    }

    /// A message reached its destination: satisfy the sender's retransmit
    /// timer, dedup redundant copies, accumulate the replica's input
    /// share, and admit the stage job once the share set is complete.
    pub fn on_deliver(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        msg: MsgId,
    ) {
        let m = self.in_flight.remove(&msg).expect("in-flight message exists");
        let MsgPayload::StageData { stage, replica, instance, tracks } = m.payload;
        if !dispatch.nodes[m.dst.index()].alive {
            // Routed to a dead node. With a retransmission pending the
            // sender will retry (the node may restart in time), and a
            // leftover redundant copy whose origin already arrived is
            // harmless — neither is a final loss (give-up is accounted in
            // `on_retx_timeout`). Otherwise the stage can never assemble
            // its input: count the loss and fail the instance now.
            if self.retx.contains_key(&m.origin)
                || tasks.origin_delivered(stage, replica, instance, m.origin)
            {
                return;
            }
            k.metrics.messages_lost += 1;
            k.record_trace(now, TraceEvent::MessageLost { msg: m.origin, dst: m.dst });
            tasks.fail_instance(k, now, stage.task, instance);
            return;
        }
        // Data arrived at a live destination: the sender's retransmit
        // timer (if armed) is satisfied, even if this copy turns out to
        // be a duplicate below.
        if let Some(st) = self.retx.remove(&m.origin) {
            k.queue.cancel(st.timer);
        }
        let delay = now.since(m.enqueued);
        let demand = {
            let rt = &mut tasks.tasks[stage.task.index()];
            let Some(inst) = rt.instances.get_mut(&instance) else {
                // Instance was finalized early (e.g. at horizon); drop.
                return;
            };
            let prog = &mut inst.stages[stage.subtask.index()];
            let r = replica as usize;
            if self.dedup_enabled {
                if prog.seen_origins[r].contains(&m.origin) {
                    return; // spurious duplicate or redundant retransmit
                }
                prog.seen_origins[r].push(m.origin);
            }
            prog.msgs_received[r] += 1;
            prog.tracks_in[r] += tracks;
            prog.msg_delay[r] = Some(prog.msg_delay[r].map_or(delay, |d| d.max(delay)));
            if prog.msgs_received[r] < prog.msgs_expected[r] {
                return; // replica still waiting for more shares
            }
            rt.spec.stages[stage.subtask.index()]
                .cost
                .demand(rt.instances[&instance].stages[stage.subtask.index()].tracks_in[r])
        };
        dispatch.admit_job(
            k,
            tasks,
            now,
            m.dst,
            JobKind::Stage {
                stage,
                replica,
                instance,
            },
            demand.max(SimDuration::from_micros(1)),
            0,
        );
    }

    /// The sender-side retransmit timer fired without an acknowledged
    /// delivery: resend (the copy contends on the bus like any message)
    /// with deterministic exponential backoff, or give up once the retry
    /// budget is spent or the sender itself has died.
    pub fn on_retx_timeout(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        orig: MsgId,
    ) {
        let Some(mut st) = self.retx.remove(&orig) else {
            return; // delivered (or torn down) before the timer fired
        };
        let cfg = *self.bus.config();
        let MsgPayload::StageData { stage, instance, .. } = st.payload;
        if st.attempts >= cfg.retx_max_retries || !dispatch.nodes[st.src.index()].alive {
            k.metrics.messages_lost += 1;
            k.record_trace(now, TraceEvent::MessageLost { msg: orig, dst: st.dst });
            tasks.fail_instance(k, now, stage.task, instance);
            return;
        }
        st.attempts += 1;
        k.metrics.retransmits += 1;
        k.record_trace(now, TraceEvent::Retransmit { msg: orig, attempt: st.attempts });
        match self.bus.resend(now, st.src, st.dst, st.size_bytes, st.payload, orig) {
            SendOutcome::Transmitting { tx_done, .. } => {
                k.queue.schedule(tx_done, Ev::TxComplete);
            }
            SendOutcome::Queued { .. } => {}
            SendOutcome::DeliverLocally { .. } => {
                unreachable!("retransmit timers are only armed for remote messages")
            }
        }
        // Deterministic exponential backoff: timeout << attempts. No RNG —
        // replays must be byte-identical, and the contention the copy
        // meets on the bus already desynchronizes senders.
        let delay = SimDuration::from_micros(cfg.retx_timeout_us << st.attempts.min(16));
        st.timer = k.queue.schedule(now + delay, Ev::RetxTimeout { orig });
        self.retx.insert(orig, st);
    }
}

#[cfg(test)]
mod tests {
    //! Isolated retransmit/dedup state-machine tests: a kernel, the
    //! network engine, and a hand-built task table — no `Cluster`, no
    //! event loop.

    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::ids::{LoadGenId, TaskId};
    use crate::pipeline::{InstanceState, PolynomialCost, StageSpec, TaskRuntime, TaskSpec};
    use std::sync::Arc;

    fn two_stage_spec() -> TaskSpec {
        TaskSpec {
            id: TaskId(0),
            name: "iso".into(),
            period: SimDuration::from_secs(1),
            deadline: SimDuration::from_millis(990),
            track_bytes: 80,
            stages: [0u32, 1]
                .iter()
                .map(|&home| StageSpec {
                    name: format!("s{home}"),
                    cost: PolynomialCost::linear(1.0, 1.0),
                    replicable: false,
                    home: NodeId(home),
                    output_bytes_per_track: 80.0,
                })
                .collect(),
        }
    }

    /// Kernel + engines + one two-stage task (stage 0 on node 0, stage 1
    /// on node 1) with instance 0 released and stage 1 expecting one
    /// message per replica.
    fn harness(bus: BusConfig) -> (SimKernel, DispatchEngine, NetEngine, TaskTable) {
        let mut cfg = ClusterConfig::paper_baseline(7, SimDuration::from_secs(10));
        cfg.bus = bus;
        let dispatch = DispatchEngine::new(cfg.n_nodes, &cfg.scheduler, cfg.bg_fast_path);
        let net = NetEngine::new(cfg.bus);
        let k = SimKernel::new(cfg);
        let mut tasks = TaskTable::default();
        let mut rt = TaskRuntime::new(two_stage_spec());
        let mut inst = InstanceState::new(0, SimTime::ZERO, 100, Arc::clone(&rt.placement));
        inst.stages[1].msgs_expected[0] = 1;
        rt.instances.insert(0, inst);
        tasks.tasks.push(rt);
        (k, dispatch, net, tasks)
    }

    fn retx_bus() -> BusConfig {
        let mut bus = BusConfig::paper_baseline();
        bus.retx_timeout_us = 1_000;
        bus.retx_max_retries = 2;
        bus
    }

    fn stage1_payload() -> MsgPayload {
        MsgPayload::StageData {
            stage: StageId::new(TaskId(0), crate::ids::SubtaskIdx(1)),
            replica: 0,
            instance: 0,
            tracks: 100,
        }
    }

    fn in_flight_copy(net: &mut NetEngine, id: u32, origin: u32) -> MsgId {
        let msg = MsgId(id);
        net.in_flight.insert(
            msg,
            Message {
                id: msg,
                src: NodeId(0),
                dst: NodeId(1),
                size_bytes: 8_000,
                payload: stage1_payload(),
                enqueued: SimTime::ZERO,
                tx_start: Some(SimTime::ZERO),
                origin: MsgId(origin),
            },
        );
        msg
    }

    #[test]
    fn retx_enabled_flags_follow_bus_config() {
        let off = NetEngine::new(BusConfig::paper_baseline());
        assert!(!off.retx_enabled && !off.dedup_enabled);
        let on = NetEngine::new(retx_bus());
        assert!(on.retx_enabled && on.dedup_enabled);
    }

    #[test]
    fn arm_retx_is_a_no_op_without_timeout() {
        let (mut k, _, mut net, _) = harness(BusConfig::paper_baseline());
        net.arm_retx(&mut k, SimTime::ZERO, MsgId(7), NodeId(0), NodeId(1), 800, stage1_payload());
        assert!(net.retx.is_empty(), "no retx state without a configured timeout");
        assert!(k.queue.peek_key().is_none(), "no timer event either");
    }

    #[test]
    fn delivery_cancels_the_armed_timer_and_admits_the_stage_job() {
        let (mut k, mut dispatch, mut net, mut tasks) = harness(retx_bus());
        net.arm_retx(&mut k, SimTime::ZERO, MsgId(7), NodeId(0), NodeId(1), 800, stage1_payload());
        assert!(net.retx.contains_key(&MsgId(7)), "timer armed");
        let msg = in_flight_copy(&mut net, 7, 7);
        net.on_deliver(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(1), msg);
        assert!(net.retx.is_empty(), "delivery retires the retransmit state");
        assert!(net.in_flight.is_empty());
        let prog = &tasks.tasks[0].instances[&0].stages[1];
        assert_eq!(prog.msgs_received[0], 1);
        assert_eq!(prog.seen_origins[0], vec![MsgId(7)], "dedup remembers the origin");
        assert!(
            dispatch.nodes[1].running.is_some(),
            "complete input admits and dispatches the stage job"
        );
    }

    #[test]
    fn timeout_resends_until_the_retry_budget_is_spent() {
        let (mut k, mut dispatch, mut net, mut tasks) = harness(retx_bus());
        net.arm_retx(&mut k, SimTime::ZERO, MsgId(7), NodeId(0), NodeId(1), 800, stage1_payload());
        // Two timeouts resend (attempts 1 and 2 = retx_max_retries)…
        for attempt in 1..=2u32 {
            let now = SimTime::from_millis(attempt as u64 * 2);
            net.on_retx_timeout(&mut k, &mut dispatch, &mut tasks, now, MsgId(7));
            assert_eq!(k.metrics.retransmits, attempt as u64);
            assert_eq!(net.retx[&MsgId(7)].attempts, attempt);
        }
        // …the third gives up: the copy is lost and the instance fails.
        net.on_retx_timeout(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(9), MsgId(7));
        assert!(net.retx.is_empty(), "give-up retires the state");
        assert_eq!(k.metrics.messages_lost, 1);
        assert!(tasks.tasks[0].instances.is_empty(), "instance failed on give-up");
        assert_eq!(tasks.pending_obs.len(), 1);
        assert!(tasks.pending_obs[0].missed);
    }

    #[test]
    fn timeout_gives_up_immediately_when_the_sender_is_dead() {
        let (mut k, mut dispatch, mut net, mut tasks) = harness(retx_bus());
        net.arm_retx(&mut k, SimTime::ZERO, MsgId(7), NodeId(0), NodeId(1), 800, stage1_payload());
        dispatch.nodes[0].alive = false;
        net.on_retx_timeout(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(2), MsgId(7));
        assert!(net.retx.is_empty());
        assert_eq!(k.metrics.retransmits, 0, "a dead sender never resends");
        assert_eq!(k.metrics.messages_lost, 1);
        assert!(tasks.tasks[0].instances.is_empty());
    }

    #[test]
    fn duplicate_origin_is_counted_once() {
        let (mut k, mut dispatch, mut net, mut tasks) = harness(retx_bus());
        let first = in_flight_copy(&mut net, 7, 7);
        net.on_deliver(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(1), first);
        // A redundant copy (retransmission or bus duplicate) of the same
        // origin arrives later: dedup swallows it before any accounting.
        let dup = in_flight_copy(&mut net, 8, 7);
        net.on_deliver(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(2), dup);
        let prog = &tasks.tasks[0].instances[&0].stages[1];
        assert_eq!(prog.msgs_received[0], 1, "duplicate not double-counted");
        assert_eq!(prog.tracks_in[0], 100, "tracks accumulated exactly once");
        assert_eq!(prog.seen_origins[0].len(), 1);
    }

    #[test]
    fn dead_destination_without_retx_loses_the_message_and_fails_the_instance() {
        let (mut k, mut dispatch, mut net, mut tasks) = harness(retx_bus());
        dispatch.nodes[1].alive = false;
        let msg = in_flight_copy(&mut net, 7, 7);
        net.on_deliver(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(1), msg);
        assert_eq!(k.metrics.messages_lost, 1);
        assert!(tasks.tasks[0].instances.is_empty(), "stage can never assemble its input");
    }

    #[test]
    fn dead_destination_with_pending_retx_is_not_a_final_loss() {
        let (mut k, mut dispatch, mut net, mut tasks) = harness(retx_bus());
        net.arm_retx(&mut k, SimTime::ZERO, MsgId(7), NodeId(0), NodeId(1), 800, stage1_payload());
        dispatch.nodes[1].alive = false;
        let msg = in_flight_copy(&mut net, 7, 7);
        net.on_deliver(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(1), msg);
        assert_eq!(k.metrics.messages_lost, 0, "the sender will retry");
        assert!(!tasks.tasks[0].instances.is_empty(), "instance survives until give-up");
        assert!(net.retx.contains_key(&MsgId(7)));
    }

    #[test]
    fn background_jobs_exist_independently_of_the_net_engine() {
        // The harness builds without a Cluster; sanity-check the pieces
        // are genuinely decoupled by running an unrelated admission.
        let (mut k, mut dispatch, _net, mut tasks) = harness(BusConfig::paper_baseline());
        dispatch.admit_job(
            &mut k,
            &mut tasks,
            SimTime::ZERO,
            NodeId(2),
            crate::job::JobKind::Background(LoadGenId(0)),
            SimDuration::from_millis(5),
            1,
        );
        assert!(dispatch.nodes[2].running.is_some());
    }
}
