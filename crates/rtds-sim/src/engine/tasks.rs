//! Task-lifecycle state: runtimes, in-flight instances, and the period
//! bookkeeping every other engine reports into.
//!
//! The [`TaskTable`] is the component the dispatch, network, and fault
//! engines converge on: a completed CPU job advances its stage here, a
//! delivered message accumulates its share here, and any engine that
//! loses work terminally calls [`TaskTable::fail_instance`].

use crate::control::{PeriodObservation, StageObservation};
use crate::engine::dispatch::DispatchEngine;
use crate::engine::net::NetEngine;
use crate::hashing::FxHashMap;
use crate::ids::{JobId, MsgId, StageId, SubtaskIdx, TaskId};
use crate::job::JobKind;
use crate::kernel::SimKernel;
use crate::pipeline::{split_tracks_into, TaskRuntime};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// Per-period workload source: maps the period index to the number of
/// data items (`ds(T_i, c)`) arriving in that period. Re-exported
/// publicly as `cluster::WorkloadFn`.
pub type WorkloadFn = Box<dyn FnMut(u64) -> u64 + Send>;

/// All periodic-task state of a run.
#[derive(Default)]
pub(crate) struct TaskTable {
    /// Task runtimes, indexed by `TaskId`.
    pub tasks: Vec<TaskRuntime>,
    /// Per-task workload sources, parallel to `tasks`.
    pub workloads: Vec<WorkloadFn>,
    /// Observations completed since the controller last ran.
    pub pending_obs: Vec<PeriodObservation>,
    /// Map (task, instance) → index into `metrics.periods`.
    pub record_idx: FxHashMap<(TaskId, u64), usize>,
}

impl TaskTable {
    /// True when some copy of `origin` already reached its stage replica.
    /// A redundant retransmission (the retx timer fired while the original
    /// was still queued) can then be lost or dropped harmlessly: the data
    /// arrived, so the instance must not be failed. Only ever true when
    /// `dedup_enabled` populates `seen_origins`, which covers every
    /// configuration that can produce redundant copies.
    pub fn origin_delivered(
        &self,
        stage: StageId,
        replica: u32,
        instance: u64,
        origin: MsgId,
    ) -> bool {
        self.tasks[stage.task.index()]
            .instances
            .get(&instance)
            .is_some_and(|inst| {
                inst.stages[stage.subtask.index()].seen_origins[replica as usize].contains(&origin)
            })
    }

    /// Fails one in-flight instance: it is removed, its period record is
    /// marked missed, and the controller is told (as a stage-less, missed
    /// observation, like a shed period).
    pub fn fail_instance(&mut self, k: &mut SimKernel, _now: SimTime, task: TaskId, instance: u64) {
        let Some(inst) = self.tasks[task.index()].instances.remove(&instance) else {
            return;
        };
        if let Some(&i) = self.record_idx.get(&(task, instance)) {
            k.metrics.periods[i].missed = Some(true);
        }
        self.pending_obs.push(PeriodObservation {
            task,
            instance,
            released: inst.released,
            tracks: inst.tracks,
            end_to_end: None,
            missed: true,
            stages: Vec::new(),
        });
    }

    /// Starts stage `stage` of instance `index`: for the first stage the
    /// sensor data is locally available, so replica jobs are admitted
    /// directly; later stages are started by message delivery.
    pub fn start_stage(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        now: SimTime,
        task: TaskId,
        index: u64,
        stage: SubtaskIdx,
    ) {
        // Borrow the scratch buffers for the call; `admit_job` needs the
        // kernel, so the replica list and shares live outside it while
        // jobs are admitted. Capacity survives across calls.
        let mut nodes = std::mem::take(&mut k.scratch.nodes);
        let mut shares = std::mem::take(&mut k.scratch.shares);
        let rt = &mut self.tasks[task.index()];
        let inst = rt.instances.get_mut(&index).expect("instance exists");
        nodes.clear();
        nodes.extend_from_slice(&inst.placement[stage.index()]);
        split_tracks_into(inst.tracks, nodes.len(), &mut shares);
        let cost = rt.spec.stages[stage.index()].cost;
        {
            let prog = &mut inst.stages[stage.index()];
            prog.started = Some(now);
            prog.tracks_in.clear();
            prog.tracks_in.extend_from_slice(&shares);
            for d in prog.msg_delay.iter_mut() {
                *d = Some(SimDuration::ZERO);
            }
        }
        let stage_id = StageId::new(task, stage);
        for (r, (&node, &share)) in nodes.iter().zip(shares.iter()).enumerate() {
            let demand = cost.demand(share).max(SimDuration::from_micros(1));
            dispatch.admit_job(
                k,
                self,
                now,
                node,
                JobKind::Stage {
                    stage: stage_id,
                    replica: r as u32,
                    instance: index,
                },
                demand,
                0,
            );
        }
        k.scratch.nodes = nodes;
        k.scratch.shares = shares;
    }

    /// A stage replica's CPU job completed: record its latency, and when
    /// the whole stage is done either fan out to the successor stage (via
    /// the network engine) or complete the instance.
    #[allow(clippy::too_many_arguments)]
    pub fn on_stage_job_complete(
        &mut self,
        k: &mut SimKernel,
        net: &mut NetEngine,
        now: SimTime,
        stage: StageId,
        replica: u32,
        instance: u64,
        released: SimTime,
    ) {
        let task = stage.task;
        let n_stages = self.tasks[task.index()].spec.n_stages();
        let deadline = self.tasks[task.index()].spec.deadline;
        let finished = {
            let rt = &mut self.tasks[task.index()];
            let Some(inst) = rt.instances.get_mut(&instance) else {
                return; // instance was failed (node death) while this job ran
            };
            let prog = &mut inst.stages[stage.subtask.index()];
            prog.exec_latency[replica as usize] = Some(now.since(released));
            prog.done_replicas += 1;
            if prog.done_replicas as usize == prog.exec_latency.len() {
                prog.completed = Some(now);
                true
            } else {
                false
            }
        };
        k.record_trace(
            now,
            TraceEvent::ReplicaDone {
                stage,
                replica,
                instance,
                latency: now.since(released),
            },
        );
        if !finished {
            return;
        }
        k.record_trace(now, TraceEvent::StageDone { stage, instance });
        let next = SubtaskIdx(stage.subtask.0 + 1);
        if next.index() < n_stages {
            net.send_stage_messages(k, self, now, task, instance, stage.subtask, next);
        } else {
            // Last stage: the instance is complete.
            let inst = {
                let rt = &mut self.tasks[task.index()];
                let mut inst = rt.instances.remove(&instance).expect("instance exists");
                inst.completed = Some(now);
                inst
            };
            let e2e = inst.end_to_end().expect("completed");
            let missed = e2e > deadline;
            k.record_trace(
                now,
                TraceEvent::InstanceDone {
                    instance,
                    latency: e2e,
                    missed,
                },
            );
            if let Some(&i) = self.record_idx.get(&(task, instance)) {
                let rec = &mut k.metrics.periods[i];
                rec.end_to_end = Some(e2e);
                rec.missed = Some(missed);
            }
            for (j, p) in inst.stages.iter().enumerate() {
                k.metrics.stage_records.push(crate::metrics::StageRecord {
                    task: task.0,
                    instance,
                    stage: j as u32,
                    replicas: inst.placement[j].len() as u32,
                    exec_ms: p
                        .max_exec_latency()
                        .unwrap_or(SimDuration::ZERO)
                        .as_millis_f64(),
                    msg_ms: p
                        .max_msg_delay()
                        .unwrap_or(SimDuration::ZERO)
                        .as_millis_f64(),
                });
            }
            let stages = inst
                .stages
                .iter()
                .enumerate()
                .map(|(j, p)| StageObservation {
                    subtask: SubtaskIdx::from_index(j),
                    replicas: inst.placement[j].len() as u32,
                    tracks: inst.tracks,
                    exec_latency: p.max_exec_latency().unwrap_or(SimDuration::ZERO),
                    inbound_msg_delay: p.max_msg_delay().unwrap_or(SimDuration::ZERO),
                    stage_latency: match (p.started, p.completed) {
                        (Some(s), Some(c)) => c.since(s),
                        _ => SimDuration::ZERO,
                    },
                })
                .collect();
            self.pending_obs.push(PeriodObservation {
                task,
                instance,
                released: inst.released,
                tracks: inst.tracks,
                end_to_end: Some(e2e),
                missed,
                stages,
            });
        }
    }

    /// Fails every instance in `lost` that owned a stage job, given the
    /// jobs' kinds. Helper for node-death teardown.
    pub fn fail_lost_jobs(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        now: SimTime,
        lost: Vec<JobId>,
    ) {
        for jid in lost {
            if let Some(job) = dispatch.remove_job(jid) {
                if let JobKind::Stage { stage, instance, .. } = job.kind {
                    self.fail_instance(k, now, stage.task, instance);
                }
            }
        }
    }
}
