//! Fault injection: node death, crash teardown, and restart re-arm.
//!
//! The [`FaultEngine`] is the single owner of the node-death path:
//! permanent failures (`NodeFail`) and crash–restart cycles (`NodeCrash`
//! / `NodeRestart`) both go through [`FaultEngine::kill_node`], so the
//! teardown semantics — lost jobs, failed instances, dead virtual lanes
//! — cannot drift between the two. A crash additionally tears down the
//! dead node's bus traffic, and a restart re-arms its dormant background
//! generators and reports the node as cold until its utilization
//! estimate warms back up.

use crate::engine::dispatch::DispatchEngine;
use crate::engine::load::LoadEngine;
use crate::engine::net::NetEngine;
use crate::engine::tasks::TaskTable;
use crate::ids::{JobId, NodeId};
use crate::kernel::{Ev, SimKernel};
use crate::net::MsgPayload;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// The one node-death code path, plus crash teardown and restart re-arm.
/// Stateless: everything it tears down or re-arms lives in the other
/// engines, which keeps "what dies with a node" auditable in one place.
#[derive(Debug, Default)]
pub(crate) struct FaultEngine;

impl FaultEngine {
    /// Kills a node: abort its running job, drop its ready queue, mark it
    /// dead. Instances whose jobs are lost can never complete and are
    /// failed immediately. Returns `false` (and does nothing) if the node
    /// was already dead.
    ///
    /// This is the *entire* effect of a permanent failure
    /// (`fail_node_at`); a crash is this plus bus teardown.
    pub fn kill_node(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        node: NodeId,
    ) -> bool {
        if !dispatch.nodes[node.index()].alive {
            return false;
        }
        dispatch.nodes[node.index()].alive = false;
        k.record_trace(now, TraceEvent::NodeFailed { node });
        let mut lost: Vec<JobId> = Vec::new();
        // Virtual lanes die with the node; their heap entries go stale.
        dispatch.chains[node.index()] = None;
        dispatch.bg_bounds[node.index()] = None;
        if let Some(running) = dispatch.nodes[node.index()].running.take() {
            if let Some(h) = running.dispatch_handle {
                k.queue.cancel(h);
            }
            lost.push(running.job);
        }
        while let Some(j) = dispatch.nodes[node.index()].sched.pick() {
            lost.push(j);
        }
        dispatch.nodes[node.index()].end_busy(now);
        tasks.fail_lost_jobs(k, dispatch, now, lost);
        true
    }

    /// Permanent failure (`Ev::NodeFail`): [`Self::kill_node`], nothing
    /// more. The node never dispatches again.
    pub fn on_node_fail(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        node: NodeId,
    ) {
        self.kill_node(k, dispatch, tasks, now, node);
    }

    /// A crash is a failure plus bus teardown: the crashed node's queued
    /// messages are purged and a frame it was mid-transmitting is aborted
    /// (the medium is freed for the next waiting sender). The aborted
    /// frame's already-scheduled `TxComplete` stays in the event queue and
    /// is ignored as stale by [`crate::net::SharedBus::tx_complete`].
    pub fn on_node_crash(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        net: &mut NetEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        node: NodeId,
    ) {
        if !self.kill_node(k, dispatch, tasks, now, node) {
            return;
        }
        let max_backoff = net.bus.config().max_backoff_us;
        let backoff = if max_backoff > 0
            && net.bus.transmitting_src() == Some(node)
            && net.bus.queue_len() > 0
        {
            SimDuration::from_micros(k.rng.below(max_backoff + 1))
        } else {
            SimDuration::ZERO
        };
        let aborted = net.bus.abort_from(now, node, backoff);
        if let Some((_, done)) = aborted.next {
            k.queue.schedule(done, Ev::TxComplete);
        }
        for m in aborted.purged.into_iter().chain(aborted.in_flight) {
            let MsgPayload::StageData { stage, replica, instance, .. } = m.payload;
            // A dead sender cannot retransmit: retire its timer too.
            if let Some(st) = net.retx.remove(&m.origin) {
                k.queue.cancel(st.timer);
            } else if tasks.origin_delivered(stage, replica, instance, m.origin) {
                // Leftover redundant retransmission; the data already
                // arrived, so purging this copy loses nothing.
                continue;
            }
            k.metrics.messages_lost += 1;
            k.record_trace(now, TraceEvent::MessageLost { msg: m.origin, dst: m.dst });
            tasks.fail_instance(k, now, stage.task, instance);
        }
    }

    /// Brings a crashed node back online: cold caches, empty queues, and
    /// a reset utilization estimate. Until the estimate warms up the node
    /// reports as `cold` in the [`crate::control::ControlContext`], so
    /// managers treat its utilization as missing rather than zero.
    pub fn on_node_restart(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        load: &mut LoadEngine,
        now: SimTime,
        node: NodeId,
    ) {
        if dispatch.nodes[node.index()].alive {
            return; // never crashed (or already restarted): nothing to do
        }
        dispatch.nodes[node.index()].restart(now);
        k.metrics.node_restarts += 1;
        k.record_trace(now, TraceEvent::NodeRestarted { node });
        // Re-arm the node's background generators that went dormant while
        // it was down: ambient load resumes with the node.
        load.rearm_dormant(k, now, node);
    }
}

#[cfg(test)]
mod tests {
    //! Isolated crash→restart tests: kernel + engines, no `Cluster`.

    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::engine::load::PollLane;
    use crate::ids::LoadGenId;
    use crate::job::JobKind;
    use crate::lane::LaneRef;
    use crate::load::PeriodicLoad;
    use crate::time::SimDuration;

    fn harness() -> (SimKernel, DispatchEngine, NetEngine, LoadEngine, TaskTable, FaultEngine) {
        let cfg = ClusterConfig::paper_baseline(7, SimDuration::from_secs(10));
        let dispatch = DispatchEngine::new(cfg.n_nodes, &cfg.scheduler, cfg.bg_fast_path);
        let net = NetEngine::new(cfg.bus);
        let k = SimKernel::new(cfg);
        let mut load = LoadEngine::default();
        load.gens.push(Box::new(PeriodicLoad::new(
            LoadGenId(0),
            NodeId(0),
            SimDuration::from_millis(10),
            0.3,
        )));
        load.polls.push(PollLane::default());
        (k, dispatch, net, load, TaskTable::default(), FaultEngine)
    }

    #[test]
    fn kill_node_is_idempotent() {
        let (mut k, mut dispatch, _net, _load, mut tasks, mut fault) = harness();
        assert!(fault.kill_node(&mut k, &mut dispatch, &mut tasks, SimTime::ZERO, NodeId(3)));
        assert!(!dispatch.nodes[3].alive);
        assert!(
            !fault.kill_node(&mut k, &mut dispatch, &mut tasks, SimTime::ZERO, NodeId(3)),
            "second kill reports already-dead and does nothing"
        );
    }

    #[test]
    fn kill_node_tears_down_lanes_running_job_and_queue() {
        let (mut k, mut dispatch, _net, _load, mut tasks, mut fault) = harness();
        // Two background jobs: one runs (with an elided boundary under
        // the fast path), one queues.
        for _ in 0..2 {
            dispatch.admit_job(
                &mut k,
                &mut tasks,
                SimTime::ZERO,
                NodeId(0),
                JobKind::Background(LoadGenId(0)),
                SimDuration::from_millis(5),
                1,
            );
        }
        assert!(dispatch.nodes[0].running.is_some());
        fault.kill_node(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(1), NodeId(0));
        assert!(dispatch.nodes[0].running.is_none());
        assert!(dispatch.chains[0].is_none() && dispatch.bg_bounds[0].is_none());
        assert_eq!(
            dispatch.jobs.iter().filter(|j| j.is_some()).count(),
            0,
            "both jobs reclaimed"
        );
    }

    #[test]
    fn poll_lane_goes_dormant_on_dead_node_and_rearms_on_restart() {
        let (mut k, mut dispatch, mut net, mut load, mut tasks, mut fault) = harness();
        fault.on_node_crash(&mut k, &mut dispatch, &mut net, &mut tasks, SimTime::ZERO, NodeId(0));
        // The generator's poll fires and finds its node down: dormant,
        // no RNG draw, no reschedule.
        let next = load.poll_generator(&mut k, &mut dispatch, &mut tasks, SimTime::from_millis(10), 0);
        assert_eq!(next, None);
        assert!(load.polls[0].dormant);
        assert!(load.polls[0].next.is_none());
        // Restart re-arms the lane at the restart instant (fast path:
        // virtual lane entry, no heap event).
        let back = SimTime::from_millis(500);
        fault.on_node_restart(&mut k, &mut dispatch, &mut load, back, NodeId(0));
        assert!(dispatch.nodes[0].alive);
        assert_eq!(k.metrics.node_restarts, 1);
        assert!(!load.polls[0].dormant);
        let (at, seq) = load.polls[0].next.expect("poll lane re-armed");
        assert_eq!(at, back);
        let top = k.lanes.peek().expect("lane heap entry pushed");
        assert_eq!((top.at, top.seq), (at, seq));
        assert!(matches!(top.lane, LaneRef::Poll(0)));
    }

    #[test]
    fn restart_does_not_rearm_a_pending_poll() {
        // A crash shorter than one interarrival gap: the generator's poll
        // never fired while the node was down, so it is not dormant and
        // restart must not arm a second lane (double-armed polls would
        // double the ambient load).
        let (mut k, mut dispatch, mut net, mut load, mut tasks, mut fault) = harness();
        load.polls[0].next = Some((SimTime::from_millis(20), 77));
        fault.on_node_crash(&mut k, &mut dispatch, &mut net, &mut tasks, SimTime::ZERO, NodeId(0));
        fault.on_node_restart(&mut k, &mut dispatch, &mut load, SimTime::from_millis(5), NodeId(0));
        assert_eq!(
            load.polls[0].next,
            Some((SimTime::from_millis(20), 77)),
            "pending poll untouched"
        );
        assert!(k.lanes.peek().is_none(), "no extra lane entry");
    }

    #[test]
    fn restart_of_a_live_node_is_a_no_op() {
        let (mut k, mut dispatch, _net, mut load, _tasks, mut fault) = harness();
        fault.on_node_restart(&mut k, &mut dispatch, &mut load, SimTime::from_millis(5), NodeId(0));
        assert_eq!(k.metrics.node_restarts, 0);
    }

    #[test]
    fn crash_mid_transmission_purges_and_fails_the_sender_frames() {
        let (mut k, mut dispatch, mut net, _load, mut tasks, mut fault) = harness();
        // Give the task table a live instance whose stage-1 input is the
        // in-flight frame below (placement: stage0@0, stage1@1).
        let spec = {
            use crate::pipeline::{PolynomialCost, StageSpec, TaskSpec};
            TaskSpec {
                id: crate::ids::TaskId(0),
                name: "iso".into(),
                period: SimDuration::from_secs(1),
                deadline: SimDuration::from_millis(990),
                track_bytes: 80,
                stages: [0u32, 1]
                    .iter()
                    .map(|&home| StageSpec {
                        name: format!("s{home}"),
                        cost: PolynomialCost::linear(1.0, 1.0),
                        replicable: false,
                        home: NodeId(home),
                        output_bytes_per_track: 80.0,
                    })
                    .collect(),
            }
        };
        let mut rt = crate::pipeline::TaskRuntime::new(spec);
        let inst = crate::pipeline::InstanceState::new(
            0,
            SimTime::ZERO,
            100,
            std::sync::Arc::clone(&rt.placement),
        );
        rt.instances.insert(0, inst);
        tasks.tasks.push(rt);
        // Put a frame from node 0 on the wire.
        let payload = crate::net::MsgPayload::StageData {
            stage: crate::ids::StageId::new(crate::ids::TaskId(0), crate::ids::SubtaskIdx(1)),
            replica: 0,
            instance: 0,
            tracks: 100,
        };
        let outcome = net.bus.send(SimTime::ZERO, NodeId(0), NodeId(1), 8_000, payload);
        assert!(matches!(outcome, crate::net::SendOutcome::Transmitting { .. }));
        fault.on_node_crash(
            &mut k,
            &mut dispatch,
            &mut net,
            &mut tasks,
            SimTime::from_micros(100),
            NodeId(0),
        );
        assert_eq!(k.metrics.messages_lost, 1, "the aborted frame is lost");
        assert!(tasks.tasks[0].instances.is_empty(), "its instance fails with it");
    }
}
