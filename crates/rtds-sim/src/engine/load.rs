//! Background load: ambient-load generators and their poll lanes.
//!
//! The [`LoadEngine`] owns the [`LoadGenerator`]s and the per-generator
//! poll state that drives them — either as real `BgPoll` heap events
//! (slow path) or as elided polls carried on virtual lanes (fast path).
//! Both paths draw the generator at the same program point with the same
//! RNG stream, so they are byte-identical by construction.

use crate::engine::dispatch::DispatchEngine;
use crate::engine::tasks::TaskTable;
use crate::ids::NodeId;
use crate::job::JobKind;
use crate::kernel::{Ev, SimKernel};
use crate::lane::LaneRef;
use crate::load::LoadGenerator;
use crate::time::SimTime;

/// Per-generator poll bookkeeping (see [`LoadEngine::polls`]).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PollLane {
    /// Fast path: `(time, seq)` of the next elided poll; `None` when the
    /// generator is retired (past horizon), dormant, or the slow path
    /// owns the poll as a real heap event.
    pub next: Option<(SimTime, u64)>,
    /// The generator's node was down when its poll fired; no further
    /// polls are armed until the node restarts.
    pub dormant: bool,
}

/// Ambient-load state and behavior: the generators and their poll lanes.
#[derive(Default)]
pub(crate) struct LoadEngine {
    /// The background load generators.
    pub gens: Vec<Box<dyn LoadGenerator>>,
    /// Per-generator poll state. With the fast path on, `next` holds the
    /// `(time, seq)` key of the next elided poll — the heap never sees a
    /// `BgPoll`. In both modes `dormant` marks a generator whose poll
    /// fired while its node was down; it is re-armed on restart.
    pub polls: Vec<PollLane>,
}

impl LoadEngine {
    /// Slow-path poll (real `BgPoll` heap event): admit the arrival and
    /// reschedule.
    pub fn on_bg_poll(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        gen: usize,
    ) {
        if let Some(next_at) = self.poll_generator(k, dispatch, tasks, now, gen) {
            k.queue.schedule(next_at, Ev::BgPoll { gen });
        }
    }

    /// Fast-path poll (virtual lane, no heap event): identical to
    /// [`Self::on_bg_poll`] except the next poll's `(time, seq)` key is
    /// reserved instead of scheduled. The seq allocation sits at the
    /// exact program point of the slow path's `schedule` — after the
    /// admission — so tie-breaking is bit-identical.
    /// Fires an elided poll whose lane entry is still at the top of the
    /// lane heap (the run loop peeks but does not pop). On re-arm the
    /// entry is rekeyed in place — one sift instead of a pop + push;
    /// when the generator retires (dormant or past the horizon) the
    /// entry is popped.
    pub fn on_virtual_poll(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        gen: usize,
    ) {
        let (_, prev_seq) = self.polls[gen].next.take().expect("poll lane is armed");
        match self.poll_generator(k, dispatch, tasks, now, gen) {
            Some(next_at) => {
                let seq = k.queue.alloc_seq();
                self.polls[gen].next = Some((next_at, seq));
                k.lanes
                    .rekey_top(prev_seq, next_at, seq, LaneRef::Poll(gen as u32));
            }
            None => {
                k.lanes.pop();
            }
        }
        if let Some(p) = k.perf.as_mut() {
            p.report.elided_bg_polls += 1;
        }
    }

    /// Common poll body: draw the generator (same RNG call, same program
    /// point in both paths), admit the arrival, and return the next poll
    /// time if one is due within the horizon. A poll that finds its node
    /// down marks the generator dormant — no RNG draw, no reschedule —
    /// until the fault engine's restart handler re-arms it, so ambient
    /// load survives crash–restart instead of silently vanishing.
    pub fn poll_generator(
        &mut self,
        k: &mut SimKernel,
        dispatch: &mut DispatchEngine,
        tasks: &mut TaskTable,
        now: SimTime,
        gen: usize,
    ) -> Option<SimTime> {
        let node = self.gens[gen].node();
        if !dispatch.nodes[node.index()].alive {
            self.polls[gen].dormant = true;
            return None;
        }
        let arrival = self.gens[gen].arrive(now, &mut k.rng);
        // A generator yielding `next_at <= now` would re-poll at the
        // current instant forever and spin the event loop; this is a
        // contract violation by the generator, not a simulation outcome.
        assert!(
            arrival.next_at > now,
            "load generator {gen} scheduled its next arrival at {} <= now {now}; \
             degenerate intervals would spin the event loop",
            arrival.next_at,
        );
        if !arrival.demand.is_zero() {
            let gid = crate::ids::LoadGenId(gen as u32);
            dispatch.admit_job(k, tasks, now, node, JobKind::Background(gid), arrival.demand, 1);
        }
        (arrival.next_at <= k.horizon()).then_some(arrival.next_at)
    }

    /// Re-arms `node`'s dormant generators at `now` (restart re-arm). A
    /// generator whose poll was still pending at restart (crash shorter
    /// than one interarrival gap) is not dormant and needs nothing — its
    /// poll fires normally. Index order keeps the re-arm deterministic.
    pub fn rearm_dormant(&mut self, k: &mut SimKernel, now: SimTime, node: NodeId) {
        for g in 0..self.gens.len() {
            if self.gens[g].node() != node || !self.polls[g].dormant {
                continue;
            }
            self.polls[g].dormant = false;
            if k.config.bg_fast_path {
                let seq = k.queue.alloc_seq();
                self.polls[g].next = Some((now, seq));
                k.lanes.push(now, seq, LaneRef::Poll(g as u32));
            } else {
                k.queue.schedule(now, Ev::BgPoll { gen: g });
            }
        }
    }
}
