//! Node scheduling: CPU dispatch, the job slab, and the virtual quantum
//! chains / boundary lanes of the fast path.
//!
//! The [`DispatchEngine`] owns the processor nodes and every live job.
//! It admits work (from stage starts, message deliveries, and background
//! polls), drives slice-boundary dispatches, and carries the elided
//! dispatch state of the fast path: per-node [`DispatchChain`]s for lone
//! jobs and `bg_bounds` for background-only nodes. All `(time, seq)`
//! allocation happens at the exact program points where the slow path
//! would `schedule`, which is what keeps the two modes byte-identical.

use crate::engine::net::NetEngine;
use crate::engine::tasks::TaskTable;
use crate::ids::{JobId, NodeId};
use crate::job::{Job, JobKind};
use crate::kernel::{Ev, SimKernel};
use crate::lane::LaneRef;
use crate::node::{Node, Running};
use crate::sched::SchedulerKind;
use crate::time::{SimDuration, SimTime};

/// The elided continuation of a lone running job (see
/// [`DispatchEngine::chains`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DispatchChain {
    /// Time of the next (elided) quantum-boundary dispatch.
    pub next_at: SimTime,
    /// The sequence number that dispatch would occupy in the event queue.
    pub next_seq: u64,
    /// When the job completes if it keeps the CPU: `slice_start +
    /// remaining` at chain creation. The dispatch at this instant has real
    /// effects and is scheduled as a real event when the chain reaches it.
    pub completion: SimTime,
    /// The node's scheduling quantum (chains only exist under a quantum).
    pub quantum: SimDuration,
}

/// CPU-side state and behavior: nodes, the job slab, and elided dispatch.
pub(crate) struct DispatchEngine {
    /// The processor nodes.
    pub nodes: Vec<Node>,
    /// Live jobs in a slot-reuse slab: `JobId` *is* the slot index, so
    /// the admit → dispatch → complete lifecycle (one per background
    /// arrival, millions per run) costs three `Vec` accesses instead of
    /// three hash-map operations. Ids are recycled; every id held by a
    /// scheduler queue or a `Running` slot is live by construction.
    pub jobs: Vec<Option<Job>>,
    /// Vacated job slots awaiting reuse.
    pub free_jobs: Vec<u32>,
    /// Per-node count of live application (stage) jobs — queued or
    /// running. Zero means every job on the node is background load and
    /// its dispatch boundaries are eligible for elision.
    pub stage_jobs: Vec<u32>,
    /// Per-node virtual dispatch chains: when a node runs a *lone* job
    /// (empty ready queue) spanning several quanta, every intermediate
    /// per-quantum `Dispatch` is a state no-op — it serves one quantum,
    /// requeues into an empty queue, picks the same job back, and
    /// schedules the next slice. Those events are elided from the heap;
    /// this chain tracks the `(time, seq)` key the *next* one would have
    /// carried, with the seq allocated at the exact point the real event
    /// would have been scheduled, so same-time tie-breaking is
    /// bit-identical to the unelided execution (see
    /// [`crate::event::EventQueue::alloc_seq`]). An arrival at the node
    /// re-materializes the pending link as a real truncated dispatch.
    pub chains: Vec<Option<DispatchChain>>,
    /// Per-node elided dispatch boundary, used when the fast path is on
    /// and the node runs *only* background jobs: the slice-end `Dispatch`
    /// is carried here (key only, no heap event) and fired as a direct
    /// handler call. A stage admission re-materializes it via
    /// [`crate::event::EventQueue::schedule_at_seq`] in its reserved
    /// tie-break slot. Invariant: a node never has both a chain and a
    /// boundary.
    pub bg_bounds: Vec<Option<(SimTime, u64)>>,
    /// Cached `config.bg_fast_path`.
    pub bg_ff: bool,
}

impl DispatchEngine {
    /// Builds `n_nodes` homogeneous nodes under `scheduler`.
    pub fn new(n_nodes: usize, scheduler: &SchedulerKind, bg_ff: bool) -> Self {
        let nodes = (0..n_nodes)
            .map(|i| Node::new(NodeId::from_index(i), scheduler.build()))
            .collect();
        DispatchEngine {
            nodes,
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            stage_jobs: vec![0; n_nodes],
            chains: vec![None; n_nodes],
            bg_bounds: vec![None; n_nodes],
            bg_ff,
        }
    }

    /// Admits a job to `node`'s scheduler (or fails its instance if the
    /// node is dead) and dispatches if the CPU is idle.
    #[allow(clippy::too_many_arguments)]
    pub fn admit_job(
        &mut self,
        k: &mut SimKernel,
        tasks: &mut TaskTable,
        now: SimTime,
        node: NodeId,
        kind: JobKind,
        demand: SimDuration,
        priority: u8,
    ) {
        if !self.nodes[node.index()].alive {
            // Work routed to a dead node is lost; a stage job's instance
            // can never complete.
            if let JobKind::Stage { stage, instance, .. } = kind {
                tasks.fail_instance(k, now, stage.task, instance);
            }
            return;
        }
        let slot = match self.free_jobs.pop() {
            Some(s) => s,
            None => {
                self.jobs.push(None);
                (self.jobs.len() - 1) as u32
            }
        };
        let id = JobId(slot);
        let job = Job::new(id, node, kind, demand, now).with_priority(priority);
        self.jobs[slot as usize] = Some(job);
        if kind.is_stage() {
            self.stage_jobs[node.index()] += 1;
        }
        if self.bg_ff && self.stage_jobs[node.index()] == 0 {
            // Still background-only: the running job (if chained) is no
            // longer alone, but its truncated slice boundary can stay
            // virtual — same key, no heap event.
            self.truncate_chain_to_bound(k, node);
        } else {
            // A stage job makes the node externally consequential: any
            // elided boundary or chain link re-materializes as a real
            // event in its reserved tie-break slot.
            self.materialize_bound(k, node);
            self.truncate_chain(k, node);
        }
        self.nodes[node.index()].sched.enqueue(id, priority);
        self.try_dispatch(k, now, node);
    }

    /// Frees a job slot, returning the job. The id becomes eligible for
    /// reuse by the next admission.
    #[inline]
    pub fn remove_job(&mut self, id: JobId) -> Option<Job> {
        let job = self.jobs[id.index()].take();
        if let Some(j) = &job {
            self.free_jobs.push(id.0);
            if j.kind.is_stage() {
                self.stage_jobs[j.node.index()] -= 1;
            }
        }
        job
    }

    /// Re-materializes a node's pending elided dispatch as a real event,
    /// in its reserved tie-break position: another job arrived, so
    /// round-robin interleaving must resume at the next quantum boundary
    /// exactly as it would have without elision.
    pub fn truncate_chain(&mut self, k: &mut SimKernel, node: NodeId) {
        if let Some(link) = self.chains[node.index()].take() {
            let h = k
                .queue
                .schedule_at_seq(link.next_at, link.next_seq, Ev::Dispatch { node });
            let r = self.nodes[node.index()]
                .running
                .as_mut()
                .expect("chained node has a running job");
            r.slice_end = link.next_at;
            r.dispatch_handle = Some(h);
        }
    }

    /// Like [`Self::truncate_chain`], but the truncated slice boundary
    /// stays virtual: on a background-only node the dispatch at
    /// `link.next_at` has no external observer, so its `(time, seq)` key
    /// moves from the chain to the boundary lane instead of the heap.
    /// The chain's heap entry goes stale; the key is unchanged, so event
    /// order — and hence every RNG draw and output byte — is too.
    pub fn truncate_chain_to_bound(&mut self, k: &mut SimKernel, node: NodeId) {
        if let Some(link) = self.chains[node.index()].take() {
            self.bg_bounds[node.index()] = Some((link.next_at, link.next_seq));
            k.lanes
                .push(link.next_at, link.next_seq, LaneRef::Bound(node.index() as u32));
            let r = self.nodes[node.index()]
                .running
                .as_mut()
                .expect("chained node has a running job");
            r.slice_end = link.next_at;
            debug_assert!(r.dispatch_handle.is_none(), "chained node had a heap dispatch");
        }
    }

    /// Re-materializes a node's elided background slice boundary as a
    /// real `Dispatch` in its reserved tie-break slot: a stage job was
    /// admitted, so from here on the node's scheduling is externally
    /// observable and runs on real events.
    pub fn materialize_bound(&mut self, k: &mut SimKernel, node: NodeId) {
        if let Some((at, seq)) = self.bg_bounds[node.index()].take() {
            let h = k.queue.schedule_at_seq(at, seq, Ev::Dispatch { node });
            let r = self.nodes[node.index()]
                .running
                .as_mut()
                .expect("bounded node has a running job");
            debug_assert_eq!(r.slice_end, at, "boundary key drifted from the running slice");
            r.dispatch_handle = Some(h);
        }
    }

    /// Fires one elided intermediate dispatch. For the lone job this is a
    /// state no-op (serve one quantum, requeue into an empty queue, pick
    /// itself back), so only its bookkeeping is replayed: the dispatch
    /// that handler would have scheduled takes the next sequence number,
    /// now. The chain's last link — the job's completion, which has real
    /// effects — keeps `next_at == completion` and is fired by the run
    /// loop as a direct handler call, never touching the heap.
    pub fn advance_chain(&mut self, k: &mut SimKernel, i: usize) {
        let link = self.chains[i].expect("chain link exists");
        debug_assert!(link.next_at < link.completion, "final link fired as intermediate");
        k.queue.advance_now(link.next_at);
        let next = (link.next_at + link.quantum).min(link.completion);
        let next_seq = k.queue.alloc_seq();
        self.chains[i] = Some(DispatchChain {
            next_at: next,
            next_seq,
            ..link
        });
        // The fired link's entry is still the heap top (the run loop
        // peeks, it does not pop): rekey it to the next link in place.
        k.lanes
            .rekey_top(link.next_seq, next, next_seq, LaneRef::Chain(i as u32));
        if let Some(p) = k.perf.as_mut() {
            p.report.elided_dispatches += 1;
        }
    }

    /// A node's CPU slice ended: debit the served time, then complete or
    /// rotate the job and dispatch the next one.
    pub fn on_dispatch(
        &mut self,
        k: &mut SimKernel,
        tasks: &mut TaskTable,
        net: &mut NetEngine,
        now: SimTime,
        node: NodeId,
    ) {
        let running = self.nodes[node.index()]
            .running
            .take()
            .expect("dispatch event on idle node");
        debug_assert_eq!(running.slice_end, now, "dispatch at wrong instant");
        let served = now.since(running.slice_start);
        let job = self.jobs[running.job.index()]
            .as_mut()
            .expect("running job exists");
        job.serve(served);
        if job.is_complete() {
            let job = self.remove_job(running.job).expect("job exists");
            if let JobKind::Stage { stage, replica, instance } = job.kind {
                let released = job.released;
                tasks.on_stage_job_complete(k, net, now, stage, replica, instance, released);
            }
        } else {
            let prio = job.priority;
            self.nodes[node.index()].sched.requeue(running.job, prio);
        }
        self.try_dispatch(k, now, node);
    }

    /// Picks and starts the next job on an idle node, arming either a
    /// real slice-boundary `Dispatch`, a virtual chain (lone multi-quantum
    /// job), or a virtual boundary (background-only node, fast path).
    pub fn try_dispatch(&mut self, k: &mut SimKernel, now: SimTime, node: NodeId) {
        let (jid, lone, quantum) = {
            let n = &mut self.nodes[node.index()];
            if n.running.is_some() {
                return;
            }
            match n.sched.pick() {
                Some(jid) => (jid, n.sched.ready_len() == 0, n.sched.quantum()),
                None => {
                    n.end_busy(now);
                    return;
                }
            }
        };
        let job = self.jobs[jid.index()].as_mut().expect("picked job exists");
        if job.first_dispatch.is_none() {
            job.first_dispatch = Some(now);
        }
        let remaining = job.remaining;
        // Fast path, background-only node: the coming slice boundary has
        // no external observer, so it is carried on the boundary lane
        // instead of the heap (the chain arm below is already heap-free).
        let bg_only = self.bg_ff && self.stage_jobs[node.index()] == 0;
        let (slice_end, handle) = match quantum {
            // A lone job spanning several quanta: every intermediate
            // dispatch would requeue into an empty queue and pick the
            // same job back, so the whole run is carried on the virtual
            // chain. The first elided dispatch would be scheduled right
            // here; its sequence number is allocated right here.
            Some(q) if lone && remaining > q => {
                let completion = now + remaining;
                let next_at = now + q;
                let next_seq = k.queue.alloc_seq();
                self.chains[node.index()] = Some(DispatchChain {
                    next_at,
                    next_seq,
                    completion,
                    quantum: q,
                });
                k.lanes.push(next_at, next_seq, LaneRef::Chain(node.index() as u32));
                (completion, None)
            }
            Some(q) => {
                let end = now + q.min(remaining);
                if bg_only {
                    (end, self.elide_bound(k, end, node))
                } else {
                    (end, Some(k.queue.schedule(end, Ev::Dispatch { node })))
                }
            }
            None => {
                let end = now + remaining;
                if bg_only {
                    (end, self.elide_bound(k, end, node))
                } else {
                    (end, Some(k.queue.schedule(end, Ev::Dispatch { node })))
                }
            }
        };
        let n = &mut self.nodes[node.index()];
        n.running = Some(Running {
            job: jid,
            slice_start: now,
            slice_end,
            dispatch_handle: handle,
        });
        n.begin_busy(now);
    }

    /// Arms the boundary lane for a background-only node's slice end and
    /// returns the (absent) dispatch handle. The seq is allocated at the
    /// exact program point where the slow path would `schedule`, keeping
    /// tie-break order bit-identical.
    #[inline]
    fn elide_bound(
        &mut self,
        k: &mut SimKernel,
        end: SimTime,
        node: NodeId,
    ) -> Option<crate::event::EventHandle> {
        let seq = k.queue.alloc_seq();
        self.bg_bounds[node.index()] = Some((end, seq));
        k.lanes.push(end, seq, LaneRef::Bound(node.index() as u32));
        None
    }
}
