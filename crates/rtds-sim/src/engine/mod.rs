//! Engine components: the domain logic of the simulation, split by
//! ownership and registered against the [`crate::kernel::SimKernel`].
//!
//! Each engine owns exactly one slice of mutable state and exposes the
//! handlers for the event kinds in its domain. Handlers take the kernel
//! and any *other* engines they need as explicit `&mut` parameters —
//! disjoint struct fields of `Cluster`, so the borrows always split:
//!
//! | component                  | owns                                         |
//! |----------------------------|----------------------------------------------|
//! | [`DispatchEngine`]         | nodes, job slab, quantum chains, boundaries  |
//! | [`NetEngine`]              | shared bus, in-flight/retx/dedup state       |
//! | [`FaultEngine`]            | node death, crash teardown, restart re-arm   |
//! | [`LoadEngine`]             | background generators and their poll lanes   |
//! | [`TaskTable`]              | task runtimes, instances, period bookkeeping |
//!
//! `Cluster` (the composition root) owns one of each plus the kernel and
//! the controller, and routes every popped event to the right handler.
//! See `docs/ARCHITECTURE.md` for the full map.

pub(crate) mod dispatch;
pub(crate) mod fault;
pub(crate) mod load;
pub(crate) mod net;
pub(crate) mod tasks;

pub(crate) use dispatch::DispatchEngine;
pub(crate) use fault::FaultEngine;
pub(crate) use load::LoadEngine;
pub(crate) use net::NetEngine;
pub(crate) use tasks::TaskTable;
