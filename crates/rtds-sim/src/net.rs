//! Shared-medium network model.
//!
//! The paper's hardware is "a set of distributed processors that share a
//! common communication medium such as an Ethernet segment (IEEE 802.3)"
//! at 100 Mbps (Table 1). [`SharedBus`] models that segment: one message
//! transmits at a time; others wait in a FIFO queue. The waiting time is
//! the paper's **buffer delay** `Dbuf` (Eq. 5) — it grows with the total
//! periodic workload because all inter-subtask messages contend for the one
//! segment — and the time on the wire is the **transmission delay**
//! `Dtrans = d / ls` (Eq. 6), plus per-frame Ethernet overhead.

use std::collections::{HashMap, VecDeque};

use crate::ids::{MsgId, NodeId, StageId};
use crate::time::{SimDuration, SimTime};

/// Payload routing information for a delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgPayload {
    /// Inter-subtask data: the share of the data stream destined for one
    /// replica of one stage of one period instance.
    StageData {
        /// Destination stage.
        stage: StageId,
        /// Destination replica index within the stage's placement.
        replica: u32,
        /// Period instance number.
        instance: u64,
        /// Number of data items (tracks) carried.
        tracks: u64,
    },
}

/// A message either queued, in flight, or delivered.
#[derive(Debug, Clone)]
pub struct Message {
    /// Unique id within the run.
    pub id: MsgId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Application payload size in bytes (before framing overhead).
    pub size_bytes: u64,
    /// Routing payload.
    pub payload: MsgPayload,
    /// When the sender handed the message to the network layer.
    pub enqueued: SimTime,
    /// When transmission onto the medium began.
    pub tx_start: Option<SimTime>,
}

impl Message {
    /// Buffer (queueing) delay experienced so far: Eq. (5)'s measured
    /// quantity.
    pub fn buffer_delay(&self) -> Option<SimDuration> {
        self.tx_start.map(|t| t.since(self.enqueued))
    }
}

/// Configuration of the shared segment.
#[derive(Debug, Clone, Copy)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct BusConfig {
    /// Link speed in bits per second (`ls` in Eq. 6). Paper: 100 Mbps.
    pub bandwidth_bps: f64,
    /// Maximum transmission unit payload per frame, bytes.
    pub mtu_bytes: u64,
    /// Per-frame overhead in bytes (preamble + header + FCS + inter-frame
    /// gap ≈ 38 B for Ethernet II).
    pub frame_overhead_bytes: u64,
    /// Fixed per-message protocol overhead in bytes (headers, marshalling);
    /// this is what makes over-replication cost network capacity — more
    /// replicas means more messages carrying the same total data.
    pub per_message_overhead_bytes: u64,
    /// One-way propagation + stack traversal latency added after
    /// transmission completes.
    pub propagation: SimDuration,
    /// Latency of a node-local delivery (same src and dst; never touches
    /// the medium).
    pub local_delivery: SimDuration,
    /// Maximum CSMA/CD-style contention backoff, microseconds: when a
    /// queued message wins the medium, it first waits a random backoff in
    /// `[0, max]` (the engine draws it) — 802.3's collision-avoidance
    /// cost under contention. 0 (the default) models the idealized
    /// collision-free segment used in the headline experiments.
    pub max_backoff_us: u64,
}

impl BusConfig {
    /// The paper's Table 1 segment: 100 Mbps Ethernet.
    pub fn paper_baseline() -> Self {
        BusConfig {
            bandwidth_bps: 100_000_000.0,
            mtu_bytes: 1500,
            frame_overhead_bytes: 38,
            per_message_overhead_bytes: 1024,
            propagation: SimDuration::from_micros(20),
            local_delivery: SimDuration::from_micros(50),
            max_backoff_us: 0,
        }
    }

    /// Wire time for a message of `size_bytes` application bytes, including
    /// per-message and per-frame overhead.
    pub fn wire_time(&self, size_bytes: u64) -> SimDuration {
        assert!(self.bandwidth_bps > 0.0);
        let total = size_bytes + self.per_message_overhead_bytes;
        let frames = total.div_ceil(self.mtu_bytes).max(1);
        let on_wire_bytes = total + frames * self.frame_overhead_bytes;
        SimDuration::from_secs_f64((on_wire_bytes as f64) * 8.0 / self.bandwidth_bps)
    }
}

/// The shared Ethernet segment.
pub struct SharedBus {
    config: BusConfig,
    /// Messages waiting for the medium, FIFO.
    queue: VecDeque<MsgId>,
    /// Message currently on the wire and when it finishes.
    transmitting: Option<(MsgId, SimTime)>,
    /// All live messages (queued or in flight), by id.
    messages: HashMap<MsgId, Message>,
    next_id: u32,
    /// Total time the medium has been busy (completed transmissions).
    busy_accum: SimDuration,
    busy_since: Option<SimTime>,
    /// Total application payload bytes accepted.
    pub bytes_offered: u64,
    /// Count of messages accepted (including local ones).
    pub messages_offered: u64,
}

/// What `SharedBus::send` decided to do with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Local delivery: the engine should deliver at the given time without
    /// any bus involvement.
    DeliverLocally {
        /// The message id assigned.
        msg: MsgId,
        /// Delivery instant.
        at: SimTime,
    },
    /// Transmission started immediately; a `TxComplete` is due at the given
    /// time.
    Transmitting {
        /// The message id assigned.
        msg: MsgId,
        /// Transmission completion instant.
        tx_done: SimTime,
    },
    /// The medium is busy; the message joined the queue.
    Queued {
        /// The message id assigned.
        msg: MsgId,
    },
}

impl SharedBus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        SharedBus {
            config,
            queue: VecDeque::new(),
            transmitting: None,
            messages: HashMap::new(),
            next_id: 0,
            busy_accum: SimDuration::ZERO,
            busy_since: None,
            bytes_offered: 0,
            messages_offered: 0,
        }
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    fn alloc_id(&mut self) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Accepts a message at time `now`.
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        payload: MsgPayload,
    ) -> SendOutcome {
        let id = self.alloc_id();
        self.bytes_offered += size_bytes;
        self.messages_offered += 1;
        let mut msg = Message {
            id,
            src,
            dst,
            size_bytes,
            payload,
            enqueued: now,
            tx_start: None,
        };
        if src == dst {
            msg.tx_start = Some(now);
            self.messages.insert(id, msg);
            return SendOutcome::DeliverLocally {
                msg: id,
                at: now + self.config.local_delivery,
            };
        }
        if self.transmitting.is_none() {
            let done = now + self.config.wire_time(size_bytes);
            msg.tx_start = Some(now);
            self.messages.insert(id, msg);
            self.transmitting = Some((id, done));
            self.begin_busy(now);
            SendOutcome::Transmitting { msg: id, tx_done: done }
        } else {
            self.messages.insert(id, msg);
            self.queue.push_back(id);
            SendOutcome::Queued { msg: id }
        }
    }

    /// Completes the in-flight transmission at `now`. Returns the finished
    /// message plus, if another message was waiting, its id and completion
    /// time (the engine schedules the next `TxComplete`). `backoff` is the
    /// contention backoff the engine drew for the next message (zero when
    /// `max_backoff_us` is 0); the medium counts as busy during it, like a
    /// real 802.3 contention interval.
    ///
    /// # Panics
    /// Panics if nothing is transmitting or the completion time disagrees.
    pub fn tx_complete(
        &mut self,
        now: SimTime,
        backoff: SimDuration,
    ) -> (Message, Option<(MsgId, SimTime)>) {
        let (id, done) = self.transmitting.take().expect("tx_complete with idle bus");
        assert_eq!(done, now, "tx_complete at wrong time");
        let msg = self.messages.remove(&id).expect("transmitting message exists");
        let next = self.queue.pop_front().map(|next_id| {
            let next_msg = self.messages.get_mut(&next_id).expect("queued message exists");
            next_msg.tx_start = Some(now + backoff);
            let done = now + backoff + self.config.wire_time(next_msg.size_bytes);
            self.transmitting = Some((next_id, done));
            (next_id, done)
        });
        if next.is_none() {
            self.end_busy(now);
        }
        (msg, next)
    }

    /// Removes and returns a locally-delivered message.
    pub fn take_local(&mut self, id: MsgId) -> Message {
        self.messages.remove(&id).expect("local message exists")
    }

    /// Propagation delay to add after transmission.
    pub fn propagation(&self) -> SimDuration {
        self.config.propagation
    }

    /// Number of messages waiting (not counting the one on the wire).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if a message is currently on the wire.
    pub fn is_transmitting(&self) -> bool {
        self.transmitting.is_some()
    }

    fn begin_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    fn end_busy(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_accum += now.since(since);
        }
    }

    /// Total medium-busy time up to `now`.
    pub fn busy_total(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.busy_accum + now.since(since),
            None => self.busy_accum,
        }
    }

    /// Lifetime-average medium utilization in `[0, 1]`.
    pub fn lifetime_utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total(now).as_secs_f64() / now.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SubtaskIdx, TaskId};

    fn payload() -> MsgPayload {
        MsgPayload::StageData {
            stage: StageId::new(TaskId(0), SubtaskIdx(1)),
            replica: 0,
            instance: 0,
            tracks: 100,
        }
    }

    fn bus() -> SharedBus {
        SharedBus::new(BusConfig::paper_baseline())
    }

    #[test]
    fn wire_time_matches_bandwidth() {
        let cfg = BusConfig::paper_baseline();
        // 1 MB + 1 KB overhead = 1_049_600 B -> 700 frames -> +26600 B framing.
        let t = cfg.wire_time(1_048_576);
        let expect_bytes = 1_048_576 + 1024 + 700 * 38;
        let expect = (expect_bytes as f64) * 8.0 / 100e6;
        assert!((t.as_secs_f64() - expect).abs() < 1e-6, "{t}");
    }

    #[test]
    fn wire_time_is_monotone_in_size() {
        let cfg = BusConfig::paper_baseline();
        let mut prev = SimDuration::ZERO;
        for sz in [0u64, 80, 1500, 10_000, 1_000_000] {
            let t = cfg.wire_time(sz);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn tiny_message_still_costs_one_frame() {
        let cfg = BusConfig::paper_baseline();
        assert!(cfg.wire_time(0) > SimDuration::ZERO);
    }

    #[test]
    fn idle_bus_transmits_immediately() {
        let mut b = bus();
        let out = b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload());
        match out {
            SendOutcome::Transmitting { tx_done, .. } => {
                assert!(tx_done > SimTime::ZERO);
            }
            other => panic!("expected Transmitting, got {other:?}"),
        }
        assert!(b.is_transmitting());
    }

    #[test]
    fn second_message_queues_behind_first() {
        let mut b = bus();
        let first = b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload());
        let SendOutcome::Transmitting { tx_done, .. } = first else {
            panic!()
        };
        let second = b.send(SimTime::ZERO, NodeId(2), NodeId(3), 8000, payload());
        assert!(matches!(second, SendOutcome::Queued { .. }));
        assert_eq!(b.queue_len(), 1);

        let (done_msg, next) = b.tx_complete(tx_done, SimDuration::ZERO);
        assert_eq!(done_msg.src, NodeId(0));
        let (next_id, next_done) = next.expect("queued message starts");
        assert!(next_done > tx_done);
        // Buffer delay of the second message equals the first's wire time.
        let m = &b.messages[&next_id];
        assert_eq!(m.buffer_delay().unwrap(), tx_done.since(SimTime::ZERO));
    }

    #[test]
    fn local_messages_bypass_the_medium() {
        let mut b = bus();
        let out = b.send(SimTime::from_millis(5), NodeId(2), NodeId(2), 999_999, payload());
        match out {
            SendOutcome::DeliverLocally { msg, at } => {
                assert_eq!(
                    at,
                    SimTime::from_millis(5) + BusConfig::paper_baseline().local_delivery
                );
                let m = b.take_local(msg);
                assert_eq!(m.buffer_delay(), Some(SimDuration::ZERO));
            }
            other => panic!("expected local delivery, got {other:?}"),
        }
        assert!(!b.is_transmitting());
        assert_eq!(b.busy_total(SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, payload())
        else {
            panic!()
        };
        b.tx_complete(tx_done, SimDuration::ZERO);
        // ~10ms busy (1 Mbit at 100 Mbps plus overhead).
        let u = b.lifetime_utilization(SimTime::from_millis(100));
        assert!(u > 0.09 && u < 0.12, "utilization {u}");
    }

    #[test]
    fn fifo_order_preserved_under_load() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000, payload())
        else {
            panic!()
        };
        for i in 0..5 {
            let out = b.send(SimTime::ZERO, NodeId(i), NodeId(5), 1000, payload());
            assert!(matches!(out, SendOutcome::Queued { .. }));
        }
        let mut srcs = Vec::new();
        let mut t = tx_done;
        let (first, mut next) = b.tx_complete(t, SimDuration::ZERO);
        srcs.push(first.src.0);
        while let Some((_, done)) = next {
            t = done;
            let (m, n) = b.tx_complete(t, SimDuration::ZERO);
            srcs.push(m.src.0);
            next = n;
        }
        assert_eq!(srcs, vec![0, 0, 1, 2, 3, 4]);
        assert!(!b.is_transmitting());
    }

    #[test]
    #[should_panic(expected = "idle bus")]
    fn tx_complete_on_idle_bus_panics() {
        bus().tx_complete(SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn contention_backoff_delays_next_transmission() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000, payload())
        else {
            panic!()
        };
        b.send(SimTime::ZERO, NodeId(2), NodeId(3), 1000, payload());
        let backoff = SimDuration::from_micros(40);
        let (_, next) = b.tx_complete(tx_done, backoff);
        let (_, next_done) = next.expect("queued message starts");
        let cfg = BusConfig::paper_baseline();
        assert_eq!(next_done, tx_done + backoff + cfg.wire_time(1000));
    }

    #[test]
    fn offered_counters_accumulate() {
        let mut b = bus();
        b.send(SimTime::ZERO, NodeId(0), NodeId(1), 100, payload());
        b.send(SimTime::ZERO, NodeId(1), NodeId(1), 200, payload());
        assert_eq!(b.bytes_offered, 300);
        assert_eq!(b.messages_offered, 2);
    }
}
