//! Shared-medium network model.
//!
//! The paper's hardware is "a set of distributed processors that share a
//! common communication medium such as an Ethernet segment (IEEE 802.3)"
//! at 100 Mbps (Table 1). [`SharedBus`] models that segment: one message
//! transmits at a time; others wait in a FIFO queue. The waiting time is
//! the paper's **buffer delay** `Dbuf` (Eq. 5) — it grows with the total
//! periodic workload because all inter-subtask messages contend for the one
//! segment — and the time on the wire is the **transmission delay**
//! `Dtrans = d / ls` (Eq. 6), plus per-frame Ethernet overhead.
//!
//! Beyond the paper's idealized lossless segment, the bus can model a
//! *degraded* medium: per-message drop and duplication probabilities and
//! transient bandwidth-degradation ("jamming") windows, all configured on
//! [`BusConfig`] and **off by default** so the headline experiments are
//! bit-for-bit unchanged. The engine layers sender-side timeout +
//! retransmit with exponential backoff on top (see `cluster.rs`);
//! retransmissions are ordinary messages that contend for the medium, so
//! Eq. (5) buffer delay degrades realistically under loss.

use std::collections::{HashMap, VecDeque};

use crate::ids::{MsgId, NodeId, StageId};
use crate::time::{SimDuration, SimTime};

/// Payload routing information for a delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgPayload {
    /// Inter-subtask data: the share of the data stream destined for one
    /// replica of one stage of one period instance.
    StageData {
        /// Destination stage.
        stage: StageId,
        /// Destination replica index within the stage's placement.
        replica: u32,
        /// Period instance number.
        instance: u64,
        /// Number of data items (tracks) carried.
        tracks: u64,
    },
}

/// A message either queued, in flight, or delivered.
#[derive(Debug, Clone)]
pub struct Message {
    /// Unique id within the run.
    pub id: MsgId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Application payload size in bytes (before framing overhead).
    pub size_bytes: u64,
    /// Routing payload.
    pub payload: MsgPayload,
    /// When the sender handed the message to the network layer.
    pub enqueued: SimTime,
    /// When transmission onto the medium began.
    pub tx_start: Option<SimTime>,
    /// Id of the *original* send this message carries data for. Equal to
    /// `id` for first transmissions; retransmissions and bus-injected
    /// duplicates keep the original's id here so receivers can
    /// de-duplicate.
    pub origin: MsgId,
}

impl Message {
    /// Buffer (queueing) delay experienced so far: Eq. (5)'s measured
    /// quantity.
    pub fn buffer_delay(&self) -> Option<SimDuration> {
        self.tx_start.map(|t| t.since(self.enqueued))
    }
}

/// Configuration of the shared segment.
///
/// `Deserialize` is implemented by hand (below) so that configs
/// serialized before the failure-realism fields existed keep loading:
/// absent failure knobs fall back to their documented defaults.
#[derive(Debug, Clone, Copy)]
#[derive(serde::Serialize)]
pub struct BusConfig {
    /// Link speed in bits per second (`ls` in Eq. 6). Paper: 100 Mbps.
    pub bandwidth_bps: f64,
    /// Maximum transmission unit payload per frame, bytes.
    pub mtu_bytes: u64,
    /// Per-frame overhead in bytes (preamble + header + FCS + inter-frame
    /// gap ≈ 38 B for Ethernet II).
    pub frame_overhead_bytes: u64,
    /// Fixed per-message protocol overhead in bytes (headers, marshalling);
    /// this is what makes over-replication cost network capacity — more
    /// replicas means more messages carrying the same total data.
    pub per_message_overhead_bytes: u64,
    /// One-way propagation + stack traversal latency added after
    /// transmission completes.
    pub propagation: SimDuration,
    /// Latency of a node-local delivery (same src and dst; never touches
    /// the medium).
    pub local_delivery: SimDuration,
    /// Maximum CSMA/CD-style contention backoff, microseconds: when a
    /// queued message wins the medium, it first waits a random backoff in
    /// `[0, max]` (the engine draws it) — 802.3's collision-avoidance
    /// cost under contention. 0 (the default) models the idealized
    /// collision-free segment used in the headline experiments.
    pub max_backoff_us: u64,
    /// Probability that a transmitted message is corrupted and discarded
    /// after burning its wire time (local deliveries are never dropped).
    /// 0.0 (the default) disables loss and draws no randomness.
    pub drop_prob: f64,
    /// Probability that a transmitted message is delivered twice (a
    /// spurious duplicate the receiver must suppress). 0.0 (the default)
    /// disables duplication and draws no randomness.
    pub dup_prob: f64,
    /// Sender-side retransmit timeout for `StageData` messages,
    /// microseconds. 0 (the default) disables retransmission entirely.
    /// When enabled, an unacknowledged message is resent after
    /// `retx_timeout_us << attempt` (deterministic exponential backoff).
    pub retx_timeout_us: u64,
    /// Maximum number of retransmissions before the sender gives up and
    /// the message counts as lost. Only meaningful when `retx_timeout_us`
    /// is non-zero.
    pub retx_max_retries: u32,
    /// Optional transient bandwidth-degradation ("jamming") window.
    /// Transmissions *starting* inside an active window run at
    /// `bandwidth_factor` of the configured link speed.
    pub jam: Option<JamWindow>,
}

fn default_retx_max_retries() -> u32 {
    3
}

impl serde::Deserialize for BusConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        // Missing failure-realism keys mean "feature off" (the field
        // docs' defaults) so pre-failure-realism serialized configs
        // still deserialize; the original fields stay required.
        fn opt<T: serde::Deserialize>(
            m: &serde::Map<String, serde::Value>,
            field: &str,
            default: T,
        ) -> Result<T, serde::Error> {
            match m.get(field) {
                Some(v) => T::from_value(v),
                None => Ok(default),
            }
        }
        let m = serde::expect_object(v, "struct BusConfig")?;
        Ok(BusConfig {
            bandwidth_bps: serde::get_field(m, "bandwidth_bps", "BusConfig")?,
            mtu_bytes: serde::get_field(m, "mtu_bytes", "BusConfig")?,
            frame_overhead_bytes: serde::get_field(m, "frame_overhead_bytes", "BusConfig")?,
            per_message_overhead_bytes: serde::get_field(
                m,
                "per_message_overhead_bytes",
                "BusConfig",
            )?,
            propagation: serde::get_field(m, "propagation", "BusConfig")?,
            local_delivery: serde::get_field(m, "local_delivery", "BusConfig")?,
            max_backoff_us: serde::get_field(m, "max_backoff_us", "BusConfig")?,
            drop_prob: opt(m, "drop_prob", 0.0)?,
            dup_prob: opt(m, "dup_prob", 0.0)?,
            retx_timeout_us: opt(m, "retx_timeout_us", 0)?,
            retx_max_retries: opt(m, "retx_max_retries", default_retx_max_retries())?,
            jam: opt(m, "jam", None)?,
        })
    }
}

/// A transient bandwidth-degradation window: between `start_us` and
/// `start_us + duration_us` (repeating every `repeat_us` if non-zero) the
/// effective link speed is `bandwidth_factor * bandwidth_bps`, modelling
/// interference/jamming or a congested backbone stealing capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct JamWindow {
    /// Window start, microseconds since simulation start.
    pub start_us: u64,
    /// Window length, microseconds. Must be positive.
    pub duration_us: u64,
    /// Fraction of nominal bandwidth available inside the window, in
    /// `(0, 1]`.
    pub bandwidth_factor: f64,
    /// Repetition period, microseconds; 0 means a one-shot window. When
    /// non-zero it must be at least `duration_us`.
    pub repeat_us: u64,
}

impl JamWindow {
    /// True when the window degrades the medium at instant `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        let us = t.as_micros();
        if us < self.start_us {
            return false;
        }
        let off = us - self.start_us;
        if self.repeat_us > 0 {
            off % self.repeat_us < self.duration_us
        } else {
            off < self.duration_us
        }
    }
}

/// Why a [`BusConfig`] was rejected by [`BusConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum BusConfigError {
    /// `bandwidth_bps` must be finite and strictly positive.
    InvalidBandwidth(f64),
    /// `mtu_bytes` must be non-zero.
    InvalidMtu,
    /// A probability field must be finite and within `[0, 1]`.
    InvalidProbability {
        /// Offending field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The jam window is malformed.
    InvalidJam(&'static str),
}

impl core::fmt::Display for BusConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BusConfigError::InvalidBandwidth(v) => {
                write!(f, "bandwidth_bps must be positive and finite (got {v})")
            }
            BusConfigError::InvalidMtu => write!(f, "mtu_bytes must be non-zero"),
            BusConfigError::InvalidProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1] (got {value})")
            }
            BusConfigError::InvalidJam(why) => write!(f, "invalid jam window: {why}"),
        }
    }
}

impl std::error::Error for BusConfigError {}

impl BusConfig {
    /// The paper's Table 1 segment: 100 Mbps Ethernet.
    pub fn paper_baseline() -> Self {
        BusConfig {
            bandwidth_bps: 100_000_000.0,
            mtu_bytes: 1500,
            frame_overhead_bytes: 38,
            per_message_overhead_bytes: 1024,
            propagation: SimDuration::from_micros(20),
            local_delivery: SimDuration::from_micros(50),
            max_backoff_us: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            retx_timeout_us: 0,
            retx_max_retries: default_retx_max_retries(),
            jam: None,
        }
    }

    /// Checks the configuration for values that would blow up deep inside
    /// the simulation (`wire_time` divides by `bandwidth_bps`, framing
    /// divides by `mtu_bytes`). Call sites that construct a bus should
    /// surface the error at the config site instead.
    pub fn validate(&self) -> Result<(), BusConfigError> {
        if !self.bandwidth_bps.is_finite() || self.bandwidth_bps <= 0.0 {
            return Err(BusConfigError::InvalidBandwidth(self.bandwidth_bps));
        }
        if self.mtu_bytes == 0 {
            return Err(BusConfigError::InvalidMtu);
        }
        for (field, value) in [("drop_prob", self.drop_prob), ("dup_prob", self.dup_prob)] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(BusConfigError::InvalidProbability { field, value });
            }
        }
        if let Some(jam) = self.jam {
            if jam.duration_us == 0 {
                return Err(BusConfigError::InvalidJam("duration_us must be non-zero"));
            }
            if !jam.bandwidth_factor.is_finite()
                || jam.bandwidth_factor <= 0.0
                || jam.bandwidth_factor > 1.0
            {
                return Err(BusConfigError::InvalidJam("bandwidth_factor must be in (0, 1]"));
            }
            if jam.repeat_us > 0 && jam.repeat_us < jam.duration_us {
                return Err(BusConfigError::InvalidJam("repeat_us must be >= duration_us"));
            }
        }
        Ok(())
    }

    /// Wire time for a message of `size_bytes` application bytes, including
    /// per-message and per-frame overhead.
    pub fn wire_time(&self, size_bytes: u64) -> SimDuration {
        assert!(self.bandwidth_bps > 0.0);
        let total = size_bytes + self.per_message_overhead_bytes;
        let frames = total.div_ceil(self.mtu_bytes).max(1);
        let on_wire_bytes = total + frames * self.frame_overhead_bytes;
        SimDuration::from_secs_f64((on_wire_bytes as f64) * 8.0 / self.bandwidth_bps)
    }

    /// Wire time for a transmission *starting* at `at`: like
    /// [`Self::wire_time`], stretched by the jam window's bandwidth factor
    /// when `at` falls inside an active window. A transmission keeps the
    /// rate it started with even if the window opens or closes mid-frame —
    /// a deliberate simplification.
    pub fn wire_time_at(&self, size_bytes: u64, at: SimTime) -> SimDuration {
        let base = self.wire_time(size_bytes);
        match self.jam {
            Some(jam) if jam.active_at(at) => base.mul_f64(1.0 / jam.bandwidth_factor),
            _ => base,
        }
    }

    /// True when any failure-realism feature (loss, duplication,
    /// retransmission, jamming) is enabled.
    pub fn has_failure_realism(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.retx_timeout_us > 0 || self.jam.is_some()
    }
}

/// The shared Ethernet segment.
pub struct SharedBus {
    config: BusConfig,
    /// Messages waiting for the medium, FIFO.
    queue: VecDeque<MsgId>,
    /// Message currently on the wire and when it finishes.
    transmitting: Option<(MsgId, SimTime)>,
    /// All live messages (queued or in flight), by id.
    messages: HashMap<MsgId, Message>,
    next_id: u32,
    /// Total time the medium has been busy (completed transmissions).
    busy_accum: SimDuration,
    busy_since: Option<SimTime>,
    /// Total application payload bytes accepted.
    pub bytes_offered: u64,
    /// Count of messages accepted (including local ones).
    pub messages_offered: u64,
}

/// What `SharedBus::send` decided to do with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Local delivery: the engine should deliver at the given time without
    /// any bus involvement.
    DeliverLocally {
        /// The message id assigned.
        msg: MsgId,
        /// Delivery instant.
        at: SimTime,
    },
    /// Transmission started immediately; a `TxComplete` is due at the given
    /// time.
    Transmitting {
        /// The message id assigned.
        msg: MsgId,
        /// Transmission completion instant.
        tx_done: SimTime,
    },
    /// The medium is busy; the message joined the queue.
    Queued {
        /// The message id assigned.
        msg: MsgId,
    },
}

/// Traffic torn down by [`SharedBus::abort_from`] when a node crashes.
#[derive(Debug, Default)]
pub struct AbortedTraffic {
    /// Queued messages from the crashed node, removed before transmission.
    pub purged: Vec<Message>,
    /// The message that was on the wire, if the crashed node was sending.
    pub in_flight: Option<Message>,
    /// If the wire was freed and another message was waiting, its id and
    /// completion time (the engine schedules the next `TxComplete`).
    pub next: Option<(MsgId, SimTime)>,
}

impl SharedBus {
    /// Creates an idle bus.
    ///
    /// # Panics
    /// Panics with a clear message if the configuration is invalid (see
    /// [`BusConfig::validate`]); catching bad configs here keeps the error
    /// at the config site instead of deep inside `wire_time`.
    pub fn new(config: BusConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid bus config: {e}");
        }
        SharedBus {
            config,
            queue: VecDeque::new(),
            transmitting: None,
            messages: HashMap::new(),
            next_id: 0,
            busy_accum: SimDuration::ZERO,
            busy_since: None,
            bytes_offered: 0,
            messages_offered: 0,
        }
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    fn alloc_id(&mut self) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Accepts a message at time `now`.
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        payload: MsgPayload,
    ) -> SendOutcome {
        self.send_inner(now, src, dst, size_bytes, payload, None)
    }

    /// Accepts a *retransmission* of an earlier message: identical to
    /// [`Self::send`] (the copy contends for the medium like any other
    /// traffic) but stamped with the original's id so the receiver can
    /// suppress duplicates.
    pub fn resend(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        payload: MsgPayload,
        origin: MsgId,
    ) -> SendOutcome {
        self.send_inner(now, src, dst, size_bytes, payload, Some(origin))
    }

    fn send_inner(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        payload: MsgPayload,
        origin: Option<MsgId>,
    ) -> SendOutcome {
        let id = self.alloc_id();
        self.bytes_offered += size_bytes;
        self.messages_offered += 1;
        let mut msg = Message {
            id,
            src,
            dst,
            size_bytes,
            payload,
            enqueued: now,
            tx_start: None,
            origin: origin.unwrap_or(id),
        };
        if src == dst {
            msg.tx_start = Some(now);
            self.messages.insert(id, msg);
            return SendOutcome::DeliverLocally {
                msg: id,
                at: now + self.config.local_delivery,
            };
        }
        if self.transmitting.is_none() {
            let done = now + self.config.wire_time_at(size_bytes, now);
            msg.tx_start = Some(now);
            self.messages.insert(id, msg);
            self.transmitting = Some((id, done));
            self.begin_busy(now);
            SendOutcome::Transmitting { msg: id, tx_done: done }
        } else {
            self.messages.insert(id, msg);
            self.queue.push_back(id);
            SendOutcome::Queued { msg: id }
        }
    }

    /// Allocates a fresh message id for an engine-injected copy (a bus
    /// duplicate delivered alongside the original).
    pub fn alloc_copy_id(&mut self) -> MsgId {
        self.alloc_id()
    }

    /// Completes the in-flight transmission at `now`. Returns the finished
    /// message plus, if another message was waiting, its id and completion
    /// time (the engine schedules the next `TxComplete`). `backoff` is the
    /// contention backoff the engine drew for the next message (zero when
    /// `max_backoff_us` is 0); the medium counts as busy during it, like a
    /// real 802.3 contention interval.
    ///
    /// Returns `None` for a *stale* completion — the bus is idle, or the
    /// recorded completion time disagrees with `now`. Stale `TxComplete`
    /// events are left behind when a crash aborts the in-flight message
    /// and must be ignored, not paniced on.
    pub fn tx_complete(
        &mut self,
        now: SimTime,
        backoff: SimDuration,
    ) -> Option<(Message, Option<(MsgId, SimTime)>)> {
        match self.transmitting {
            Some((_, done)) if done == now => {}
            // Idle bus or a different in-flight message: a completion for
            // traffic that was aborted. Ignore it.
            _ => return None,
        }
        let (id, _) = self.transmitting.take().expect("checked above");
        let msg = self.messages.remove(&id).expect("transmitting message exists");
        let next = self.queue.pop_front().map(|next_id| {
            let start = now + backoff;
            let next_msg = self.messages.get_mut(&next_id).expect("queued message exists");
            next_msg.tx_start = Some(start);
            let done = start + self.config.wire_time_at(next_msg.size_bytes, start);
            self.transmitting = Some((next_id, done));
            (next_id, done)
        });
        if next.is_none() {
            self.end_busy(now);
        }
        Some((msg, next))
    }

    /// Tears down all traffic *from* a crashed node at `now`: queued
    /// messages are purged, and if the node was mid-transmission the wire
    /// is freed (that frame never completes). If freeing the wire lets a
    /// queued message start, `backoff` is applied ahead of it exactly as
    /// in [`Self::tx_complete`] and the new completion is reported in
    /// [`AbortedTraffic::next`]. The stale `TxComplete` of the aborted
    /// message stays in the engine's event queue and is later ignored.
    ///
    /// Messages *to* the crashed node are left alone — the sender has no
    /// way to know the destination died; they transmit and are accounted
    /// lost on delivery.
    pub fn abort_from(&mut self, now: SimTime, node: NodeId, backoff: SimDuration) -> AbortedTraffic {
        let mut out = AbortedTraffic::default();
        self.queue.retain(|id| {
            let keep = self.messages[id].src != node;
            if !keep {
                out.purged.push(self.messages.remove(id).expect("queued message exists"));
            }
            keep
        });
        let aborting = matches!(
            self.transmitting,
            Some((id, _)) if self.messages[&id].src == node
        );
        if aborting {
            let (id, _) = self.transmitting.take().expect("checked above");
            out.in_flight = Some(self.messages.remove(&id).expect("transmitting message exists"));
            out.next = self.queue.pop_front().map(|next_id| {
                let start = now + backoff;
                let next_msg = self.messages.get_mut(&next_id).expect("queued message exists");
                next_msg.tx_start = Some(start);
                let done = start + self.config.wire_time_at(next_msg.size_bytes, start);
                self.transmitting = Some((next_id, done));
                (next_id, done)
            });
            if out.next.is_none() {
                self.end_busy(now);
            }
        }
        out
    }

    /// Removes and returns a locally-delivered message.
    pub fn take_local(&mut self, id: MsgId) -> Message {
        self.messages.remove(&id).expect("local message exists")
    }

    /// Propagation delay to add after transmission.
    pub fn propagation(&self) -> SimDuration {
        self.config.propagation
    }

    /// Number of messages waiting (not counting the one on the wire).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if a message is currently on the wire.
    pub fn is_transmitting(&self) -> bool {
        self.transmitting.is_some()
    }

    /// Source node of the message currently on the wire, if any.
    pub fn transmitting_src(&self) -> Option<NodeId> {
        self.transmitting.map(|(id, _)| self.messages[&id].src)
    }

    fn begin_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    fn end_busy(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_accum += now.since(since);
        }
    }

    /// Total medium-busy time up to `now`.
    pub fn busy_total(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.busy_accum + now.since(since),
            None => self.busy_accum,
        }
    }

    /// Lifetime-average medium utilization in `[0, 1]`.
    pub fn lifetime_utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total(now).as_secs_f64() / now.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SubtaskIdx, TaskId};

    fn payload() -> MsgPayload {
        MsgPayload::StageData {
            stage: StageId::new(TaskId(0), SubtaskIdx(1)),
            replica: 0,
            instance: 0,
            tracks: 100,
        }
    }

    fn bus() -> SharedBus {
        SharedBus::new(BusConfig::paper_baseline())
    }

    #[test]
    fn pre_failure_realism_config_still_deserializes() {
        use serde::{Deserialize, Serialize, Value};
        // A config serialized before the failure-realism fields existed:
        // strip the new keys from a round-tripped baseline.
        let full = BusConfig::paper_baseline().to_value();
        let mut old = serde::Map::new();
        for (k, v) in full.as_object().expect("object").iter() {
            let new_field = matches!(
                k.as_str(),
                "drop_prob" | "dup_prob" | "retx_timeout_us" | "retx_max_retries" | "jam"
            );
            if !new_field {
                old.insert(k.clone(), v.clone());
            }
        }
        let cfg = BusConfig::from_value(&Value::Object(old)).expect("legacy config must load");
        assert_eq!(cfg.bandwidth_bps, 100_000_000.0);
        assert_eq!(cfg.drop_prob, 0.0);
        assert_eq!(cfg.dup_prob, 0.0);
        assert_eq!(cfg.retx_timeout_us, 0);
        assert_eq!(cfg.retx_max_retries, default_retx_max_retries());
        assert!(cfg.jam.is_none());
    }

    #[test]
    fn bus_config_roundtrips_with_failure_fields() {
        use serde::{Deserialize, Serialize};
        let mut cfg = BusConfig::paper_baseline();
        cfg.drop_prob = 0.25;
        cfg.dup_prob = 0.01;
        cfg.retx_timeout_us = 15_000;
        cfg.retx_max_retries = 7;
        cfg.jam = Some(JamWindow {
            start_us: 1_000,
            duration_us: 500,
            bandwidth_factor: 0.5,
            repeat_us: 2_000,
        });
        let back = BusConfig::from_value(&cfg.to_value()).expect("roundtrip");
        assert_eq!(back.drop_prob, cfg.drop_prob);
        assert_eq!(back.dup_prob, cfg.dup_prob);
        assert_eq!(back.retx_timeout_us, cfg.retx_timeout_us);
        assert_eq!(back.retx_max_retries, cfg.retx_max_retries);
        assert_eq!(back.jam, cfg.jam);
    }

    #[test]
    fn wire_time_matches_bandwidth() {
        let cfg = BusConfig::paper_baseline();
        // 1 MB + 1 KB overhead = 1_049_600 B -> 700 frames -> +26600 B framing.
        let t = cfg.wire_time(1_048_576);
        let expect_bytes = 1_048_576 + 1024 + 700 * 38;
        let expect = (expect_bytes as f64) * 8.0 / 100e6;
        assert!((t.as_secs_f64() - expect).abs() < 1e-6, "{t}");
    }

    #[test]
    fn wire_time_is_monotone_in_size() {
        let cfg = BusConfig::paper_baseline();
        let mut prev = SimDuration::ZERO;
        for sz in [0u64, 80, 1500, 10_000, 1_000_000] {
            let t = cfg.wire_time(sz);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn tiny_message_still_costs_one_frame() {
        let cfg = BusConfig::paper_baseline();
        assert!(cfg.wire_time(0) > SimDuration::ZERO);
    }

    #[test]
    fn idle_bus_transmits_immediately() {
        let mut b = bus();
        let out = b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload());
        match out {
            SendOutcome::Transmitting { tx_done, .. } => {
                assert!(tx_done > SimTime::ZERO);
            }
            other => panic!("expected Transmitting, got {other:?}"),
        }
        assert!(b.is_transmitting());
    }

    #[test]
    fn second_message_queues_behind_first() {
        let mut b = bus();
        let first = b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload());
        let SendOutcome::Transmitting { tx_done, .. } = first else {
            panic!()
        };
        let second = b.send(SimTime::ZERO, NodeId(2), NodeId(3), 8000, payload());
        assert!(matches!(second, SendOutcome::Queued { .. }));
        assert_eq!(b.queue_len(), 1);

        let (done_msg, next) = b.tx_complete(tx_done, SimDuration::ZERO).expect("live completion");
        assert_eq!(done_msg.src, NodeId(0));
        let (next_id, next_done) = next.expect("queued message starts");
        assert!(next_done > tx_done);
        // Buffer delay of the second message equals the first's wire time.
        let m = &b.messages[&next_id];
        assert_eq!(m.buffer_delay().unwrap(), tx_done.since(SimTime::ZERO));
    }

    #[test]
    fn local_messages_bypass_the_medium() {
        let mut b = bus();
        let out = b.send(SimTime::from_millis(5), NodeId(2), NodeId(2), 999_999, payload());
        match out {
            SendOutcome::DeliverLocally { msg, at } => {
                assert_eq!(
                    at,
                    SimTime::from_millis(5) + BusConfig::paper_baseline().local_delivery
                );
                let m = b.take_local(msg);
                assert_eq!(m.buffer_delay(), Some(SimDuration::ZERO));
            }
            other => panic!("expected local delivery, got {other:?}"),
        }
        assert!(!b.is_transmitting());
        assert_eq!(b.busy_total(SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, payload())
        else {
            panic!()
        };
        b.tx_complete(tx_done, SimDuration::ZERO).expect("live completion");
        // ~10ms busy (1 Mbit at 100 Mbps plus overhead).
        let u = b.lifetime_utilization(SimTime::from_millis(100));
        assert!(u > 0.09 && u < 0.12, "utilization {u}");
    }

    #[test]
    fn fifo_order_preserved_under_load() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000, payload())
        else {
            panic!()
        };
        for i in 0..5 {
            let out = b.send(SimTime::ZERO, NodeId(i), NodeId(5), 1000, payload());
            assert!(matches!(out, SendOutcome::Queued { .. }));
        }
        let mut srcs = Vec::new();
        let mut t = tx_done;
        let (first, mut next) = b.tx_complete(t, SimDuration::ZERO).expect("live completion");
        srcs.push(first.src.0);
        while let Some((_, done)) = next {
            t = done;
            let (m, n) = b.tx_complete(t, SimDuration::ZERO).expect("live completion");
            srcs.push(m.src.0);
            next = n;
        }
        assert_eq!(srcs, vec![0, 0, 1, 2, 3, 4]);
        assert!(!b.is_transmitting());
    }

    #[test]
    fn tx_complete_on_idle_bus_is_ignored() {
        // A completion with nothing on the wire is a stale event left by a
        // crash abort — it must be a no-op, not a panic.
        assert!(bus().tx_complete(SimTime::ZERO, SimDuration::ZERO).is_none());
    }

    #[test]
    fn stale_tx_complete_after_abort_is_ignored() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload())
        else {
            panic!()
        };
        // Node 0 crashes mid-flight; its frame never completes.
        let aborted = b.abort_from(SimTime::from_micros(10), NodeId(0), SimDuration::ZERO);
        assert!(aborted.in_flight.is_some());
        assert!(!b.is_transmitting());
        // The TxComplete the engine scheduled for the aborted frame fires
        // anyway and must be ignored.
        assert!(b.tx_complete(tx_done, SimDuration::ZERO).is_none());
    }

    #[test]
    fn abort_purges_queued_messages_and_starts_next() {
        let mut b = bus();
        let SendOutcome::Transmitting { .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload())
        else {
            panic!()
        };
        b.send(SimTime::ZERO, NodeId(0), NodeId(2), 1000, payload()); // queued, same src
        b.send(SimTime::ZERO, NodeId(3), NodeId(4), 1000, payload()); // queued, other src
        let t = SimTime::from_micros(100);
        let aborted = b.abort_from(t, NodeId(0), SimDuration::ZERO);
        assert_eq!(aborted.purged.len(), 1, "node 0's queued message purged");
        assert_eq!(aborted.purged[0].dst, NodeId(2));
        assert!(aborted.in_flight.is_some(), "in-flight frame torn down");
        // The survivor (node 3's message) takes the wire immediately.
        let (next_id, next_done) = aborted.next.expect("survivor starts");
        assert_eq!(next_done, t + BusConfig::paper_baseline().wire_time(1000));
        assert!(b.is_transmitting());
        assert_eq!(b.transmitting_src(), Some(NodeId(3)));
        let (m, next) = b.tx_complete(next_done, SimDuration::ZERO).expect("live completion");
        assert_eq!(m.id, next_id);
        assert!(next.is_none());
    }

    #[test]
    fn abort_from_uninvolved_node_changes_nothing() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 8000, payload())
        else {
            panic!()
        };
        let aborted = b.abort_from(SimTime::from_micros(1), NodeId(5), SimDuration::ZERO);
        assert!(aborted.purged.is_empty() && aborted.in_flight.is_none() && aborted.next.is_none());
        assert!(b.tx_complete(tx_done, SimDuration::ZERO).is_some());
    }

    #[test]
    fn validate_rejects_bad_bandwidth() {
        let mut cfg = BusConfig::paper_baseline();
        cfg.bandwidth_bps = 0.0;
        assert_eq!(cfg.validate(), Err(BusConfigError::InvalidBandwidth(0.0)));
        cfg.bandwidth_bps = -5.0;
        assert!(cfg.validate().is_err());
        cfg.bandwidth_bps = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.bandwidth_bps = f64::INFINITY;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "bandwidth_bps must be positive and finite")]
    fn bus_construction_rejects_bad_bandwidth_with_clear_error() {
        let mut cfg = BusConfig::paper_baseline();
        cfg.bandwidth_bps = 0.0;
        let _ = SharedBus::new(cfg);
    }

    #[test]
    fn validate_rejects_bad_probabilities_and_jam() {
        let mut cfg = BusConfig::paper_baseline();
        cfg.drop_prob = 1.5;
        assert!(matches!(
            cfg.validate(),
            Err(BusConfigError::InvalidProbability { field: "drop_prob", .. })
        ));
        cfg.drop_prob = 0.0;
        cfg.dup_prob = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.dup_prob = 0.0;
        cfg.mtu_bytes = 0;
        assert_eq!(cfg.validate(), Err(BusConfigError::InvalidMtu));
        cfg.mtu_bytes = 1500;
        cfg.jam = Some(JamWindow {
            start_us: 0,
            duration_us: 0,
            bandwidth_factor: 0.5,
            repeat_us: 0,
        });
        assert!(cfg.validate().is_err());
        cfg.jam = Some(JamWindow {
            start_us: 0,
            duration_us: 100,
            bandwidth_factor: 2.0,
            repeat_us: 0,
        });
        assert!(cfg.validate().is_err());
        cfg.jam = Some(JamWindow {
            start_us: 0,
            duration_us: 100,
            bandwidth_factor: 0.5,
            repeat_us: 50,
        });
        assert!(cfg.validate().is_err());
        cfg.jam = Some(JamWindow {
            start_us: 0,
            duration_us: 100,
            bandwidth_factor: 0.5,
            repeat_us: 1000,
        });
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn jam_window_stretches_wire_time_inside_the_window() {
        let mut cfg = BusConfig::paper_baseline();
        cfg.jam = Some(JamWindow {
            start_us: 1000,
            duration_us: 500,
            bandwidth_factor: 0.25,
            repeat_us: 2000,
        });
        let base = cfg.wire_time(8000);
        // Before the window, and in the gap of the repeat cycle: nominal.
        assert_eq!(cfg.wire_time_at(8000, SimTime::from_micros(0)), base);
        assert_eq!(cfg.wire_time_at(8000, SimTime::from_micros(1700)), base);
        // Inside the first and second windows: 4x slower.
        assert_eq!(cfg.wire_time_at(8000, SimTime::from_micros(1200)), base.mul_f64(4.0));
        assert_eq!(cfg.wire_time_at(8000, SimTime::from_micros(3100)), base.mul_f64(4.0));
    }

    #[test]
    fn resend_carries_the_original_id() {
        let mut b = bus();
        let SendOutcome::Transmitting { msg: orig, tx_done } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000, payload())
        else {
            panic!()
        };
        let (m, _) = b.tx_complete(tx_done, SimDuration::ZERO).expect("live completion");
        assert_eq!(m.origin, orig, "first transmission is its own origin");
        let SendOutcome::Transmitting { msg: copy, tx_done } =
            b.resend(tx_done, NodeId(0), NodeId(1), 1000, payload(), orig)
        else {
            panic!()
        };
        assert_ne!(copy, orig, "retransmission gets a fresh message id");
        let (m, _) = b.tx_complete(tx_done, SimDuration::ZERO).expect("live completion");
        assert_eq!(m.origin, orig, "but keeps the original as its origin");
    }

    #[test]
    fn contention_backoff_delays_next_transmission() {
        let mut b = bus();
        let SendOutcome::Transmitting { tx_done, .. } =
            b.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000, payload())
        else {
            panic!()
        };
        b.send(SimTime::ZERO, NodeId(2), NodeId(3), 1000, payload());
        let backoff = SimDuration::from_micros(40);
        let (_, next) = b.tx_complete(tx_done, backoff).expect("live completion");
        let (_, next_done) = next.expect("queued message starts");
        let cfg = BusConfig::paper_baseline();
        assert_eq!(next_done, tx_done + backoff + cfg.wire_time(1000));
    }

    #[test]
    fn offered_counters_accumulate() {
        let mut b = bus();
        b.send(SimTime::ZERO, NodeId(0), NodeId(1), 100, payload());
        b.send(SimTime::ZERO, NodeId(1), NodeId(1), 200, payload());
        assert_eq!(b.bytes_offered, 300);
        assert_eq!(b.messages_offered, 2);
    }
}
