//! Structured run tracing.
//!
//! A lightweight, allocation-conscious event trace the cluster can emit
//! into: one [`TraceEvent`] per interesting state change (release, stage
//! completion, message delivery, placement change, shedding, node
//! failure). Tests assert against traces instead of printf-debugging, and
//! the `aaw_mission` example renders one. Disabled by default — a
//! [`TraceSink`] is opt-in and bounded.

use crate::ids::{MsgId, NodeId, StageId};
use crate::time::{SimDuration, SimTime};

/// One traced state change.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A period instance was released with this many tracks.
    Release {
        /// Instance number.
        instance: u64,
        /// Data items this period.
        tracks: u64,
    },
    /// A period instance was shed by admission control.
    Shed {
        /// Instance number.
        instance: u64,
    },
    /// One replica of a stage finished its CPU job.
    ReplicaDone {
        /// Stage.
        stage: StageId,
        /// Replica index.
        replica: u32,
        /// Instance number.
        instance: u64,
        /// Observed execution latency.
        latency: SimDuration,
    },
    /// All replicas of a stage finished.
    StageDone {
        /// Stage.
        stage: StageId,
        /// Instance number.
        instance: u64,
    },
    /// An instance completed end-to-end.
    InstanceDone {
        /// Instance number.
        instance: u64,
        /// End-to-end latency.
        latency: SimDuration,
        /// Whether the deadline was missed.
        missed: bool,
    },
    /// A placement change took effect.
    Placement {
        /// Stage whose replica set changed.
        stage: StageId,
        /// New replica nodes.
        nodes: Vec<NodeId>,
    },
    /// A node failed (fault injection).
    NodeFailed {
        /// The failed node.
        node: NodeId,
    },
    /// A crashed node came back online (cold caches, empty queues).
    NodeRestarted {
        /// The restarted node.
        node: NodeId,
    },
    /// A message was lost for good: delivered to a dead node with no
    /// retransmission pending, purged when its sender crashed, or
    /// abandoned after the retransmit budget ran out.
    MessageLost {
        /// Id of the original send.
        msg: MsgId,
        /// Intended destination.
        dst: NodeId,
    },
    /// The lossy bus corrupted a message after it burned its wire time.
    MessageDropped {
        /// Id of the original send.
        msg: MsgId,
    },
    /// The bus delivered a spurious duplicate of a message.
    MessageDuplicated {
        /// Id of the original send.
        msg: MsgId,
    },
    /// A sender timed out waiting for delivery and retransmitted.
    Retransmit {
        /// Id of the original send.
        msg: MsgId,
        /// Retransmission attempt number (1-based).
        attempt: u32,
    },
}

impl TraceEvent {
    /// True for events that witness a failure or a lost deadline: sheds,
    /// missed instances, node failures/restarts, and terminal message
    /// losses. These are what post-mortems and tests care most about, so
    /// a full [`TraceSink`] keeps them even past its capacity.
    /// `Retransmit` and `MessageDuplicated` are *recovered* anomalies and
    /// deliberately excluded — under a lossy bus they are high-volume and
    /// would defeat the bound.
    pub fn is_failure_class(&self) -> bool {
        matches!(
            self,
            TraceEvent::Shed { .. }
                | TraceEvent::InstanceDone { missed: true, .. }
                | TraceEvent::NodeFailed { .. }
                | TraceEvent::NodeRestarted { .. }
                | TraceEvent::MessageLost { .. }
                | TraceEvent::MessageDropped { .. }
        )
    }
}

/// A bounded in-memory trace sink.
///
/// Once `capacity` ordinary events have been recorded, further ordinary
/// events are counted in [`TraceSink::dropped`] and discarded — newest
/// first, since the buffer fills front-to-back. Failure-class events
/// ([`TraceEvent::is_failure_class`]) are exempt from the bound: a crash
/// or deadline miss at the end of a long run must not vanish because the
/// buffer filled with routine releases hours earlier. Failure events are
/// rare by nature (bounded by fault-plan entries and released instances,
/// not by simulated time), so the memory bound stays effective.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: Vec<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` ordinary events; further
    /// ordinary events are counted but dropped (the run never OOMs
    /// because of tracing). Failure-class events are always retained.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity trace sink");
        TraceSink {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event at `now`.
    pub fn record(&mut self, now: SimTime, event: TraceEvent) {
        if self.events.len() < self.capacity || event.is_failure_class() {
            self.events.push((now, event));
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of events dropped after the sink filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events matching a predicate.
    pub fn filtered<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (SimTime, TraceEvent)> + 'a {
        self.events.iter().filter(move |(_, e)| pred(e))
    }

    /// Renders a human-readable log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, e) in &self.events {
            let _ = match e {
                TraceEvent::Release { instance, tracks } => {
                    writeln!(out, "{t} release   #{instance} tracks={tracks}")
                }
                TraceEvent::Shed { instance } => writeln!(out, "{t} SHED      #{instance}"),
                TraceEvent::ReplicaDone {
                    stage,
                    replica,
                    instance,
                    latency,
                } => writeln!(out, "{t} replica   {stage}[{replica}] #{instance} {latency}"),
                TraceEvent::StageDone { stage, instance } => {
                    writeln!(out, "{t} stage     {stage} #{instance}")
                }
                TraceEvent::InstanceDone {
                    instance,
                    latency,
                    missed,
                } => writeln!(
                    out,
                    "{t} done      #{instance} {latency}{}",
                    if *missed { " MISSED" } else { "" }
                ),
                TraceEvent::Placement { stage, nodes } => {
                    writeln!(out, "{t} placement {stage} -> {nodes:?}")
                }
                TraceEvent::NodeFailed { node } => writeln!(out, "{t} FAILURE   {node}"),
                TraceEvent::NodeRestarted { node } => writeln!(out, "{t} RESTART   {node}"),
                TraceEvent::MessageLost { msg, dst } => {
                    writeln!(out, "{t} MSG-LOST  {msg} -> {dst}")
                }
                TraceEvent::MessageDropped { msg } => writeln!(out, "{t} MSG-DROP  {msg}"),
                TraceEvent::MessageDuplicated { msg } => writeln!(out, "{t} MSG-DUP   {msg}"),
                TraceEvent::Retransmit { msg, attempt } => {
                    writeln!(out, "{t} RETX      {msg} attempt={attempt}")
                }
            };
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} further events dropped)", self.dropped);
        }
        out
    }
}

/// The bounded trace sink is one concrete [`crate::sink::EventSink`];
/// the JSONL writer in the same module is another.
impl crate::sink::EventSink<TraceEvent> for TraceSink {
    fn record(&mut self, now: SimTime, event: TraceEvent) {
        TraceSink::record(self, now, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SubtaskIdx, TaskId};

    fn stage() -> StageId {
        StageId::new(TaskId(0), SubtaskIdx(2))
    }

    #[test]
    fn records_in_order() {
        let mut s = TraceSink::bounded(10);
        s.record(SimTime::from_millis(1), TraceEvent::Release { instance: 0, tracks: 7 });
        s.record(
            SimTime::from_millis(2),
            TraceEvent::StageDone { stage: stage(), instance: 0 },
        );
        assert_eq!(s.events().len(), 2);
        assert!(s.events()[0].0 < s.events()[1].0);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn bounded_sink_drops_overflow_without_losing_count() {
        let mut s = TraceSink::bounded(2);
        for i in 0..5 {
            s.record(SimTime::from_millis(i), TraceEvent::Release { instance: i, tracks: 1 });
        }
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.dropped(), 3);
        assert!(s.render().contains("3 further events dropped"));
    }

    #[test]
    fn full_sink_still_retains_failure_class_events() {
        // Regression: a full sink used to drop the *newest* events
        // unconditionally, so end-of-run failures — exactly what
        // post-mortems need — vanished first.
        let mut s = TraceSink::bounded(2);
        for i in 0..4 {
            s.record(SimTime::from_millis(i), TraceEvent::Release { instance: i, tracks: 1 });
        }
        s.record(SimTime::from_millis(10), TraceEvent::NodeFailed { node: NodeId(3) });
        s.record(SimTime::from_millis(11), TraceEvent::Shed { instance: 9 });
        s.record(
            SimTime::from_millis(12),
            TraceEvent::MessageLost { msg: MsgId(5), dst: NodeId(3) },
        );
        s.record(
            SimTime::from_millis(13),
            TraceEvent::InstanceDone {
                instance: 9,
                latency: SimDuration::from_millis(999),
                missed: true,
            },
        );
        // Recovered anomalies and routine events still respect the bound.
        s.record(SimTime::from_millis(14), TraceEvent::Retransmit { msg: MsgId(6), attempt: 1 });
        s.record(SimTime::from_millis(15), TraceEvent::Release { instance: 10, tracks: 1 });

        let kept: Vec<&TraceEvent> = s.events().iter().map(|(_, e)| e).collect();
        assert_eq!(kept.len(), 6, "2 ordinary + 4 failure-class:\n{}", s.render());
        assert!(kept.iter().filter(|e| e.is_failure_class()).count() == 4);
        assert_eq!(s.dropped(), 4); // 2 overflow releases + retransmit + last release
    }

    #[test]
    fn filtered_selects_matching_kinds() {
        let mut s = TraceSink::bounded(16);
        s.record(SimTime::ZERO, TraceEvent::Release { instance: 0, tracks: 1 });
        s.record(SimTime::ZERO, TraceEvent::NodeFailed { node: NodeId(3) });
        s.record(SimTime::ZERO, TraceEvent::Release { instance: 1, tracks: 2 });
        let releases: Vec<_> = s
            .filtered(|e| matches!(e, TraceEvent::Release { .. }))
            .collect();
        assert_eq!(releases.len(), 2);
    }

    #[test]
    fn render_is_line_oriented_and_labeled() {
        let mut s = TraceSink::bounded(8);
        s.record(
            SimTime::from_millis(5),
            TraceEvent::InstanceDone {
                instance: 3,
                latency: SimDuration::from_millis(700),
                missed: true,
            },
        );
        s.record(
            SimTime::from_millis(6),
            TraceEvent::Placement {
                stage: stage(),
                nodes: vec![NodeId(2), NodeId(5)],
            },
        );
        let r = s.render();
        assert!(r.contains("MISSED"));
        assert!(r.contains("placement"));
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceSink::bounded(0);
    }

    #[test]
    fn failure_realism_events_render_distinctly() {
        let mut s = TraceSink::bounded(8);
        s.record(SimTime::ZERO, TraceEvent::NodeRestarted { node: NodeId(2) });
        s.record(SimTime::ZERO, TraceEvent::MessageLost { msg: MsgId(7), dst: NodeId(1) });
        s.record(SimTime::ZERO, TraceEvent::MessageDropped { msg: MsgId(8) });
        s.record(SimTime::ZERO, TraceEvent::MessageDuplicated { msg: MsgId(9) });
        s.record(SimTime::ZERO, TraceEvent::Retransmit { msg: MsgId(7), attempt: 2 });
        let r = s.render();
        for needle in ["RESTART", "MSG-LOST", "MSG-DROP", "MSG-DUP", "RETX", "attempt=2"] {
            assert!(r.contains(needle), "missing {needle}:\n{r}");
        }
    }
}
