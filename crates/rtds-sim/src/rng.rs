//! Deterministic random-number support.
//!
//! The simulator is fully deterministic given a seed: every stochastic
//! component (background load, network jitter, clock drift) draws from a
//! [`SimRng`] derived from the run's master seed via a stable stream id, so
//! adding a new consumer of randomness does not perturb the draws seen by
//! existing ones.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG stream.
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates the stream `stream` of the run seeded by `master_seed`.
    ///
    /// Different `(master_seed, stream)` pairs produce statistically
    /// independent sequences; the same pair always produces the same
    /// sequence.
    pub fn from_seed_stream(master_seed: u64, stream: u64) -> Self {
        // Mix the stream id into the 32-byte ChaCha seed. splitmix64-style
        // finalizer gives good avalanche between adjacent stream ids.
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut seed = [0u8; 32];
        let a = mix(master_seed ^ 0x9e37_79b9_7f4a_7c15);
        let b = mix(a ^ stream);
        let c = mix(b.wrapping_add(0x6a09_e667_f3bc_c909));
        let d = mix(c ^ stream.rotate_left(17));
        seed[0..8].copy_from_slice(&a.to_le_bytes());
        seed[8..16].copy_from_slice(&b.to_le_bytes());
        seed[16..24].copy_from_slice(&c.to_le_bytes());
        seed[24..32].copy_from_slice(&d.to_le_bytes());
        SimRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }

    /// Exponentially-distributed draw with the given mean (inter-arrival
    /// times of a Poisson process).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "exponential mean must be positive");
        // Inverse CDF; clamp the uniform away from 0 to avoid inf.
        let u = self.uniform().max(1e-300);
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller, one value per call for simplicity —
    /// randomness here is never on a hot path).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "normal: negative sd");
        mean + sd * self.standard_normal()
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Raw 64-bit draw (for deriving child seeds).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_stream_reproduce_exactly() {
        let mut a = SimRng::from_seed_stream(42, 7);
        let mut b = SimRng::from_seed_stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::from_seed_stream(42, 0);
        let mut b = SimRng::from_seed_stream(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent streams should not collide");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed_stream(1, 0);
        let mut b = SimRng::from_seed_stream(2, 0);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut r = SimRng::from_seed_stream(3, 3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_handles_empty_range() {
        let mut r = SimRng::from_seed_stream(3, 3);
        assert_eq!(r.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_range(5.0, 4.0), 5.0);
        let x = r.uniform_range(2.0, 4.0);
        assert!((2.0..4.0).contains(&x));
    }

    #[test]
    fn exponential_has_roughly_correct_mean() {
        let mut r = SimRng::from_seed_stream(9, 1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "sample mean {mean}");
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut r = SimRng::from_seed_stream(9, 2);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn below_covers_domain() {
        let mut r = SimRng::from_seed_stream(11, 0);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed_stream(1, 1);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
