//! The simulation kernel: pure mechanics, no domain logic.
//!
//! [`SimKernel`] owns everything a deterministic discrete-event run needs
//! *regardless* of what is being simulated: the `(time, seq)`-ordered
//! [`EventQueue`], the [`ClockModel`], the seeded [`SimRng`] streams, the
//! [`LaneHeap`] carrying the virtual-lane fast path, the optional
//! [`TraceSink`] / [`PerfState`] observability hooks, the [`RunMetrics`]
//! accumulator, and the reusable scratch buffers of the hot paths.
//!
//! Domain behavior lives in the engine components
//! (`crate::engine::{DispatchEngine, NetEngine, FaultEngine, LoadEngine,
//! TaskTable}`), each of which mutates its own state and reaches the
//! shared mechanics only through an explicit `&mut SimKernel` parameter.
//! `Cluster` composes kernel + engines and runs the event loop; see
//! `docs/ARCHITECTURE.md` for the ownership map.
//!
//! Everything here is `pub(crate)`: the kernel is an internal seam, not
//! public API. The public surface is the `ClusterApi` trait.

use crate::clock::ClockModel;
use crate::cluster::ClusterConfig;
use crate::event::EventQueue;
use crate::ids::{MsgId, NodeId, TaskId};
use crate::lane::LaneHeap;
use crate::metrics::RunMetrics;
use crate::perf::PerfState;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceSink};

/// Events driving the simulation. Owned by the kernel (the queue is typed
/// over it); each variant is handled by the engine that owns its domain.
pub(crate) enum Ev {
    /// A new period of a task begins (data arrival).
    PeriodRelease {
        /// Task being released.
        task: TaskId,
        /// Period instance number.
        index: u64,
    },
    /// A node's CPU slice ends.
    Dispatch {
        /// The node whose slice ends.
        node: NodeId,
    },
    /// A background generator produces its next job.
    BgPoll {
        /// Generator index.
        gen: usize,
    },
    /// The message on the wire finishes transmitting.
    TxComplete,
    /// A message reaches its destination.
    Deliver {
        /// The in-flight message id.
        msg: MsgId,
    },
    /// Clock-synchronization round.
    ClockSync,
    /// Utilization sampling tick.
    Sample,
    /// Fault injection: a node dies permanently.
    NodeFail {
        /// The dying node.
        node: NodeId,
    },
    /// Fault injection: a node crashes (like `NodeFail`, but its in-flight
    /// bus traffic is torn down and it may restart later).
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// A crashed node comes back online with cold caches.
    NodeRestart {
        /// The restarting node.
        node: NodeId,
    },
    /// Sender-side retransmit timer for the original message `orig` fired.
    RetxTimeout {
        /// The original message id the timer guards.
        orig: MsgId,
    },
}

impl Ev {
    /// Index into [`crate::perf::PHASE_NAMES`] for the perf breakdown.
    pub(crate) fn kind_index(&self) -> usize {
        match self {
            Ev::PeriodRelease { .. } => 0,
            Ev::Dispatch { .. } => 1,
            Ev::BgPoll { .. } => 2,
            Ev::TxComplete => 3,
            Ev::Deliver { .. } => 4,
            Ev::ClockSync => 5,
            Ev::Sample => 6,
            Ev::NodeFail { .. } => 7,
            Ev::NodeCrash { .. } => 8,
            Ev::NodeRestart { .. } => 9,
            Ev::RetxTimeout { .. } => 10,
        }
    }
}

/// Reusable scratch buffers for the hot paths (dispatch fan-out and
/// message fan-out run once per stage per period). Taken with
/// `mem::take` for the duration of a call and restored afterwards so
/// their capacity persists and the steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Replica/source node list.
    pub nodes: Vec<NodeId>,
    /// Destination node list (message fan-out).
    pub nodes2: Vec<NodeId>,
    /// Per-replica track shares.
    pub shares: Vec<u64>,
}

/// The pure simulation substrate shared by every engine component.
pub(crate) struct SimKernel {
    /// Static configuration of the run.
    pub config: ClusterConfig,
    /// The global `(time, seq)`-ordered event queue.
    pub queue: EventQueue<Ev>,
    /// Per-node clock-skew model.
    pub clocks: ClockModel,
    /// Master RNG; all stochastic draws flow through here in a fixed
    /// program order (the byte-identity contract).
    pub rng: SimRng,
    /// Lazy min-heap over all virtual lanes (chains, polls, boundaries).
    pub lanes: LaneHeap,
    /// Optional structured trace.
    pub trace: Option<TraceSink>,
    /// Instrumentation, present only when `enable_perf` was called. The
    /// hot loop pays a single branch per event when this is `None`.
    pub perf: Option<Box<PerfState>>,
    /// Everything measured.
    pub metrics: RunMetrics,
    /// Reusable hot-path buffers.
    pub scratch: Scratch,
}

impl SimKernel {
    /// Builds the kernel for a validated config. Seeds the RNG and draws
    /// the clock model from it — the first and only construction-time
    /// draws, in the same order every run.
    pub(crate) fn new(config: ClusterConfig) -> Self {
        let mut rng = SimRng::from_seed_stream(config.seed, 0);
        let clocks = ClockModel::new(config.n_nodes, config.clock, &mut rng);
        SimKernel {
            config,
            queue: EventQueue::with_capacity(1024),
            clocks,
            rng,
            lanes: LaneHeap::default(),
            trace: None,
            perf: None,
            metrics: RunMetrics::default(),
            scratch: Scratch::default(),
        }
    }

    /// The last simulated instant of the run.
    #[inline]
    pub(crate) fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.config.horizon
    }

    /// Records a trace event if tracing is enabled.
    #[inline]
    pub(crate) fn record_trace(&mut self, now: SimTime, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(now, ev);
        }
    }
}
