//! Periodic pipeline tasks.
//!
//! A periodic task `T_i = [st_1, m_1, st_2, m_2, …, st_n, m_n]` (paper §3)
//! is a serial chain of subtasks connected by messages: subtask `st_k`
//! (k > 1) cannot execute before message `m_{k-1}` arrives. Subtasks can be
//! **replicated** at run time; the replicas split the period's data stream
//! and run concurrently on different processors (§3, item 6). This module
//! holds the static task description, the per-stage cost model, the current
//! replica placement `PS(st)`, and the in-flight state of period instances.

use std::sync::Arc;

use crate::hashing::FxHashMap;
use crate::ids::{MsgId, NodeId, StageId, SubtaskIdx, TaskId};
use crate::time::{SimDuration, SimTime};

/// Intrinsic CPU demand of one stage as a polynomial in the data size.
///
/// `demand_ms = quad·h² + lin·h + constant`, where `h` is the data size in
/// **hundreds of tracks** — the unit Eq. (3) uses. The quadratic term models
/// super-linear work such as pairwise correlation; it is what makes
/// replication effective (splitting a quadratic workload k ways costs each
/// replica 1/k² of the quadratic part).
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PolynomialCost {
    /// ms per (hundreds of tracks)².
    pub quad: f64,
    /// ms per hundreds of tracks.
    pub lin: f64,
    /// Fixed ms per activation.
    pub constant: f64,
}

impl PolynomialCost {
    /// Creates a cost model; all coefficients must be finite and the demand
    /// non-negative over the domain (enforced as all-non-negative here).
    pub fn new(quad: f64, lin: f64, constant: f64) -> Self {
        assert!(
            quad >= 0.0 && lin >= 0.0 && constant >= 0.0,
            "cost coefficients must be non-negative"
        );
        assert!(quad.is_finite() && lin.is_finite() && constant.is_finite());
        PolynomialCost { quad, lin, constant }
    }

    /// Purely linear cost.
    pub fn linear(lin: f64, constant: f64) -> Self {
        Self::new(0.0, lin, constant)
    }

    /// CPU demand for processing `tracks` data items.
    pub fn demand(&self, tracks: u64) -> SimDuration {
        let h = tracks as f64 / 100.0;
        SimDuration::from_millis_f64(self.quad * h * h + self.lin * h + self.constant)
    }
}

/// Static description of one pipeline stage (subtask).
#[derive(Debug, Clone)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct StageSpec {
    /// Human-readable name (e.g. "Filter").
    pub name: String,
    /// Intrinsic CPU cost.
    pub cost: PolynomialCost,
    /// Whether the resource manager may replicate this stage (§3 item 6;
    /// Table 1 says 2 of the 5 subtasks are replicable).
    pub replicable: bool,
    /// Original placement of the stage.
    pub home: NodeId,
    /// Bytes of output produced per input track, defining the size of the
    /// message to the next stage.
    pub output_bytes_per_track: f64,
}

/// Static description of a periodic task.
#[derive(Debug, Clone)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TaskSpec {
    /// Task id; must equal its index in the cluster's task table.
    pub id: TaskId,
    /// Human-readable name.
    pub name: String,
    /// Data arrival period `cy(T_i)` (Table 1: 1 s).
    pub period: SimDuration,
    /// Relative end-to-end deadline `dl(T_i)` (Table 1: 990 ms).
    pub deadline: SimDuration,
    /// Bytes per data item (Table 1: 80 B per track).
    pub track_bytes: u64,
    /// The serial chain of subtasks.
    pub stages: Vec<StageSpec>,
}

impl TaskSpec {
    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Indices of replicable stages.
    pub fn replicable_stages(&self) -> Vec<SubtaskIdx> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.replicable)
            .map(|(i, _)| SubtaskIdx::from_index(i))
            .collect()
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err(format!("task {}: no stages", self.id));
        }
        if self.period.is_zero() {
            return Err(format!("task {}: zero period", self.id));
        }
        if self.deadline.is_zero() {
            return Err(format!("task {}: zero deadline", self.id));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.home.index() >= n_nodes {
                return Err(format!(
                    "task {} stage {i}: home node {} out of range (cluster has {n_nodes})",
                    self.id, s.home
                ));
            }
            if !s.output_bytes_per_track.is_finite() || s.output_bytes_per_track < 0.0 {
                return Err(format!("task {} stage {i}: bad output_bytes_per_track", self.id));
            }
        }
        Ok(())
    }
}

/// Splits `tracks` data items as evenly as possible across `k` replicas
/// (paper: each replica processes `1/k` of the total data size).
pub fn split_tracks(tracks: u64, k: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k);
    split_tracks_into(tracks, k, &mut out);
    out
}

/// Allocation-free variant of [`split_tracks`]: clears `out` and fills it
/// with the per-replica shares, reusing its capacity. The dispatch hot path
/// calls this once per stage start with a scratch buffer.
pub fn split_tracks_into(tracks: u64, k: usize, out: &mut Vec<u64>) {
    assert!(k > 0, "split among zero replicas");
    let k64 = k as u64;
    let base = tracks / k64;
    let rem = (tracks % k64) as usize;
    out.clear();
    out.extend((0..k).map(|r| base + u64::from(r < rem)));
}

/// Progress of one stage within one period instance.
///
/// Between a predecessor with `k_src` replicas and this stage's `k_dst`
/// replicas, `max(k_src, k_dst)` messages carry the data stream (each
/// source replica ships its share; each destination replica may receive
/// several shares). A destination replica's CPU job is admitted once all
/// of its expected messages have arrived.
#[derive(Debug, Clone)]
pub struct StageProgress {
    /// When the stage's inputs were dispatched (predecessor completion, or
    /// instance release for the first stage).
    pub started: Option<SimTime>,
    /// When all replicas finished executing.
    pub completed: Option<SimTime>,
    /// Per-replica count of inbound messages still expected before the
    /// replica's job can start (0 for the first stage — fed by the sensor).
    pub msgs_expected: Vec<u32>,
    /// Per-replica count of inbound messages received so far.
    pub msgs_received: Vec<u32>,
    /// Per-replica tracks accumulated from received messages (for the
    /// first stage, the share assigned at release).
    pub tracks_in: Vec<u64>,
    /// Per-replica worst observed inbound message delay
    /// (buffer + transmission + propagation).
    pub msg_delay: Vec<Option<SimDuration>>,
    /// Per-replica observed execution latency (job release → completion).
    pub exec_latency: Vec<Option<SimDuration>>,
    /// Replicas whose CPU job has completed.
    pub done_replicas: u32,
    /// Per-replica origin ids of messages already counted, for suppressing
    /// spurious duplicates and late retransmissions on a lossy bus. Left
    /// empty (never pushed to) when the cluster runs without failure
    /// realism, so clean runs pay nothing.
    pub seen_origins: Vec<Vec<MsgId>>,
}

impl StageProgress {
    fn new(replicas: usize) -> Self {
        StageProgress {
            started: None,
            completed: None,
            msgs_expected: vec![0; replicas],
            msgs_received: vec![0; replicas],
            tracks_in: vec![0; replicas],
            msg_delay: vec![None; replicas],
            exec_latency: vec![None; replicas],
            done_replicas: 0,
            seen_origins: vec![Vec::new(); replicas],
        }
    }

    /// Worst observed inbound message delay across replicas, if all known.
    pub fn max_msg_delay(&self) -> Option<SimDuration> {
        self.msg_delay
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(SimDuration::ZERO))
    }

    /// Worst observed execution latency across replicas, if all known.
    pub fn max_exec_latency(&self) -> Option<SimDuration> {
        self.exec_latency
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(SimDuration::ZERO))
    }
}

/// One in-flight activation of a periodic task.
#[derive(Debug, Clone)]
pub struct InstanceState {
    /// Period instance number (0-based).
    pub instance: u64,
    /// Release (data arrival) time.
    pub released: SimTime,
    /// Data items arriving this period: `ds(T_i, c)`.
    pub tracks: u64,
    /// Placement frozen at release: replica nodes per stage. Shared with
    /// the task runtime's current placement (copy-on-write): releasing an
    /// instance clones only the `Arc`, and the runtime's copy diverges
    /// only when the controller actually re-places a stage.
    pub placement: Arc<Vec<Vec<NodeId>>>,
    /// Per-stage progress.
    pub stages: Vec<StageProgress>,
    /// Completion time of the last stage, once known.
    pub completed: Option<SimTime>,
    /// True if admission control shed this instance (released under
    /// overload and never executed; counts as a miss).
    pub shed: bool,
}

impl InstanceState {
    /// Creates a fresh instance with the given frozen placement.
    pub fn new(
        instance: u64,
        released: SimTime,
        tracks: u64,
        placement: Arc<Vec<Vec<NodeId>>>,
    ) -> Self {
        let stages = placement.iter().map(|p| StageProgress::new(p.len())).collect();
        InstanceState {
            instance,
            released,
            tracks,
            placement,
            stages,
            completed: None,
            shed: false,
        }
    }

    /// End-to-end latency, once complete.
    pub fn end_to_end(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.since(self.released))
    }

    /// Whether the instance missed the given relative deadline.
    pub fn missed(&self, deadline: SimDuration) -> bool {
        if self.shed {
            return true;
        }
        match self.end_to_end() {
            Some(l) => l > deadline,
            None => false, // still running; undecided
        }
    }
}

/// Run-time state of a periodic task: spec, current placement, in-flight
/// instances.
pub struct TaskRuntime {
    /// The static description.
    pub spec: TaskSpec,
    /// Current replica placement per stage: `PS(st_j)`, ordered with the
    /// original processor first. Changes take effect at the next release.
    /// Held behind an `Arc` so each release shares it with the new
    /// instance instead of deep-cloning; mutation copies on write.
    pub placement: Arc<Vec<Vec<NodeId>>>,
    /// In-flight instances by instance number.
    pub instances: FxHashMap<u64, InstanceState>,
    /// Most recent workload (`ds` of the latest released instance).
    pub last_tracks: u64,
}

impl TaskRuntime {
    /// Creates the runtime with every stage placed singly on its home node.
    pub fn new(spec: TaskSpec) -> Self {
        let placement = Arc::new(spec.stages.iter().map(|s| vec![s.home]).collect());
        TaskRuntime {
            spec,
            placement,
            instances: FxHashMap::default(),
            last_tracks: 0,
        }
    }

    /// Replica count per stage under the current placement.
    pub fn replica_counts(&self) -> Vec<u32> {
        self.placement.iter().map(|p| p.len() as u32).collect()
    }

    /// Sets the placement of one stage. Invalid requests are rejected with
    /// a reason (the cluster logs and ignores them, mirroring a resource
    /// manager whose action failed).
    pub fn set_placement(
        &mut self,
        stage: SubtaskIdx,
        nodes: Vec<NodeId>,
        n_cluster_nodes: usize,
    ) -> Result<(), String> {
        let idx = stage.index();
        let Some(spec) = self.spec.stages.get(idx) else {
            return Err(format!("stage {stage} out of range"));
        };
        if nodes.is_empty() {
            return Err(format!("stage {stage}: empty placement"));
        }
        if !spec.replicable && nodes.len() > 1 {
            return Err(format!("stage {stage} ({}) is not replicable", spec.name));
        }
        for (i, n) in nodes.iter().enumerate() {
            if n.index() >= n_cluster_nodes {
                return Err(format!("stage {stage}: node {n} out of range"));
            }
            // Replica lists are tiny (a handful of nodes); a quadratic scan
            // beats allocating a set here.
            if nodes[..i].contains(n) {
                return Err(format!("stage {stage}: duplicate node {n}"));
            }
        }
        // Copy-on-write: in-flight instances sharing this placement keep
        // their frozen copy; only the runtime's view advances.
        Arc::make_mut(&mut self.placement)[idx] = nodes;
        Ok(())
    }

    /// Stage id helper.
    pub fn stage_id(&self, stage: SubtaskIdx) -> StageId {
        StageId::new(self.spec.id, stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            id: TaskId(0),
            name: "t".into(),
            period: SimDuration::from_secs(1),
            deadline: SimDuration::from_millis(990),
            track_bytes: 80,
            stages: vec![
                StageSpec {
                    name: "a".into(),
                    cost: PolynomialCost::linear(1.0, 0.5),
                    replicable: false,
                    home: NodeId(0),
                    output_bytes_per_track: 80.0,
                },
                StageSpec {
                    name: "b".into(),
                    cost: PolynomialCost::new(0.01, 1.0, 0.0),
                    replicable: true,
                    home: NodeId(1),
                    output_bytes_per_track: 40.0,
                },
            ],
        }
    }

    #[test]
    fn polynomial_cost_evaluates_in_hundreds_of_tracks() {
        let c = PolynomialCost::new(2.0, 3.0, 5.0);
        // 250 tracks = 2.5 hundreds: 2*6.25 + 3*2.5 + 5 = 25 ms.
        assert_eq!(c.demand(250), SimDuration::from_millis(25));
        assert_eq!(c.demand(0), SimDuration::from_millis(5));
    }

    #[test]
    fn linear_cost_has_no_quadratic_term() {
        let c = PolynomialCost::linear(2.0, 0.0);
        assert_eq!(c.demand(100), SimDuration::from_millis(2));
        assert_eq!(c.demand(200), SimDuration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coefficients_rejected() {
        let _ = PolynomialCost::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn split_tracks_is_even_and_exhaustive() {
        assert_eq!(split_tracks(10, 3), vec![4, 3, 3]);
        assert_eq!(split_tracks(9, 3), vec![3, 3, 3]);
        assert_eq!(split_tracks(2, 3), vec![1, 1, 0]);
        assert_eq!(split_tracks(0, 2), vec![0, 0]);
        for (t, k) in [(1000u64, 7usize), (17, 4), (5, 5)] {
            let s = split_tracks(t, k);
            assert_eq!(s.iter().sum::<u64>(), t);
            let max = *s.iter().max().unwrap();
            let min = *s.iter().min().unwrap();
            assert!(max - min <= 1, "shares unbalanced: {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn split_among_zero_replicas_panics() {
        split_tracks(5, 0);
    }

    #[test]
    fn split_tracks_into_overwrites_stale_buffer_contents() {
        let mut buf = vec![9, 9, 9, 9, 9];
        split_tracks_into(10, 3, &mut buf);
        assert_eq!(buf, vec![4, 3, 3]);
        split_tracks_into(7, 2, &mut buf);
        assert_eq!(buf, vec![4, 3]);
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut s = spec();
        assert!(s.validate(6).is_ok());
        s.stages[1].home = NodeId(9);
        assert!(s.validate(6).unwrap_err().contains("out of range"));
        let mut s2 = spec();
        s2.stages.clear();
        assert!(s2.validate(6).unwrap_err().contains("no stages"));
    }

    #[test]
    fn replicable_stage_listing() {
        assert_eq!(spec().replicable_stages(), vec![SubtaskIdx(1)]);
    }

    #[test]
    fn runtime_starts_with_home_placement() {
        let rt = TaskRuntime::new(spec());
        assert_eq!(*rt.placement, vec![vec![NodeId(0)], vec![NodeId(1)]]);
        assert_eq!(rt.replica_counts(), vec![1, 1]);
    }

    #[test]
    fn set_placement_enforces_replicability_and_validity() {
        let mut rt = TaskRuntime::new(spec());
        // Non-replicable stage cannot get 2 replicas.
        let err = rt
            .set_placement(SubtaskIdx(0), vec![NodeId(0), NodeId(1)], 6)
            .unwrap_err();
        assert!(err.contains("not replicable"));
        // Replicable stage can.
        rt.set_placement(SubtaskIdx(1), vec![NodeId(1), NodeId(3)], 6)
            .unwrap();
        assert_eq!(rt.replica_counts(), vec![1, 2]);
        // Duplicates rejected.
        assert!(rt
            .set_placement(SubtaskIdx(1), vec![NodeId(2), NodeId(2)], 6)
            .is_err());
        // Out-of-range node rejected.
        assert!(rt
            .set_placement(SubtaskIdx(1), vec![NodeId(7)], 6)
            .is_err());
        // Empty rejected.
        assert!(rt.set_placement(SubtaskIdx(1), vec![], 6).is_err());
        // Out-of-range stage rejected.
        assert!(rt.set_placement(SubtaskIdx(5), vec![NodeId(0)], 6).is_err());
    }

    #[test]
    fn set_placement_is_copy_on_write_for_shared_instances() {
        let mut rt = TaskRuntime::new(spec());
        // An in-flight instance shares the runtime's placement Arc.
        let inst = InstanceState::new(0, SimTime::ZERO, 10, Arc::clone(&rt.placement));
        rt.set_placement(SubtaskIdx(1), vec![NodeId(1), NodeId(3)], 6)
            .unwrap();
        // The instance's frozen view is untouched; the runtime diverged.
        assert_eq!(inst.placement[1], vec![NodeId(1)]);
        assert_eq!(rt.placement[1], vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn instance_deadline_accounting() {
        let mut inst = InstanceState::new(
            3,
            SimTime::from_secs(3),
            500,
            Arc::new(vec![vec![NodeId(0)], vec![NodeId(1)]]),
        );
        assert!(!inst.missed(SimDuration::from_millis(990)));
        inst.completed = Some(SimTime::from_secs(3) + SimDuration::from_millis(1000));
        assert_eq!(inst.end_to_end(), Some(SimDuration::from_millis(1000)));
        assert!(inst.missed(SimDuration::from_millis(990)));
        assert!(!inst.missed(SimDuration::from_millis(1200)));
    }

    #[test]
    fn shed_instances_always_count_as_missed() {
        let mut inst = InstanceState::new(0, SimTime::ZERO, 10, Arc::new(vec![vec![NodeId(0)]]));
        inst.shed = true;
        assert!(inst.missed(SimDuration::from_secs(10)));
    }

    #[test]
    fn stage_progress_aggregates_worst_replica() {
        let mut p = StageProgress::new(2);
        assert_eq!(p.max_exec_latency(), None);
        p.exec_latency[0] = Some(SimDuration::from_millis(5));
        assert_eq!(p.max_exec_latency(), None, "one replica still unknown");
        p.exec_latency[1] = Some(SimDuration::from_millis(9));
        assert_eq!(p.max_exec_latency(), Some(SimDuration::from_millis(9)));
        p.msg_delay = vec![Some(SimDuration::from_millis(1)), Some(SimDuration::from_millis(3))];
        assert_eq!(p.max_msg_delay(), Some(SimDuration::from_millis(3)));
    }
}
