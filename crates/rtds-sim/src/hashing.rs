//! Deterministic, fast hashing for simulator-internal maps.
//!
//! The standard library's default hasher is SipHash with a per-process
//! random key — robust against adversarial keys, but measurably slow on
//! the small integer keys (job ids, message ids, instance numbers) the
//! hot simulation loop indexes by, and randomly seeded, so map iteration
//! order differs between runs. The simulator never hashes untrusted
//! input, so we use the Fx multiply-xor hash (the rustc-internal scheme):
//! a few cycles per key, and identical across runs, which keeps every
//! map's iteration order reproducible too.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx hash state: one 64-bit accumulator folded by multiply-xor.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// 64-bit Fx multiplier (golden-ratio derived, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed with the deterministic Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with the deterministic Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        let h = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut m = FxHashMap::default();
            for i in 0..1000u64 {
                m.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(a.finish(), c.finish());
    }
}
