//! Lazy min-heap over the engine's *virtual* event lanes.
//!
//! PR 1 introduced one virtual lane — the per-node dispatch chain — and
//! found its minimum by scanning `chains` on every loop iteration. That
//! scan is O(n_nodes) per event, which is invisible at the paper's 6
//! nodes but dominates at the large-cluster scales the background-load
//! fast path targets (64 nodes × one poll lane per generator). The
//! [`LaneHeap`] replaces the scan: every lane key change pushes a heap
//! entry, and stale entries (the lane was re-keyed, retired, or fired)
//! are detected on peek by comparing sequence numbers — seqs are unique
//! for the lifetime of a run, so `entry.seq == lane.seq` iff the entry
//! is current.
//!
//! Stale entries only arise when a lane is cancelled or re-keyed out of
//! band (chain truncation, boundary materialization, generator
//! dormancy), all of which are rare mode transitions; the common path
//! (arm → fire) pushes exactly one entry and pops it once.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which virtual lane an entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum LaneRef {
    /// `DispatchEngine::chains[i]`: the elided quantum chain of a lone
    /// job.
    Chain(u32),
    /// `LoadEngine::polls[g]`: the elided next poll of a background
    /// generator (fast path only).
    Poll(u32),
    /// `DispatchEngine::bg_bounds[i]`: the elided dispatch boundary of a
    /// node running only background work (fast path only).
    Bound(u32),
}

/// One pending lane key. Ordered by `(at, seq)` like the real event
/// queue; `lane` never participates in ordering because seqs are unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct LaneEntry {
    /// When the lane fires.
    pub at: SimTime,
    /// The event-queue sequence number reserved for this firing.
    pub seq: u64,
    /// The lane that owns this key.
    pub lane: LaneRef,
}

/// Min-heap of lane keys with lazy invalidation (see module docs).
#[derive(Debug, Default)]
pub(crate) struct LaneHeap {
    heap: BinaryHeap<Reverse<LaneEntry>>,
}

impl LaneHeap {
    /// Registers a lane's (new) key. Any previous entry for the same
    /// lane becomes stale and is dropped on a later peek.
    #[inline]
    pub fn push(&mut self, at: SimTime, seq: u64, lane: LaneRef) {
        self.heap.push(Reverse(LaneEntry { at, seq, lane }));
    }

    /// The earliest entry, without validation. The caller checks it
    /// against the owning lane's current state and calls
    /// [`Self::pop`] either to discard it as stale or to consume it.
    #[inline]
    pub fn peek(&self) -> Option<LaneEntry> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Removes the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<LaneEntry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Replaces the earliest entry's key in place — one sift instead of
    /// a pop + push pair. This is the self-reschedule shape of the two
    /// hottest lanes (an intermediate chain link arming the next link, a
    /// poll arming the next poll): the fired entry is still at the top —
    /// anything the handler pushed is strictly later — so it can be
    /// overwritten rather than removed and re-inserted.
    ///
    /// # Panics
    /// Panics if the heap is empty. Debug-asserts that the displaced top
    /// is `lane` under its previous key (`prev_seq`) and that the new
    /// key does not precede it, both of which the rekey shape implies.
    #[inline]
    pub fn rekey_top(&mut self, prev_seq: u64, at: SimTime, seq: u64, lane: LaneRef) {
        let mut top = self.heap.peek_mut().expect("rekey_top on empty lane heap");
        debug_assert_eq!(
            (top.0.seq, top.0.lane),
            (prev_seq, lane),
            "rekey_top displaced a live entry of another lane"
        );
        debug_assert!((at, seq) >= (top.0.at, top.0.seq), "rekey moved a lane backwards");
        top.0 = LaneEntry { at, seq, lane };
        // Dropping the PeekMut sifts the rewritten entry into place.
    }

    /// The smallest key among every entry *except* the top. In a binary
    /// min-heap the runner-up is one of the root's two children, so this
    /// is two slice reads. The result may belong to a stale entry, whose
    /// key can only be older (smaller) than its lane's live key — safe
    /// for bounding a burst of top-lane self-reschedules, which stops at
    /// the bound rather than relying on it being live.
    #[inline]
    pub fn runner_up(&self) -> Option<(SimTime, u64)> {
        let s = self.heap.as_slice();
        match (s.get(1), s.get(2)) {
            (Some(Reverse(a)), Some(Reverse(b))) => Some((a.at, a.seq).min((b.at, b.seq))),
            (Some(Reverse(a)), None) => Some((a.at, a.seq)),
            _ => None,
        }
    }

    /// Number of entries, counting stale ones.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut h = LaneHeap::default();
        h.push(t(5), 10, LaneRef::Chain(0));
        h.push(t(3), 99, LaneRef::Poll(1));
        h.push(t(3), 7, LaneRef::Bound(2));
        assert_eq!(h.pop().unwrap().lane, LaneRef::Bound(2));
        assert_eq!(h.pop().unwrap().lane, LaneRef::Poll(1));
        assert_eq!(h.pop().unwrap().lane, LaneRef::Chain(0));
        assert!(h.pop().is_none());
    }

    #[test]
    fn runner_up_is_the_second_smallest_key() {
        let mut h = LaneHeap::default();
        assert_eq!(h.runner_up(), None);
        h.push(t(5), 3, LaneRef::Chain(0));
        assert_eq!(h.runner_up(), None, "lone entry has no runner-up");
        h.push(t(2), 9, LaneRef::Poll(1));
        assert_eq!(h.runner_up(), Some((t(5), 3)));
        h.push(t(3), 4, LaneRef::Bound(2));
        assert_eq!(h.runner_up(), Some((t(3), 4)));
        h.pop();
        assert_eq!(h.runner_up(), Some((t(5), 3)));
    }

    #[test]
    fn rekey_top_replaces_without_growing_the_heap() {
        let mut h = LaneHeap::default();
        h.push(t(1), 0, LaneRef::Poll(0));
        h.push(t(5), 1, LaneRef::Chain(1));
        // Poll 0 fires at t=1 and re-arms itself at t=8: same heap slot,
        // new key, no stale residue.
        h.rekey_top(0, t(8), 2, LaneRef::Poll(0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.pop().unwrap().lane, LaneRef::Chain(1));
        let e = h.pop().unwrap();
        assert_eq!((e.at, e.seq, e.lane), (t(8), 2, LaneRef::Poll(0)));
    }

    #[test]
    fn rekeyed_lane_leaves_a_stale_entry_behind() {
        let mut h = LaneHeap::default();
        h.push(t(4), 1, LaneRef::Poll(0));
        // Lane 0 is re-keyed: seq 1 is now stale, seq 2 is current.
        h.push(t(2), 2, LaneRef::Poll(0));
        assert_eq!(h.len(), 2);
        let head = h.peek().unwrap();
        assert_eq!((head.at, head.seq), (t(2), 2));
        h.pop();
        // The stale entry surfaces next; a caller comparing seqs against
        // the lane's current key would discard it.
        assert_eq!(h.pop().unwrap().seq, 1);
    }
}
