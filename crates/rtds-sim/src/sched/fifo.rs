//! FIFO run-to-completion scheduling (ablation policy).

use std::collections::VecDeque;

use super::CpuScheduler;
use crate::ids::JobId;
use crate::time::SimDuration;

/// First-in-first-out, non-preemptive queue: each job runs to completion.
///
/// Under FIFO, a stage job's latency depends on the queue it happens to land
/// behind rather than on time-averaged utilization, so the Eq. (3) fit is
/// noticeably worse — a useful ablation of the paper's assumption that
/// utilization summarizes contention.
pub struct Fifo {
    queue: VecDeque<JobId>,
}

impl Fifo {
    /// Creates an empty FIFO queue.
    pub fn new() -> Self {
        Fifo {
            queue: VecDeque::new(),
        }
    }
}

impl Default for Fifo {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuScheduler for Fifo {
    fn enqueue(&mut self, job: JobId, _priority: u8) {
        self.queue.push_back(job);
    }

    fn pick(&mut self) -> Option<JobId> {
        self.queue.pop_front()
    }

    fn requeue(&mut self, job: JobId, _priority: u8) {
        // Run-to-completion: requeue only happens if the engine imposed an
        // external interruption; preserve position at the head.
        self.queue.push_front(job);
    }

    fn quantum(&self) -> Option<SimDuration> {
        None
    }

    fn ready_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_fifo_order() {
        let mut s = Fifo::new();
        for i in 0..5 {
            s.enqueue(JobId(i), 0);
        }
        for i in 0..5 {
            assert_eq!(s.pick(), Some(JobId(i)));
        }
        assert_eq!(s.pick(), None);
    }

    #[test]
    fn run_to_completion_has_no_quantum() {
        assert_eq!(Fifo::new().quantum(), None);
    }

    #[test]
    fn requeue_preserves_head_position() {
        let mut s = Fifo::new();
        s.enqueue(JobId(1), 0);
        s.enqueue(JobId(2), 0);
        let j = s.pick().unwrap();
        s.requeue(j, 0);
        assert_eq!(s.pick(), Some(JobId(1)), "interrupted job resumes first");
    }
}
