//! Round-robin scheduling (the paper's baseline policy, Table 1).

use std::collections::VecDeque;

use super::CpuScheduler;
use crate::ids::JobId;
use crate::time::SimDuration;

/// Round-robin ready queue with a fixed time slice.
///
/// New arrivals join the tail; a job whose quantum expires also rejoins the
/// tail, so CPU time is shared approximately equally among ready jobs. With
/// `n` ready jobs a job with service demand `s` observes a response time of
/// roughly `n·s` — this is the contention the paper's Eq. (3) regression
/// captures as a function of CPU utilization.
pub struct RoundRobin {
    queue: VecDeque<JobId>,
    quantum: SimDuration,
}

impl RoundRobin {
    /// Creates a round-robin queue with the given time slice.
    ///
    /// # Panics
    /// Panics if `quantum` is zero (a zero slice would live-lock dispatch).
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "round-robin quantum must be positive");
        RoundRobin {
            queue: VecDeque::new(),
            quantum,
        }
    }
}

impl CpuScheduler for RoundRobin {
    fn enqueue(&mut self, job: JobId, _priority: u8) {
        self.queue.push_back(job);
    }

    fn pick(&mut self) -> Option<JobId> {
        self.queue.pop_front()
    }

    fn requeue(&mut self, job: JobId, _priority: u8) {
        self.queue.push_back(job);
    }

    fn quantum(&self) -> Option<SimDuration> {
        Some(self.quantum)
    }

    fn ready_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr() -> RoundRobin {
        RoundRobin::new(SimDuration::from_millis(1))
    }

    #[test]
    fn serves_in_arrival_order_initially() {
        let mut s = rr();
        s.enqueue(JobId(1), 0);
        s.enqueue(JobId(2), 0);
        s.enqueue(JobId(3), 0);
        assert_eq!(s.pick(), Some(JobId(1)));
        assert_eq!(s.pick(), Some(JobId(2)));
        assert_eq!(s.pick(), Some(JobId(3)));
        assert_eq!(s.pick(), None);
    }

    #[test]
    fn requeue_rotates_to_tail() {
        let mut s = rr();
        s.enqueue(JobId(1), 0);
        s.enqueue(JobId(2), 0);
        let first = s.pick().unwrap();
        s.requeue(first, 0);
        // 2 now precedes 1.
        assert_eq!(s.pick(), Some(JobId(2)));
        assert_eq!(s.pick(), Some(JobId(1)));
    }

    #[test]
    fn rotation_is_fair_over_many_rounds() {
        let mut s = rr();
        for i in 0..4 {
            s.enqueue(JobId(i), 0);
        }
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            let j = s.pick().unwrap();
            counts[j.0 as usize] += 1;
            s.requeue(j, 0);
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn ready_len_tracks_membership() {
        let mut s = rr();
        assert!(s.is_idle());
        s.enqueue(JobId(0), 0);
        assert_eq!(s.ready_len(), 1);
        s.pick();
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let _ = RoundRobin::new(SimDuration::ZERO);
    }
}
