//! Static-priority scheduling (ablation policy).

use std::collections::{BTreeMap, VecDeque};

use super::CpuScheduler;
use crate::ids::JobId;
use crate::time::SimDuration;

/// Non-preemptive static priority with optional round-robin within a level.
///
/// Lower priority numbers are served first. With a quantum set, jobs at the
/// same level time-share round-robin style; without one, each job runs to
/// completion. Useful for studying how the predictive algorithm behaves
/// when application stages are shielded from background load (give stages
/// priority 0 and background priority 1): contention collapses and the
/// fitted Eq. (3) `u` terms flatten.
pub struct StaticPriority {
    levels: BTreeMap<u8, VecDeque<JobId>>,
    quantum: Option<SimDuration>,
    len: usize,
}

impl StaticPriority {
    /// Creates the scheduler; `quantum` enables intra-level time slicing.
    pub fn new(quantum: Option<SimDuration>) -> Self {
        if let Some(q) = quantum {
            assert!(!q.is_zero(), "priority quantum must be positive if set");
        }
        StaticPriority {
            levels: BTreeMap::new(),
            quantum,
            len: 0,
        }
    }
}

impl CpuScheduler for StaticPriority {
    fn enqueue(&mut self, job: JobId, priority: u8) {
        self.levels.entry(priority).or_default().push_back(job);
        self.len += 1;
    }

    fn pick(&mut self) -> Option<JobId> {
        let (&prio, _) = self.levels.iter().find(|(_, q)| !q.is_empty())?;
        let q = self.levels.get_mut(&prio).expect("level exists");
        let job = q.pop_front();
        if job.is_some() {
            self.len -= 1;
        }
        if q.is_empty() {
            self.levels.remove(&prio);
        }
        job
    }

    fn requeue(&mut self, job: JobId, priority: u8) {
        // Quantum expiry within a level rotates to the level's tail.
        self.enqueue(job, priority);
    }

    fn quantum(&self) -> Option<SimDuration> {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "static-priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_number_served_first() {
        let mut s = StaticPriority::new(None);
        s.enqueue(JobId(10), 2);
        s.enqueue(JobId(20), 0);
        s.enqueue(JobId(30), 1);
        assert_eq!(s.pick(), Some(JobId(20)));
        assert_eq!(s.pick(), Some(JobId(30)));
        assert_eq!(s.pick(), Some(JobId(10)));
    }

    #[test]
    fn fifo_within_a_level() {
        let mut s = StaticPriority::new(None);
        s.enqueue(JobId(1), 1);
        s.enqueue(JobId(2), 1);
        s.enqueue(JobId(3), 1);
        assert_eq!(s.pick(), Some(JobId(1)));
        assert_eq!(s.pick(), Some(JobId(2)));
        assert_eq!(s.pick(), Some(JobId(3)));
    }

    #[test]
    fn requeue_rotates_within_level() {
        let mut s = StaticPriority::new(Some(SimDuration::from_millis(1)));
        s.enqueue(JobId(1), 1);
        s.enqueue(JobId(2), 1);
        let j = s.pick().unwrap();
        s.requeue(j, 1);
        assert_eq!(s.pick(), Some(JobId(2)));
    }

    #[test]
    fn high_priority_arrival_wins_next_pick() {
        let mut s = StaticPriority::new(None);
        s.enqueue(JobId(1), 5);
        s.enqueue(JobId(2), 5);
        s.pick();
        s.enqueue(JobId(3), 0);
        assert_eq!(s.pick(), Some(JobId(3)), "urgent job jumps the queue");
    }

    #[test]
    fn len_is_maintained_across_levels() {
        let mut s = StaticPriority::new(None);
        assert!(s.is_idle());
        s.enqueue(JobId(1), 0);
        s.enqueue(JobId(2), 7);
        assert_eq!(s.ready_len(), 2);
        s.pick();
        assert_eq!(s.ready_len(), 1);
        s.pick();
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let _ = StaticPriority::new(Some(SimDuration::ZERO));
    }
}
