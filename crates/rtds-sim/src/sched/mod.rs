//! CPU scheduling policies.
//!
//! The paper's testbed runs a round-robin scheduler with a 1 ms time slice
//! (Table 1); [`RoundRobin`] reproduces it. [`Fifo`] (run-to-completion)
//! and [`StaticPriority`] are provided for ablation studies — the latency
//! inflation that the Eq. (3) regression captures depends on the policy, and
//! comparing policies shows the regression pipeline adapting to each.

mod fifo;
mod priority;
mod round_robin;

pub use fifo::Fifo;
pub use priority::StaticPriority;
pub use round_robin::RoundRobin;

use crate::ids::JobId;
use crate::time::SimDuration;

/// A ready-queue policy for one node's CPU.
///
/// The scheduler only orders job ids; the engine owns job state (remaining
/// service time) and drives dispatch at quantum boundaries.
///
/// Implementations must be *deterministic functions of their call
/// sequence* (`enqueue`/`pick`/`requeue` order): no clocks, no ambient
/// randomness, no dependence on job-id values beyond equality. The engine
/// elides provably-inert dispatch events (lone-job quantum chains, the
/// background-load fast path) on the guarantee that replaying the same
/// call sequence reproduces the same decisions — byte-identical fast/slow
/// execution, and the `tests/golden/` contract, depend on it.
pub trait CpuScheduler: Send {
    /// Admits a newly released job to the ready set.
    fn enqueue(&mut self, job: JobId, priority: u8);

    /// Removes and returns the next job to run, if any.
    fn pick(&mut self) -> Option<JobId>;

    /// Returns a job whose quantum expired (still unfinished) to the ready
    /// set.
    fn requeue(&mut self, job: JobId, priority: u8);

    /// The time slice after which an unfinished job is put back, or `None`
    /// for run-to-completion.
    fn quantum(&self) -> Option<SimDuration>;

    /// Number of ready (not currently running) jobs.
    fn ready_len(&self) -> usize;

    /// True if nothing is ready.
    fn is_idle(&self) -> bool {
        self.ready_len() == 0
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Which built-in policy to instantiate on each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Round-robin with the given quantum (the paper's baseline is 1 ms).
    RoundRobin {
        /// Time-slice in microseconds.
        quantum_us: u64,
    },
    /// FIFO, run-to-completion.
    Fifo,
    /// Non-preemptive static priority (lower number served first), with an
    /// optional quantum applied *within* a priority level.
    StaticPriority {
        /// Optional intra-level time-slice in microseconds.
        quantum_us: Option<u64>,
    },
}

impl SchedulerKind {
    /// The paper's baseline: round-robin, 1 ms slice.
    pub fn paper_baseline() -> Self {
        SchedulerKind::RoundRobin { quantum_us: 1_000 }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn CpuScheduler> {
        match self {
            SchedulerKind::RoundRobin { quantum_us } => {
                Box::new(RoundRobin::new(SimDuration::from_micros(quantum_us)))
            }
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::StaticPriority { quantum_us } => Box::new(StaticPriority::new(
                quantum_us.map(SimDuration::from_micros),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_1ms_round_robin() {
        let s = SchedulerKind::paper_baseline().build();
        assert_eq!(s.quantum(), Some(SimDuration::from_millis(1)));
        assert_eq!(s.name(), "round-robin");
    }

    #[test]
    fn build_dispatches_to_each_policy() {
        assert_eq!(SchedulerKind::Fifo.build().name(), "fifo");
        assert_eq!(
            SchedulerKind::StaticPriority { quantum_us: None }.build().name(),
            "static-priority"
        );
        assert_eq!(
            SchedulerKind::RoundRobin { quantum_us: 500 }.build().quantum(),
            Some(SimDuration::from_micros(500))
        );
    }
}
