//! Zero-cost-when-disabled performance instrumentation.
//!
//! The simulator's hot loop pops millions of events per experiment; this
//! module lets a run account for where that time goes without taxing
//! normal runs. When disabled (the default) the only cost is one branch
//! per popped event. When enabled, the engine records per-event-kind
//! counts and wall nanoseconds, controller-epoch timing, event-queue
//! operation statistics, and — if the embedder supplies an allocation
//! probe — heap allocations per control epoch.
//!
//! The allocation probe is a plain `fn() -> u64` returning a monotone
//! allocation count. The simulator crate forbids `unsafe`, so it cannot
//! install a counting global allocator itself; binaries that want
//! allocation numbers install their own counting allocator and pass its
//! reader in (see `run_all --perf`).

use std::time::Instant;

use crate::event::QueueStats;

/// Number of distinct event kinds the engine dispatches on.
pub const N_PHASES: usize = 11;

/// Labels for the per-kind breakdown, in engine dispatch order.
pub const PHASE_NAMES: [&str; N_PHASES] = [
    "period_release",
    "dispatch",
    "bg_poll",
    "tx_complete",
    "deliver",
    "clock_sync",
    "sample",
    "node_fail",
    "node_crash",
    "node_restart",
    "retx_timeout",
];

/// Everything measured by an instrumented run.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Events handled, by kind (indexed as [`PHASE_NAMES`]).
    pub events: [u64; N_PHASES],
    /// Wall nanoseconds spent handling each kind.
    pub ns: [u64; N_PHASES],
    /// Event-queue operation counters (pops, cancels, compactions, heap
    /// high-water mark).
    pub queue: QueueStats,
    /// Controller invocations (control epochs).
    pub control_epochs: u64,
    /// Wall nanoseconds inside the controller (subset of the
    /// `period_release` phase).
    pub controller_ns: u64,
    /// Per-quantum dispatch events elided by the virtual dispatch chain
    /// (lone jobs run without round-trips through the event heap).
    pub elided_dispatches: u64,
    /// `BgPoll` events elided by the background-load fast path: polls
    /// carried on virtual lanes instead of the event heap.
    pub elided_bg_polls: u64,
    /// Slice-boundary `Dispatch` events of background-only nodes elided
    /// by the background-load fast path (fired as direct handler calls).
    pub elided_bg_dispatches: u64,
    /// Heap allocations observed across all control epochs, if an
    /// allocation probe was supplied.
    pub epoch_allocs: Option<u64>,
    /// Total wall nanoseconds of the run loop.
    pub wall_ns: u64,
}

impl PerfReport {
    /// Total events handled.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Mean heap allocations per control epoch, if probed.
    pub fn allocs_per_epoch(&self) -> Option<f64> {
        let a = self.epoch_allocs?;
        if self.control_epochs == 0 {
            return Some(0.0);
        }
        Some(a as f64 / self.control_epochs as f64)
    }

    /// Renders an aligned, human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total_events().max(1);
        let _ = writeln!(
            out,
            "perf: {} events in {:.1} ms ({:.0} ns/event)",
            self.total_events(),
            self.wall_ns as f64 / 1e6,
            self.wall_ns as f64 / total as f64,
        );
        let _ = writeln!(out, "  {:<16} {:>12} {:>12} {:>10}", "phase", "events", "ms", "ns/event");
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            if self.events[i] == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12.2} {:>10.0}",
                name,
                self.events[i],
                self.ns[i] as f64 / 1e6,
                self.ns[i] as f64 / self.events[i] as f64,
            );
        }
        if self.elided_dispatches > 0 {
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12} {:>10} (virtual chain, no heap round-trip)",
                "dispatch-elided", self.elided_dispatches, "-", "-"
            );
        }
        if self.elided_bg_polls > 0 {
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12} {:>10} (bg fast path, no heap round-trip)",
                "bg_poll-elided", self.elided_bg_polls, "-", "-"
            );
        }
        if self.elided_bg_dispatches > 0 {
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12} {:>10} (bg fast path, direct boundary fire)",
                "bg_disp-elided", self.elided_bg_dispatches, "-", "-"
            );
        }
        let q = &self.queue;
        let _ = writeln!(
            out,
            "  queue: scheduled={} popped={} cancelled={} compactions={} heap_high_water={}",
            q.scheduled, q.popped, q.cancelled, q.compactions, q.heap_high_water
        );
        let _ = write!(
            out,
            "  control: epochs={} controller_ms={:.2}",
            self.control_epochs,
            self.controller_ns as f64 / 1e6
        );
        if let Some(a) = self.allocs_per_epoch() {
            let _ = write!(out, " allocs/epoch={a:.1}");
        }
        out.push('\n');
        out
    }
}

/// Live instrumentation state owned by a running cluster.
pub(crate) struct PerfState {
    pub report: PerfReport,
    /// Monotone allocation counter supplied by the embedder, if any.
    pub alloc_probe: Option<fn() -> u64>,
    pub run_started: Option<Instant>,
}

impl PerfState {
    pub fn new(alloc_probe: Option<fn() -> u64>) -> Self {
        PerfState {
            report: PerfReport::default(),
            alloc_probe,
            run_started: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_only_active_phases() {
        let mut r = PerfReport::default();
        r.events[1] = 10;
        r.ns[1] = 5_000;
        r.wall_ns = 10_000;
        let s = r.render();
        assert!(s.contains("dispatch"));
        assert!(!s.contains("bg_poll"), "inactive phase hidden:\n{s}");
        assert!(s.contains("queue:"));
    }

    #[test]
    fn allocs_per_epoch_requires_probe() {
        let mut r = PerfReport::default();
        assert_eq!(r.allocs_per_epoch(), None);
        r.epoch_allocs = Some(120);
        r.control_epochs = 60;
        assert_eq!(r.allocs_per_epoch(), Some(2.0));
        r.control_epochs = 0;
        assert_eq!(r.allocs_per_epoch(), Some(0.0));
    }

    #[test]
    fn render_shows_elision_counters_when_nonzero() {
        let mut r = PerfReport::default();
        let s = r.render();
        assert!(!s.contains("bg_poll-elided"));
        assert!(!s.contains("bg_disp-elided"));
        r.elided_bg_polls = 42;
        r.elided_bg_dispatches = 7;
        let s = r.render();
        assert!(s.contains("bg_poll-elided"), "missing bg poll line:\n{s}");
        assert!(s.contains("42"));
        assert!(s.contains("bg_disp-elided"), "missing bg dispatch line:\n{s}");
    }

    #[test]
    fn total_events_sums_all_phases() {
        let r = PerfReport {
            events: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
            ..Default::default()
        };
        assert_eq!(r.total_events(), 66);
    }
}
